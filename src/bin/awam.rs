//! The `awam` command-line tool: compile, run, and analyze Prolog
//! programs from the shell.
//!
//! ```text
//! awam compile FILE.pl [--emit F.wam]  print the WAM listing (or save it)
//! awam disasm FILE.pl|FILE.wam         print the shared code area both machines run
//! awam run FILE.pl 'GOAL' [-n N]       run a query, print up to N solutions
//! awam analyze FILE.pl PRED [SPECS]    dataflow analysis from an entry
//! awam analyze-wam FILE.wam PRED [SPECS]  analyze saved WAM code
//! awam batch FILE.pl GOAL... [--workers N]   parallel multi-entry analysis
//! awam batch --suite NAME... [--workers N]   parallel analysis of suite programs
//! awam bench NAME                      run one Table 1 benchmark
//! awam explain FILE.pl PRED[/ARITY] [--entry PRED[:SPEC,…]] [--json]
//!                                      print how the analysis derived PRED's summaries
//! awam profile FILE.pl PRED [SPECS] [--top N] [--metrics-json]
//!                                      self-profile one analysis run
//! awam watch FILE.pl PRED [SPECS] [--interval MS] [--max-updates N]
//!                                      re-analyze FILE incrementally on change
//! awam fuzz [--seed N] [--cases N] [--oracle NAME,...] [--no-minimize]
//!           [--fault NAME] [--json]  differential fuzzing campaign
//! awam serve [--addr HOST:PORT] [--cache-mb N] [--max-inflight N]
//!            [--default-budget N] [--max-budget N] [--pool N]
//!            [--shards N] [--workers N] [--pipeline-depth N]
//!                                      run the multi-tenant analysis daemon
//! awam loadgen [--addr HOST:PORT] [--programs N] [--clients N] [--queries N]
//!              [--tenants N] [--seed N] [--pipeline-depth N] [--out FILE]
//!                                      drive load at a daemon, write BENCH_serve.json
//! ```
//!
//! A batch `GOAL` is `PRED` or `PRED:SPEC,SPEC,…` (e.g. `app:glist,glist,var`).
//!
//! Every machine-readable document any subcommand prints (`--stats-json`,
//! `--metrics-json`, `--json`, serve responses, the loadgen summary) is
//! wrapped in the workspace's versioned envelope:
//! `{"schema": "awam/v1", "kind": …, …payload…}`.
//!
//! Observability flags (on `run`, `analyze`, `analyze-wam` and `bench`):
//!
//! ```text
//! --stats          append a human-readable counter/timing table
//! --stats-json     emit the counters as one JSON document instead of a report
//! --trace FILE     stream machine events to FILE as JSON Lines
//! ```
//!
//! All commands exit non-zero on failure and report errors through the
//! unified [`awam::Error`] type — no panics on user input.

use awam::analysis::{Analysis, AnalyzerBuilder, BatchGoal};
use awam::machine::Machine;
use awam::obs::{envelope, envelope_obj, Json, JsonlTracer, Phase, PhaseTimers, Stopwatch, Tracer};
use awam::syntax::parse_program;
use awam::wam::compile_program;
use awam::{Analyzer, Error};
use std::io::BufWriter;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("analyze-wam") => cmd_analyze_wam(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  awam compile FILE.pl [--emit F.wam]\n  awam disasm FILE.pl|FILE.wam\n  \
                 awam run FILE.pl 'GOAL' [-n N]\n  \
                 awam analyze FILE.pl PRED [SPEC,SPEC,…]\n  awam analyze-wam FILE.wam PRED [SPEC,…]\n  \
                 awam batch FILE.pl GOAL… [--workers N] | awam batch --suite NAME… [--workers N]\n  \
                 awam bench NAME\n  \
                 awam explain FILE.pl PRED[/ARITY] [--entry PRED[:SPEC,…]] [--json]\n  \
                 awam profile FILE.pl PRED [SPEC,SPEC,…] [--top N] [--metrics-json]\n  \
                 awam watch FILE.pl PRED [SPEC,SPEC,…] [--interval MS] [--max-updates N]\n  \
                 awam fuzz [--seed N] [--cases N] [--oracle NAME,…] [--no-minimize] [--fault NAME] [--json]\n  \
                 awam serve [--addr HOST:PORT] [--cache-mb N] [--max-inflight N] [--default-budget N] [--max-budget N] [--pool N] [--shards N] [--workers N] [--pipeline-depth N]\n  \
                 awam loadgen [--addr HOST:PORT] [--programs N] [--clients N] [--queries N] [--tenants N] [--seed N] [--pipeline-depth N] [--out FILE]\n\
                 observability flags: --stats | --stats-json | --trace FILE"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("awam: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Error>;

/// The `--stats`/`--stats-json`/`--trace FILE` flag set shared by the
/// subcommands, split away from the positional arguments.
struct ObsFlags {
    stats: bool,
    stats_json: bool,
    trace: Option<String>,
}

fn split_flags(args: &[String]) -> Result<(Vec<String>, ObsFlags), Error> {
    let mut flags = ObsFlags {
        stats: false,
        stats_json: false,
        trace: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => flags.stats = true,
            "--stats-json" => flags.stats_json = true,
            "--trace" => {
                let path = it.next().ok_or("--trace needs a file path")?;
                flags.trace = Some(path.clone());
            }
            other if other.starts_with("--") => {
                return Err(Error::Usage(format!("unknown flag {other}")));
            }
            _ => positional.push(a.clone()),
        }
    }
    Ok((positional, flags))
}

/// Open the `--trace` sink, if requested.
fn open_tracer(
    flags: &ObsFlags,
) -> Result<Option<JsonlTracer<BufWriter<std::fs::File>>>, std::io::Error> {
    match &flags.trace {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            Ok(Some(JsonlTracer::new(BufWriter::new(file))))
        }
        None => Ok(None),
    }
}

fn load(path: &str) -> Result<awam::syntax::Program, Error> {
    let source = std::fs::read_to_string(path)?;
    Ok(parse_program(&source)?)
}

fn cmd_compile(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("compile: missing FILE.pl")?;
    let program = load(path)?;
    let compiled = compile_program(&program)?;
    if let Some(i) = args.iter().position(|a| a == "--emit") {
        let out = args.get(i + 1).ok_or("compile: --emit needs a path")?;
        std::fs::write(out, awam::wam::text::to_text(&compiled))?;
        println!(
            "wrote {} instructions ({} predicates) to {out}",
            compiled.code_size(),
            compiled.predicates.len()
        );
        return Ok(());
    }
    println!(
        "% {} predicates, {} instructions",
        compiled.predicates.len(),
        compiled.code_size()
    );
    println!("{}", compiled.listing());
    Ok(())
}

/// Disassemble a program to the human-readable WAM assembly listing: the
/// one code area that both the concrete machine and the abstract analyzer
/// execute (via `awam-exec`). Accepts Prolog source or saved `.wam` text.
fn cmd_disasm(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("disasm: missing FILE.pl or FILE.wam")?;
    let compiled = if path.ends_with(".wam") {
        awam::wam::text::from_text(&std::fs::read_to_string(path)?)?
    } else {
        compile_program(&load(path)?)?
    };
    println!(
        "% {} predicates, {} instructions",
        compiled.predicates.len(),
        compiled.code_size()
    );
    println!("{}", compiled.listing());
    Ok(())
}

/// The analyzer configuration for the analysis subcommands: paper
/// defaults, with per-predicate profiling switched on when the caller
/// asked to see the numbers.
fn analyzer_builder(flags: &ObsFlags) -> AnalyzerBuilder {
    AnalyzerBuilder::new().profiling(flags.stats || flags.stats_json)
}

/// Shared tail of `analyze`/`analyze-wam`/`bench`: run the analysis with
/// the requested instrumentation and render either the report or the
/// stats document.
fn run_analysis(
    analyzer: &Analyzer,
    pred: &str,
    specs: &[&str],
    flags: &ObsFlags,
    mut timers: PhaseTimers,
) -> CmdResult {
    let entry = awam::absdom::Pattern::from_spec(specs)
        .ok_or_else(|| Error::Usage(format!("bad entry specs: {}", specs.join(","))))?;
    let watch = Stopwatch::start();
    let analysis = match open_tracer(flags)? {
        Some(mut tracer) => {
            let analysis = analyzer.analyze_traced(pred, &entry, &mut tracer)?;
            tracer.into_inner()?; // flush
            analysis
        }
        None => analyzer.analyze(pred, &entry)?,
    };
    timers.record(Phase::Analyze, watch.elapsed_ns());

    let watch = Stopwatch::start();
    let report = analysis.report(analyzer);
    timers.record(Phase::Report, watch.elapsed_ns());

    if flags.stats_json {
        println!(
            "{}",
            envelope_obj("stats", stats_doc(&analysis, &timers)).emit_pretty()
        );
        return Ok(());
    }
    print!("{report}");
    if flags.stats {
        print!("{}", render_stats(&analysis, &timers));
    }
    Ok(())
}

/// The `--stats-json` document: analysis counters plus the CLI's phase
/// timings.
fn stats_doc(analysis: &Analysis, timers: &PhaseTimers) -> Json {
    let Json::Obj(mut pairs) = analysis.stats_json() else {
        unreachable!("stats_json always returns an object");
    };
    pairs.push(("phases".to_owned(), timers.to_json()));
    Json::Obj(pairs)
}

/// The `--stats` human-readable table.
fn render_stats(analysis: &Analysis, timers: &PhaseTimers) -> String {
    let mut out = String::new();
    out.push_str("\n--- stats ---\n");
    let m = &analysis.machine_stats;
    out.push_str(&format!(
        "machine: {} instructions, {} calls, {} backtracks, {} choice points\n",
        m.instructions, m.calls, m.backtracks, m.choice_points
    ));
    out.push_str(&format!(
        "high water: heap {}, trail {}\n",
        m.heap_high_water, m.trail_high_water
    ));
    let t = &analysis.table_stats;
    out.push_str(&format!(
        "extension table: hit rate {:.1}% over {} lookups\n",
        t.hit_rate() * 100.0,
        t.lookups
    ));
    let i = &analysis.intern_stats;
    out.push_str(&format!(
        "interner: {} patterns, dedup rate {:.1}%, lub cache {}/{}, leq cache {}/{}, ~{} bytes saved\n",
        i.intern_misses,
        i.hit_rate() * 100.0,
        i.lub_cache_hits,
        i.lub_calls,
        i.leq_cache_hits,
        i.leq_calls,
        i.bytes_saved
    ));
    for phase in Phase::ALL {
        let ns = timers.nanos(phase);
        if ns > 0 {
            out.push_str(&format!(
                "phase {:<8} {:>10.1} us\n",
                phase.name(),
                ns as f64 / 1000.0
            ));
        }
    }
    if !analysis.pred_times.is_empty() {
        out.push_str("self-time by predicate:\n");
        for (name, ns) in analysis.pred_times.iter().take(10) {
            out.push_str(&format!(
                "  {:<20} {:>10.1} us\n",
                name,
                *ns as f64 / 1000.0
            ));
        }
    }
    out.push_str("opcode dispatches:\n");
    for (name, count) in analysis.opcodes.nonzero(&awam::wam::OPCODE_NAMES) {
        out.push_str(&format!("  {name:<20} {count:>10}\n"));
    }
    out
}

fn cmd_analyze_wam(args: &[String]) -> CmdResult {
    let (pos, flags) = split_flags(args)?;
    let path = pos.first().ok_or("analyze-wam: missing FILE.wam")?;
    let pred = pos.get(1).ok_or("analyze-wam: missing PRED")?;
    let specs: Vec<&str> = match pos.get(2) {
        Some(s) if !s.is_empty() => s.split(',').map(str::trim).collect(),
        _ => Vec::new(),
    };
    let mut timers = PhaseTimers::new();
    let watch = Stopwatch::start();
    let text = std::fs::read_to_string(path)?;
    let compiled = awam::wam::text::from_text(&text)?;
    timers.record(Phase::Parse, watch.elapsed_ns());
    let analyzer = analyzer_builder(&flags).build(compiled);
    run_analysis(&analyzer, pred, &specs, &flags, timers)
}

fn cmd_run(args: &[String]) -> CmdResult {
    let (pos, flags) = split_flags(args)?;
    let path = pos.first().ok_or("run: missing FILE.pl")?;
    let goal = pos.get(1).ok_or("run: missing 'GOAL'")?;
    let limit: usize = match pos.iter().position(|a| a == "-n") {
        Some(i) => pos
            .get(i + 1)
            .ok_or("run: -n needs a number")?
            .parse()
            .map_err(|_| "run: -n needs a number")?,
        None => 5,
    };
    let mut timers = PhaseTimers::new();
    let watch = Stopwatch::start();
    let program = load(path)?;
    timers.record(Phase::Parse, watch.elapsed_ns());
    let watch = Stopwatch::start();
    let compiled = compile_program(&program)?;
    timers.record(Phase::Compile, watch.elapsed_ns());

    let mut tracer = open_tracer(&flags)?;
    let mut machine = Machine::new(&compiled);
    if let Some(tracer) = tracer.as_mut() {
        machine.set_tracer(tracer as &mut dyn Tracer);
    }
    let watch = Stopwatch::start();
    let solutions = machine.solve_all(goal, limit)?;
    timers.record(Phase::Execute, watch.elapsed_ns());

    if flags.stats_json {
        let doc = Json::obj(vec![
            ("solutions", Json::Int(solutions.len() as i64)),
            ("machine", machine.machine_stats().to_json()),
            (
                "opcodes",
                machine.opcodes().to_json(&awam::wam::OPCODE_NAMES),
            ),
            ("phases", timers.to_json()),
        ]);
        drop(machine);
        if let Some(tracer) = tracer {
            tracer.into_inner()?;
        }
        println!("{}", envelope_obj("run", doc).emit_pretty());
        return Ok(());
    }
    if solutions.is_empty() {
        println!("false.");
    }
    for s in &solutions {
        if s.bindings.is_empty() {
            println!("true.");
        } else {
            let bindings: Vec<String> = s
                .bindings
                .iter()
                .map(|(name, _, text)| format!("{name} = {text}"))
                .collect();
            println!("{} ;", bindings.join(", "));
        }
    }
    if !machine.output.is_empty() {
        println!("--- output ---\n{}", machine.output);
    }
    if flags.stats {
        let m = machine.machine_stats();
        println!("\n--- stats ---");
        println!(
            "machine: {} instructions, {} calls, {} backtracks, {} choice points",
            m.instructions, m.calls, m.backtracks, m.choice_points
        );
        println!(
            "high water: heap {}, trail {}",
            m.heap_high_water, m.trail_high_water
        );
        for phase in Phase::ALL {
            let ns = timers.nanos(phase);
            if ns > 0 {
                println!("phase {:<8} {:>10.1} us", phase.name(), ns as f64 / 1000.0);
            }
        }
        println!("opcode dispatches:");
        for (name, count) in machine.opcodes().nonzero(&awam::wam::OPCODE_NAMES) {
            println!("  {name:<20} {count:>10}");
        }
    }
    drop(machine);
    if let Some(tracer) = tracer {
        tracer.into_inner()?;
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    let (pos, flags) = split_flags(args)?;
    let path = pos.first().ok_or("analyze: missing FILE.pl")?;
    let pred = pos.get(1).ok_or("analyze: missing PRED")?;
    let specs: Vec<&str> = match pos.get(2) {
        Some(s) if !s.is_empty() => s.split(',').map(str::trim).collect(),
        _ => Vec::new(),
    };
    let mut timers = PhaseTimers::new();
    let watch = Stopwatch::start();
    let program = load(path)?;
    timers.record(Phase::Parse, watch.elapsed_ns());
    let watch = Stopwatch::start();
    let analyzer = analyzer_builder(&flags).compile(&program)?;
    timers.record(Phase::Compile, watch.elapsed_ns());
    run_analysis(&analyzer, pred, &specs, &flags, timers)
}

/// Parse a batch goal: `PRED` or `PRED:SPEC,SPEC,…`.
fn parse_goal(text: &str) -> Result<BatchGoal, Error> {
    let (name, specs) = match text.split_once(':') {
        Some((name, specs)) if !specs.is_empty() => {
            (name, specs.split(',').map(str::trim).collect::<Vec<_>>())
        }
        Some((name, _)) => (name, Vec::new()),
        None => (text, Vec::new()),
    };
    if name.is_empty() {
        return Err(Error::Usage(format!("batch: empty predicate in `{text}`")));
    }
    Ok(BatchGoal::from_spec(name, &specs)?)
}

/// `awam batch`: fan independent analysis goals out across worker
/// threads — either several entry goals of one program, or the entry
/// goals of several Table 1 suite programs.
fn cmd_batch(args: &[String]) -> CmdResult {
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut suite = false;
    let mut stats_json = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("batch: --workers needs a number")?
                    .parse()
                    .map_err(|_| "batch: --workers needs a number")?;
                if workers == 0 {
                    return Err("batch: --workers must be at least 1".into());
                }
            }
            "--suite" => suite = true,
            "--stats-json" => stats_json = true,
            other if other.starts_with("--") => {
                return Err(Error::Usage(format!("batch: unknown flag {other}")));
            }
            _ => positional.push(a.clone()),
        }
    }

    if suite {
        return batch_suite(&positional, workers, stats_json);
    }
    let path = positional
        .first()
        .ok_or("batch: missing FILE.pl (or --suite NAME…)")?;
    let goal_args = &positional[1..];
    if goal_args.is_empty() {
        return Err("batch: missing GOAL (PRED or PRED:SPEC,SPEC,…)".into());
    }
    let goals: Vec<BatchGoal> = goal_args
        .iter()
        .map(|g| parse_goal(g))
        .collect::<Result<_, _>>()?;
    let program = load(path)?;
    let analyzer = Analyzer::compile(&program)?;

    let watch = Stopwatch::start();
    let results = analyzer.analyze_batch(&goals, workers);
    let batch_ns = watch.elapsed_ns();

    let mut docs = Vec::new();
    let mut failed = 0usize;
    for (goal, result) in goals.iter().zip(&results) {
        let label = goal.entry.display(analyzer.interner());
        match result {
            Ok(analysis) => {
                if stats_json {
                    let Json::Obj(mut pairs) = analysis.stats_json() else {
                        unreachable!("stats_json always returns an object");
                    };
                    pairs.insert(0, ("goal".to_owned(), Json::Str(goal.name.clone())));
                    pairs.insert(1, ("entry".to_owned(), Json::Str(label)));
                    docs.push(Json::Obj(pairs));
                } else {
                    println!(
                        "{}{}: {} predicates, {} iterations, {} instructions",
                        goal.name,
                        label,
                        analysis.predicates.len(),
                        analysis.iterations,
                        analysis.instructions_executed
                    );
                }
            }
            Err(e) => {
                failed += 1;
                if !stats_json {
                    println!("{}{}: error: {e}", goal.name, label);
                }
            }
        }
    }
    if stats_json {
        let doc = Json::obj(vec![
            ("goals", Json::Arr(docs)),
            ("workers", Json::Int(workers as i64)),
            ("failed", Json::Int(failed as i64)),
            ("batch_ns", Json::Int(batch_ns as i64)),
        ]);
        println!("{}", envelope_obj("batch", doc).emit_pretty());
    } else {
        println!(
            "batch: {} goals on {} workers in {:.1} ms ({} failed)",
            goals.len(),
            workers,
            batch_ns as f64 / 1e6,
            failed
        );
    }
    if failed > 0 {
        return Err(Error::Usage(format!("batch: {failed} goal(s) failed")));
    }
    Ok(())
}

/// `awam batch --suite`: analyze the entry goals of the named Table 1
/// programs (all eleven when no name is given), one compiled analyzer
/// per program, fanned across workers.
fn batch_suite(names: &[String], workers: usize, stats_json: bool) -> CmdResult {
    let benches: Vec<awam::suite::Benchmark> = if names.is_empty() {
        awam::suite::all()
    } else {
        names
            .iter()
            .map(|name| {
                awam::suite::by_name(name)
                    .ok_or_else(|| Error::Usage(format!("batch: unknown benchmark {name}")))
            })
            .collect::<Result<_, _>>()?
    };

    let watch = Stopwatch::start();
    let results = awam::analysis::par_map(&benches, workers, |_, b| -> Result<Analysis, Error> {
        let program = b.parse()?;
        let analyzer = Analyzer::compile(&program)?;
        let mut session = analyzer.session();
        Ok(session.analyze_query(b.entry, b.entry_specs)?)
    });
    let batch_ns = watch.elapsed_ns();

    let mut docs = Vec::new();
    let mut failed = 0usize;
    for (b, result) in benches.iter().zip(&results) {
        match result {
            Ok(analysis) => {
                if stats_json {
                    let Json::Obj(mut pairs) = analysis.stats_json() else {
                        unreachable!("stats_json always returns an object");
                    };
                    pairs.insert(0, ("benchmark".to_owned(), Json::Str(b.name.to_owned())));
                    docs.push(Json::Obj(pairs));
                } else {
                    println!(
                        "{}: {} predicates, {} iterations, {} instructions",
                        b.name,
                        analysis.predicates.len(),
                        analysis.iterations,
                        analysis.instructions_executed
                    );
                }
            }
            Err(e) => {
                failed += 1;
                if !stats_json {
                    println!("{}: error: {e}", b.name);
                }
            }
        }
    }
    if stats_json {
        let doc = Json::obj(vec![
            ("benchmarks", Json::Arr(docs)),
            ("workers", Json::Int(workers as i64)),
            ("failed", Json::Int(failed as i64)),
            ("batch_ns", Json::Int(batch_ns as i64)),
        ]);
        println!("{}", envelope_obj("batch", doc).emit_pretty());
    } else {
        println!(
            "batch: {} programs on {} workers in {:.1} ms ({} failed)",
            benches.len(),
            workers,
            batch_ns as f64 / 1e6,
            failed
        );
    }
    if failed > 0 {
        return Err(Error::Usage(format!("batch: {failed} program(s) failed")));
    }
    Ok(())
}

/// Resolve `PRED` or `PRED/ARITY` against the compiled program. A bare
/// name resolves only when the program defines exactly one arity for it.
fn resolve_pred(analyzer: &Analyzer, target: &str) -> Result<(String, usize), Error> {
    if let Some((name, arity)) = target.rsplit_once('/') {
        if let Ok(arity) = arity.parse::<usize>() {
            return Ok((name.to_owned(), arity));
        }
    }
    let arities: Vec<usize> = analyzer
        .program()
        .predicates
        .iter()
        .filter_map(|p| {
            let key = p.key.display(analyzer.interner());
            let (name, arity) = key.rsplit_once('/')?;
            if name == target {
                arity.parse().ok()
            } else {
                None
            }
        })
        .collect();
    match arities.as_slice() {
        [arity] => Ok((target.to_owned(), *arity)),
        [] => Err(Error::Usage(format!("unknown predicate {target}"))),
        _ => Err(Error::Usage(format!(
            "ambiguous predicate {target}: say {target}/ARITY"
        ))),
    }
}

/// The default entry calling pattern: every argument unknown (`any`).
fn all_any_entry(arity: usize) -> Result<awam::absdom::Pattern, Error> {
    let specs = vec!["any"; arity];
    awam::absdom::Pattern::from_spec(&specs)
        .ok_or_else(|| Error::Usage(format!("no default entry pattern for arity {arity}")))
}

/// `awam explain`: analyze with provenance tracking on and print how the
/// fixpoint derived the named predicate's success summaries — which
/// clause and iteration created each extension-table entry, from which
/// parent call, and the ordered lub chain its summary folds from.
fn cmd_explain(args: &[String]) -> CmdResult {
    let mut json = false;
    let mut entry_goal: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--entry" => {
                let goal = it.next().ok_or("explain: --entry needs PRED[:SPEC,…]")?;
                entry_goal = Some(goal.clone());
            }
            other if other.starts_with("--") => {
                return Err(Error::Usage(format!("explain: unknown flag {other}")));
            }
            _ => positional.push(a.clone()),
        }
    }
    let path = positional.first().ok_or("explain: missing FILE.pl")?;
    let target = positional.get(1).ok_or("explain: missing PRED[/ARITY]")?;
    let program = load(path)?;
    let analyzer = AnalyzerBuilder::new().provenance(true).compile(&program)?;
    let (name, arity) = resolve_pred(&analyzer, target)?;

    let (entry_name, entry_pattern) = match &entry_goal {
        Some(text) => {
            let goal = parse_goal(text)?;
            if goal.entry.arity() == 0 {
                let (entry_name, entry_arity) = resolve_pred(&analyzer, &goal.name)?;
                (entry_name, all_any_entry(entry_arity)?)
            } else {
                (goal.name, goal.entry)
            }
        }
        None => (name.clone(), all_any_entry(arity)?),
    };

    let analysis = analyzer.analyze(&entry_name, &entry_pattern)?;
    let report = analysis
        .provenance
        .as_ref()
        .expect("provenance was enabled on the builder");
    let Some(pred) = report.predicate(&name, arity) else {
        return Err(Error::Usage(format!(
            "explain: {name}/{arity} was not reached from entry {entry_name}{}",
            entry_pattern.display(analyzer.interner())
        )));
    };
    if json {
        let single = awam::analysis::DerivationReport {
            predicates: vec![pred.clone()],
        };
        println!(
            "{}",
            envelope_obj("explain", single.to_json()).emit_pretty()
        );
    } else {
        println!(
            "entry {entry_name}{}",
            entry_pattern.display(analyzer.interner())
        );
        print!("{}", pred.render());
    }
    Ok(())
}

/// `awam profile`: analyze with self-profiling on and print where the
/// run spent its time — hot predicates (self time and instruction heat),
/// hot opcodes, and the hierarchical span tree. `--metrics-json` emits
/// the full metrics registry and span tree as one JSON document.
fn cmd_profile(args: &[String]) -> CmdResult {
    let mut top = 10usize;
    let mut metrics_json = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                top = it
                    .next()
                    .ok_or("profile: --top needs a number")?
                    .parse()
                    .map_err(|_| "profile: --top needs a number")?;
            }
            "--metrics-json" => metrics_json = true,
            other if other.starts_with("--") => {
                return Err(Error::Usage(format!("profile: unknown flag {other}")));
            }
            _ => positional.push(a.clone()),
        }
    }
    let path = positional.first().ok_or("profile: missing FILE.pl")?;
    let target = positional.get(1).ok_or("profile: missing PRED")?;
    let program = load(path)?;
    let analyzer = AnalyzerBuilder::new().profiling(true).compile(&program)?;
    let (name, arity) = resolve_pred(&analyzer, target)?;
    let entry = match positional.get(2) {
        Some(s) if !s.is_empty() => {
            let specs: Vec<&str> = s.split(',').map(str::trim).collect();
            awam::absdom::Pattern::from_spec(&specs)
                .ok_or_else(|| Error::Usage(format!("bad entry specs: {s}")))?
        }
        _ => all_any_entry(arity)?,
    };

    let analysis = analyzer.analyze(&name, &entry)?;
    let profile = analysis
        .profile
        .as_ref()
        .expect("profiling was enabled on the builder");

    if metrics_json {
        let doc = Json::obj(vec![
            ("metrics", profile.metrics.to_json()),
            ("spans", profile.spans.to_json()),
        ]);
        println!("{}", envelope_obj("profile", doc).emit_pretty());
        return Ok(());
    }

    println!(
        "profile: {name}/{arity} entry {} — {} iterations, {} instructions, {:.2} ms",
        entry.display(analyzer.interner()),
        analysis.iterations,
        analysis.instructions_executed,
        analysis.analyze_ns as f64 / 1e6
    );
    if !analysis.pred_times.is_empty() {
        let instrs: std::collections::HashMap<&str, u64> = analysis
            .pred_instrs
            .iter()
            .map(|(n, c)| (n.as_str(), *c))
            .collect();
        println!("hot predicates (self time):");
        for (pred, ns) in analysis.pred_times.iter().take(top) {
            println!(
                "  {:<20} {:>10.1} us {:>10} instructions",
                pred,
                *ns as f64 / 1000.0,
                instrs.get(pred.as_str()).copied().unwrap_or(0)
            );
        }
    }
    let mut opcodes = analysis.opcodes.nonzero(&awam::wam::OPCODE_NAMES);
    opcodes.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!("hot opcodes:");
    for (op, count) in opcodes.iter().take(top) {
        println!("  {op:<20} {count:>10}");
    }
    println!("spans:");
    for (depth, node) in profile.spans.walk() {
        println!(
            "  {:indent$}{:<24} {:>8} calls {:>12.1} us total {:>12.1} us self",
            "",
            node.name,
            node.calls,
            node.total_ns as f64 / 1000.0,
            node.self_ns() as f64 / 1000.0,
            indent = depth * 2
        );
    }
    Ok(())
}

/// Map an incremental-update failure onto the CLI's unified error.
fn update_error(e: awam::analysis::UpdateError) -> Error {
    use awam::analysis::UpdateError as U;
    match e {
        U::Parse(p) => Error::Parse(p),
        U::Compile(c) => Error::Compile(c),
        U::Analysis(a) => Error::Analysis(a),
        U::Edit(edit) => Error::Usage(edit.to_string()),
    }
}

/// `awam watch`: analyze FILE once, then poll it and re-analyze
/// incrementally on every change, printing what each edit invalidated.
/// A broken intermediate save (parse or compile error) is reported and
/// skipped — the last good analysis stays warm. `--max-updates N` exits
/// after N successful re-analyses (0 = analyze once and exit), which is
/// what scripted smoke tests use; without it the watch runs until ^C.
fn cmd_watch(args: &[String]) -> CmdResult {
    let mut interval_ms: u64 = 500;
    let mut max_updates: Option<u64> = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => {
                interval_ms = it
                    .next()
                    .ok_or("watch: --interval needs milliseconds")?
                    .parse()
                    .map_err(|_| Error::Usage("watch: --interval needs an integer".to_owned()))?;
            }
            "--max-updates" => {
                max_updates = Some(
                    it.next()
                        .ok_or("watch: --max-updates needs a count")?
                        .parse()
                        .map_err(|_| {
                            Error::Usage("watch: --max-updates needs an integer".to_owned())
                        })?,
                );
            }
            other if other.starts_with("--") => {
                return Err(Error::Usage(format!("unknown flag {other}")));
            }
            _ => positional.push(a.clone()),
        }
    }
    let path = positional.first().ok_or("watch: missing FILE.pl")?;
    let pred = positional.get(1).ok_or("watch: missing entry predicate")?;
    let specs: Vec<&str> = match positional.get(2).map(String::as_str) {
        Some(s) if !s.is_empty() => s.split(',').map(str::trim).collect(),
        _ => Vec::new(),
    };
    let source = std::fs::read_to_string(path)?;
    let mut ws = awam::analysis::Workspace::from_source(&source).map_err(update_error)?;
    let analysis = ws.analyze(pred, &specs)?;
    println!("{}", analysis.report(ws.analyzer()));
    println!(
        "watching {path} ({} entries memoized, polling every {interval_ms}ms)",
        ws.memo_len()
    );
    let mut updates = 0u64;
    while max_updates.is_none_or(|m| updates < m) {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        let new_source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("watch: {path}: {e}");
                continue;
            }
        };
        if new_source == ws.source() {
            continue;
        }
        match ws.update_source(&new_source) {
            Ok(stats) => {
                updates += 1;
                println!(
                    "-- update {updates}: {} predicate(s) changed, {} removed; \
                     entries kept {}/{}, reset {}, dropped {}; frontier {}, \
                     repair explorations {}",
                    stats.preds_changed,
                    stats.preds_removed,
                    stats.entries_kept,
                    stats.entries_before,
                    stats.entries_reset,
                    stats.entries_dropped,
                    stats.frontier,
                    stats.refix_explorations
                );
                match ws.analyze(pred, &specs) {
                    Ok(analysis) => println!("{}", analysis.report(ws.analyzer())),
                    Err(e) => eprintln!("watch: analysis failed: {e}"),
                }
            }
            Err(e) => eprintln!("watch: {e} (keeping the last good analysis)"),
        }
    }
    Ok(())
}

/// `awam fuzz`: run a differential fuzzing campaign — generate random
/// well-formed programs and hold every one to the oracle matrix (see
/// `awam::testkit`). Long campaigns belong here, outside `cargo test`;
/// a failing case prints a minimal counterexample and a replay command.
fn cmd_fuzz(args: &[String]) -> CmdResult {
    use awam::testkit::{run_campaign, FuzzConfig, Oracle};

    let mut config = FuzzConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                config.seed = it
                    .next()
                    .ok_or("fuzz: --seed needs a number")?
                    .parse()
                    .map_err(|_| "fuzz: --seed needs a number")?;
            }
            "--cases" => {
                config.cases = it
                    .next()
                    .ok_or("fuzz: --cases needs a number")?
                    .parse()
                    .map_err(|_| "fuzz: --cases needs a number")?;
            }
            "--oracle" => {
                let names = it.next().ok_or("fuzz: --oracle needs a name")?;
                config.oracles = names
                    .split(',')
                    .map(|n| {
                        Oracle::from_name(n.trim()).ok_or_else(|| {
                            let all: Vec<&str> = Oracle::ALL.iter().map(|o| o.name()).collect();
                            Error::Usage(format!(
                                "fuzz: unknown oracle `{n}` (available: {})",
                                all.join(", ")
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--minimize" => config.minimize = true,
            "--no-minimize" => config.minimize = false,
            "--dump" => config.dump = true,
            "--fault" => {
                let name = it.next().ok_or("fuzz: --fault needs a name")?;
                // Validate eagerly so a typo is a usage error, not a
                // panic inside the campaign.
                awam::analysis::fault::enable(name).map_err(Error::Usage)?;
                config.fault = Some(name.clone());
            }
            "--json" => json = true,
            other => {
                return Err(Error::Usage(format!("fuzz: unknown flag {other}")));
            }
        }
    }

    let report = run_campaign(&config);
    match report.failure {
        None => {
            if json {
                let doc = awam::obs::Json::obj(vec![
                    ("seed", awam::obs::Json::Int(config.seed as i64)),
                    ("cases", awam::obs::Json::Int(report.cases_run as i64)),
                    ("checks", awam::obs::Json::Int(report.checks_run as i64)),
                    ("failed", awam::obs::Json::Bool(false)),
                ]);
                println!("{}", envelope_obj("fuzz", doc).emit_pretty());
            } else {
                let oracles: Vec<&str> = config.oracles.iter().map(|o| o.name()).collect();
                println!(
                    "fuzz: {} cases x {} oracles ({}) from seed {}: all passed ({} checks)",
                    report.cases_run,
                    config.oracles.len(),
                    oracles.join(","),
                    config.seed,
                    report.checks_run
                );
            }
            Ok(())
        }
        Some(failure) => {
            if json {
                println!("{}", envelope_obj("fuzz", failure.to_json()).emit_pretty());
            } else {
                print!("{}", failure.render());
            }
            Err(Error::Usage(format!(
                "fuzz: oracle `{}` failed on case {} after {} checks",
                failure.oracle, failure.case, report.checks_run
            )))
        }
    }
}

/// Parse a `--flag N` numeric argument.
fn num_flag<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, Error> {
    it.next()
        .ok_or_else(|| Error::Usage(format!("{flag} needs a number")))?
        .parse()
        .map_err(|_| Error::Usage(format!("{flag} needs a number")))
}

/// `awam serve`: run the multi-tenant analysis daemon (see
/// `awam::serve`) until a client sends `{"op":"shutdown"}`. The first
/// stdout line is a `{"kind":"serving","addr":…}` envelope announcing
/// the bound address, so scripts can bind port 0 and read it back.
fn cmd_serve(args: &[String]) -> CmdResult {
    use awam::serve::{ServeConfig, Server};

    let mut addr = "127.0.0.1:0".to_owned();
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = it.next().ok_or("serve: --addr needs HOST:PORT")?.clone();
            }
            "--cache-mb" => {
                let mb: usize = num_flag(&mut it, "serve: --cache-mb")?;
                config.cache_bytes = mb << 20;
            }
            "--max-inflight" => config.max_inflight = num_flag(&mut it, "serve: --max-inflight")?,
            "--default-budget" => {
                config.default_budget = Some(num_flag(&mut it, "serve: --default-budget")?);
            }
            "--max-budget" => {
                config.max_budget = Some(num_flag(&mut it, "serve: --max-budget")?);
            }
            "--pool" => config.pool_per_key = num_flag(&mut it, "serve: --pool")?,
            "--batch-workers" => {
                config.batch_workers = num_flag(&mut it, "serve: --batch-workers")?;
            }
            "--shards" => config.shards = num_flag(&mut it, "serve: --shards")?,
            "--workers" => config.workers = num_flag(&mut it, "serve: --workers")?,
            "--pipeline-depth" => {
                config.pipeline_depth = num_flag(&mut it, "serve: --pipeline-depth")?;
            }
            other => {
                return Err(Error::Usage(format!("serve: unknown flag {other}")));
            }
        }
    }
    let server = Server::bind(&addr, config)?;
    let announce = envelope(
        "serving",
        vec![("addr", Json::Str(server.local_addr().to_string()))],
    );
    println!("{}", announce.emit());
    // The announcement must reach a piping consumer before the first
    // request arrives.
    use std::io::Write as _;
    std::io::stdout().flush()?;
    server.run()?;
    Ok(())
}

/// `awam loadgen`: drive concurrent analysis traffic at a daemon and
/// write a `BENCH_serve.json` summary (throughput, latency quantiles,
/// cache/pool hit rates). Without `--addr` an in-process daemon is
/// spawned on an ephemeral port, so the benchmark is self-contained.
fn cmd_loadgen(args: &[String]) -> CmdResult {
    use awam::serve::loadgen::{run_loadgen, LoadgenConfig};

    let mut config = LoadgenConfig::default();
    let mut out = "BENCH_serve.json".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = Some(it.next().ok_or("loadgen: --addr needs HOST:PORT")?.clone());
            }
            "--programs" => config.programs = num_flag(&mut it, "loadgen: --programs")?,
            "--clients" => config.clients = num_flag(&mut it, "loadgen: --clients")?,
            "--queries" => config.queries = num_flag(&mut it, "loadgen: --queries")?,
            "--tenants" => config.tenants = num_flag(&mut it, "loadgen: --tenants")?,
            "--seed" => config.seed = num_flag(&mut it, "loadgen: --seed")?,
            "--pipeline-depth" => {
                config.pipeline_depth = num_flag(&mut it, "loadgen: --pipeline-depth")?;
            }
            "--out" => out = it.next().ok_or("loadgen: --out needs a path")?.clone(),
            other => {
                return Err(Error::Usage(format!("loadgen: unknown flag {other}")));
            }
        }
    }
    if config.programs == 0 || config.clients == 0 || config.queries == 0 || config.tenants == 0 {
        return Err("loadgen: --programs/--clients/--queries/--tenants must be at least 1".into());
    }

    let doc = run_loadgen(&config)?;
    std::fs::write(&out, format!("{}\n", doc.emit_pretty()))?;
    println!("{}", doc.emit_pretty());
    let total = doc.get("total_queries").and_then(Json::as_i64).unwrap_or(0);
    let wall_ms = doc.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let throughput = doc
        .get("throughput_qps")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    eprintln!(
        "loadgen: {total} queries over {} clients in {wall_ms:.1} ms ({throughput:.0} q/s) -> {out}",
        config.clients
    );
    Ok(())
}

fn cmd_bench(args: &[String]) -> CmdResult {
    let (pos, flags) = split_flags(args)?;
    let name = pos.first().ok_or("bench: missing NAME (e.g. nreverse)")?;
    let bench = awam::suite::by_name(name)
        .ok_or_else(|| Error::Usage(format!("unknown benchmark {name}")))?;
    let mut timers = PhaseTimers::new();
    let watch = Stopwatch::start();
    let program = bench.parse()?;
    timers.record(Phase::Parse, watch.elapsed_ns());
    let watch = Stopwatch::start();
    let analyzer = analyzer_builder(&flags).compile(&program)?;
    timers.record(Phase::Compile, watch.elapsed_ns());
    if flags.stats || flags.stats_json || flags.trace.is_some() {
        return run_analysis(&analyzer, bench.entry, bench.entry_specs, &flags, timers);
    }
    let entry = awam::absdom::Pattern::from_spec(bench.entry_specs)
        .ok_or_else(|| Error::Usage("bad entry specs".to_owned()))?;
    let start = std::time::Instant::now();
    let analysis = analyzer.analyze(bench.entry, &entry)?;
    let elapsed = start.elapsed();
    println!(
        "{name}: analyzed in {elapsed:?} ({} abstract instructions, {} iterations)",
        analysis.instructions_executed, analysis.iterations
    );
    print!("{}", analysis.report(&analyzer));
    Ok(())
}
