//! The `awam` command-line tool: compile, run, and analyze Prolog
//! programs from the shell.
//!
//! ```text
//! awam compile FILE.pl [--emit F.wam]  print the WAM listing (or save it)
//! awam run FILE.pl 'GOAL' [-n N]       run a query, print up to N solutions
//! awam analyze FILE.pl PRED [SPECS]    dataflow analysis from an entry
//! awam analyze-wam FILE.wam PRED [SPECS]  analyze saved WAM code
//! awam bench NAME                      run one Table 1 benchmark
//! ```

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::syntax::parse_program;
use awam::wam::compile_program;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("analyze-wam") => cmd_analyze_wam(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  awam compile FILE.pl [--emit F.wam]\n  awam run FILE.pl 'GOAL' [-n N]\n  \
                 awam analyze FILE.pl PRED [SPEC,SPEC,…]\n  awam analyze-wam FILE.wam PRED [SPEC,…]\n  \
                 awam bench NAME"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("awam: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn load(path: &str) -> Result<awam::syntax::Program, Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path)?;
    Ok(parse_program(&source)?)
}

fn cmd_compile(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("compile: missing FILE.pl")?;
    let program = load(path)?;
    let compiled = compile_program(&program)?;
    if let Some(i) = args.iter().position(|a| a == "--emit") {
        let out = args.get(i + 1).ok_or("compile: --emit needs a path")?;
        std::fs::write(out, awam::wam::text::to_text(&compiled))?;
        println!(
            "wrote {} instructions ({} predicates) to {out}",
            compiled.code_size(),
            compiled.predicates.len()
        );
        return Ok(());
    }
    println!(
        "% {} predicates, {} instructions",
        compiled.predicates.len(),
        compiled.code_size()
    );
    println!("{}", compiled.listing());
    Ok(())
}

fn cmd_analyze_wam(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("analyze-wam: missing FILE.wam")?;
    let pred = args.get(1).ok_or("analyze-wam: missing PRED")?;
    let specs: Vec<&str> = match args.get(2) {
        Some(s) if !s.is_empty() => s.split(',').map(str::trim).collect(),
        _ => Vec::new(),
    };
    let text = std::fs::read_to_string(path)?;
    let compiled = awam::wam::text::from_text(&text)?;
    let mut analyzer = Analyzer::from_compiled(compiled);
    let analysis = analyzer.analyze_query(pred, &specs)?;
    print!("{}", analysis.report(&analyzer));
    Ok(())
}

fn cmd_run(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("run: missing FILE.pl")?;
    let goal = args.get(1).ok_or("run: missing 'GOAL'")?;
    let limit: usize = match args.iter().position(|a| a == "-n") {
        Some(i) => args
            .get(i + 1)
            .ok_or("run: -n needs a number")?
            .parse()
            .map_err(|_| "run: -n needs a number")?,
        None => 5,
    };
    let program = load(path)?;
    let compiled = compile_program(&program)?;
    let mut machine = Machine::new(&compiled);
    let solutions = machine.solve_all(goal, limit)?;
    if solutions.is_empty() {
        println!("false.");
        return Ok(());
    }
    for s in &solutions {
        if s.bindings.is_empty() {
            println!("true.");
        } else {
            let bindings: Vec<String> = s
                .bindings
                .iter()
                .map(|(name, _, text)| format!("{name} = {text}"))
                .collect();
            println!("{} ;", bindings.join(", "));
        }
    }
    if !machine.output.is_empty() {
        println!("--- output ---\n{}", machine.output);
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    let path = args.first().ok_or("analyze: missing FILE.pl")?;
    let pred = args.get(1).ok_or("analyze: missing PRED")?;
    let specs: Vec<&str> = match args.get(2) {
        Some(s) if !s.is_empty() => s.split(',').map(str::trim).collect(),
        _ => Vec::new(),
    };
    let program = load(path)?;
    let mut analyzer = Analyzer::compile(&program)?;
    let analysis = analyzer.analyze_query(pred, &specs)?;
    print!("{}", analysis.report(&analyzer));
    Ok(())
}

fn cmd_bench(args: &[String]) -> CmdResult {
    let name = args.first().ok_or("bench: missing NAME (e.g. nreverse)")?;
    let bench = awam::suite::by_name(name)
        .ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = bench.parse()?;
    let mut analyzer = Analyzer::compile(&program)?;
    let entry = awam::absdom::Pattern::from_spec(bench.entry_specs)
        .ok_or("bad entry specs")?;
    let start = std::time::Instant::now();
    let analysis = analyzer.analyze(bench.entry, &entry)?;
    let elapsed = start.elapsed();
    println!(
        "{name}: analyzed in {elapsed:?} ({} abstract instructions, {} iterations)",
        analysis.instructions_executed, analysis.iterations
    );
    print!("{}", analysis.report(&analyzer));
    Ok(())
}
