//! # awam — compiled dataflow analysis of logic programs
//!
//! A reproduction of *Compiling Dataflow Analysis of Logic Programs*
//! (Tan & Lin, PLDI 1992): a Prolog dataflow analyzer (mode, type and
//! variable-aliasing inference) that runs as a reinterpretation of the WAM
//! instruction set over an abstract domain, with an extension-table control
//! scheme, instead of as a meta-interpreter hosted on Prolog.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`syntax`] — Prolog terms, parser and printer;
//! * [`wam`] — the WAM instruction set, compiler and textual code format;
//! * [`exec`] — the shared execution substrate both machines instantiate;
//! * [`machine`] — the concrete WAM runtime (standard Prolog execution);
//! * [`absdom`] — the abstract domain of §3 of the paper;
//! * [`analysis`] — the abstract WAM analyzer (the paper's contribution);
//! * [`baseline`] — the native meta-interpreting comparator;
//! * [`hosted_analyzer`] — the Prolog-hosted comparators (meta-interpreted
//!   and transformed), run on [`machine`];
//! * [`opt`] — analysis-driven WAM optimizations;
//! * [`suite`] — the Table 1 benchmark programs.
//!
//! # Quickstart
//!
//! ```
//! use awam::analysis::Analyzer;
//! use awam::syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let mut analyzer = Analyzer::compile(&program)?;
//! let result = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
//! let report = result.report(&analyzer);
//! assert!(report.contains("app/3"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use absdom;
pub use awam_core as analysis;
pub use awam_exec as exec;
pub use awam_obs as obs;
pub use baseline;
pub use bench_suite as suite;
pub use hosted as hosted_analyzer;
pub use prolog_syntax as syntax;
pub use wam;
pub use wam_machine as machine;
pub use wam_opt as opt;
