//! # awam — compiled dataflow analysis of logic programs
//!
//! A reproduction of *Compiling Dataflow Analysis of Logic Programs*
//! (Tan & Lin, PLDI 1992): a Prolog dataflow analyzer (mode, type and
//! variable-aliasing inference) that runs as a reinterpretation of the WAM
//! instruction set over an abstract domain, with an extension-table control
//! scheme, instead of as a meta-interpreter hosted on Prolog.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`syntax`] — Prolog terms, parser and printer;
//! * [`wam`] — the WAM instruction set, compiler and textual code format;
//! * [`exec`] — the shared execution substrate both machines instantiate;
//! * [`machine`] — the concrete WAM runtime (standard Prolog execution);
//! * [`absdom`] — the abstract domain of §3 of the paper;
//! * [`analysis`] — the abstract WAM analyzer (the paper's contribution);
//! * [`baseline`] — the native meta-interpreting comparator;
//! * [`hosted_analyzer`] — the Prolog-hosted comparators (meta-interpreted
//!   and transformed), run on [`machine`];
//! * [`opt`] — analysis-driven WAM optimizations;
//! * [`serve`] — the multi-tenant analysis daemon behind `awam serve`
//!   (compiled-program cache, warm session pools, line-JSON protocol);
//! * [`suite`] — the Table 1 benchmark programs;
//! * [`testkit`] — the generative-testing subsystem (shared PRNG,
//!   program/pattern generators, shrinker, differential oracle matrix)
//!   behind the randomized tests and `awam fuzz`.
//!
//! # Quickstart
//!
//! ```
//! use awam::{Analyzer, Error};
//! use awam::syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let analyzer = Analyzer::compile(&program)?;
//! let result = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
//! let report = result.report(&analyzer);
//! assert!(report.contains("app/3"));
//! # Ok::<(), Error>(())
//! ```
//!
//! # Sessions and batch analysis
//!
//! [`Analyzer::analyze`] takes `&self`; for cross-query reuse open a
//! [`Session`] (persistent extension table, warm-start for subsumed
//! queries), and for throughput fan goals out with
//! [`Analyzer::analyze_batch`]:
//!
//! ```
//! use awam::{Analyzer, BatchGoal, Error};
//! use awam::syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let analyzer = Analyzer::compile(&program)?;
//!
//! // Session: the second, identical query is a warm hit.
//! let mut session = analyzer.session();
//! session.analyze_query("app", &["glist", "glist", "var"])?;
//! let warm = session.analyze_query("app", &["glist", "glist", "var"])?;
//! assert_eq!(warm.iterations, 0);
//!
//! // Batch: independent goals across scoped threads.
//! let goals = vec![
//!     BatchGoal::from_spec("app", &["glist", "glist", "var"])?,
//!     BatchGoal::from_spec("app", &["var", "var", "glist"])?,
//! ];
//! for result in analyzer.analyze_batch(&goals, 2) {
//!     result?;
//! }
//! # Ok::<(), Error>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "mimalloc")]
pub mod alloc;

pub use absdom;
pub use awam_core as analysis;
pub use awam_exec as exec;
pub use awam_obs as obs;
pub use awam_serve as serve;
pub use awam_testkit as testkit;
pub use baseline;
pub use bench_suite as suite;
pub use hosted as hosted_analyzer;
pub use prolog_syntax as syntax;
pub use wam;
pub use wam_machine as machine;
pub use wam_opt as opt;

pub use awam_core::{
    Analysis, Analyzer, AnalyzerBuilder, BatchGoal, DerivationReport, ProfileData, Session,
};

/// The unified error type of the `awam` facade: everything a parse →
/// compile → analyze (or run) pipeline can fail with, one enum.
///
/// Every variant wraps the layer-specific error and forwards it as
/// [`std::error::Error::source`], so callers can either match on the
/// phase or just `?`-propagate and print.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Prolog source text failed to parse.
    Parse(syntax::ParseError),
    /// The WAM compiler rejected the program.
    Compile(wam::CompileError),
    /// The abstract analyzer failed (unknown entry, bad spec, resource
    /// bounds).
    Analysis(analysis::AnalysisError),
    /// The concrete WAM runtime failed.
    Machine(machine::RunError),
    /// Saved `.wam` text failed to parse back.
    Text(wam::text::TextError),
    /// Reading or writing a file failed.
    Io(std::io::Error),
    /// Malformed command-line or API usage (bad flags, missing
    /// arguments, unparseable spec strings).
    Usage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::Analysis(e) => write!(f, "analysis error: {e}"),
            Error::Machine(e) => write!(f, "runtime error: {e}"),
            Error::Text(e) => write!(f, "wam text error: {e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Analysis(e) => Some(e),
            Error::Machine(e) => Some(e),
            Error::Text(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Usage(_) => None,
        }
    }
}

impl From<syntax::ParseError> for Error {
    fn from(e: syntax::ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<wam::CompileError> for Error {
    fn from(e: wam::CompileError) -> Error {
        Error::Compile(e)
    }
}

impl From<analysis::AnalysisError> for Error {
    fn from(e: analysis::AnalysisError) -> Error {
        Error::Analysis(e)
    }
}

impl From<machine::RunError> for Error {
    fn from(e: machine::RunError) -> Error {
        Error::Machine(e)
    }
}

impl From<wam::text::TextError> for Error {
    fn from(e: wam::text::TextError) -> Error {
        Error::Text(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<String> for Error {
    fn from(msg: String) -> Error {
        Error::Usage(msg)
    }
}

impl From<&str> for Error {
    fn from(msg: &str) -> Error {
        Error::Usage(msg.to_owned())
    }
}
