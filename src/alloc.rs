//! Process-wide allocator override behind the `mimalloc` feature.
//!
//! The fixpoint engine churns through short-lived abstract terms; a
//! thread-caching allocator (mimalloc, jemalloc) shaves the malloc/free
//! cost the arena layers don't already absorb. This workspace builds
//! without any external crates, so the feature installs a transparent
//! forwarding allocator over [`std::alloc::System`]: zero behavioral
//! change, but the `#[global_allocator]` hook is in place — swap
//! [`FacadeAlloc`]'s inner calls for `mimalloc::MiMalloc` when the real
//! crate is available, and nothing else in the tree has to move.

use std::alloc::{GlobalAlloc, Layout, System};

/// Forwarding global allocator: the in-tree stand-in for mimalloc.
///
/// Every method delegates to [`System`]. Replacing the delegation target
/// is the single point of change for plugging in a real allocator crate.
pub struct FacadeAlloc;

// SAFETY: pure delegation to `System`, which upholds the GlobalAlloc
// contract.
unsafe impl GlobalAlloc for FacadeAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        System.realloc(ptr, layout, new_size)
    }
}

/// The process-wide allocator instance installed by the feature.
#[global_allocator]
pub static GLOBAL: FacadeAlloc = FacadeAlloc;
