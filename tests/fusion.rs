//! Superinstruction fusion is a pure dispatch optimization: on every
//! Table 1 benchmark, a fused run and an unfused run (`fuse(false)`)
//! must emit byte-identical JSONL traces, produce byte-identical
//! reports, and agree on every constituent-attributed opcode counter.
//! (Testkit oracle #8, `fusion`, checks the same property on randomly
//! generated programs; this pins it on the paper's suite.)

use awam::absdom::Pattern;
use awam::obs::JsonlTracer;
use awam::wam::{NUM_OPCODES, OPCODE_NAMES};
use awam::Analyzer;

#[test]
fn fused_and_unfused_runs_are_byte_identical_on_all_benchmarks() {
    for b in awam::suite::all() {
        let program = b.parse().expect("parse");
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");

        let mut streams = Vec::new();
        let mut reports = Vec::new();
        let mut analyses = Vec::new();
        for fuse in [true, false] {
            let analyzer = Analyzer::builder()
                .fuse(fuse)
                .compile(&program)
                .expect("compile");
            let mut tracer = JsonlTracer::new(Vec::new());
            let analysis = analyzer
                .analyze_traced(b.entry, &entry, &mut tracer)
                .expect("analysis");
            streams.push(tracer.into_inner().expect("trace flush"));
            reports.push(analysis.report(&analyzer));
            analyses.push(analysis);
        }

        assert_eq!(
            streams[0], streams[1],
            "{}: JSONL trace bytes differ between fused and unfused code",
            b.name
        );
        assert_eq!(
            reports[0], reports[1],
            "{}: report differs between fused and unfused code",
            b.name
        );
        assert_eq!(
            analyses[0].instructions_executed, analyses[1].instructions_executed,
            "{}: attributed instruction counts diverge",
            b.name
        );
        for (i, name) in OPCODE_NAMES.iter().enumerate().take(NUM_OPCODES) {
            assert_eq!(
                analyses[0].opcodes.get(i),
                analyses[1].opcodes.get(i),
                "{}: opcode histogram diverges at {}",
                b.name,
                name
            );
        }
    }
}
