//! The end-to-end soundness sweep over the whole benchmark suite: run
//! each program concretely (with call tracing), analyze it abstractly,
//! and check that every concrete call is covered by the extension table.
//! Also checks the hosted analyzer completes on every benchmark.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::suite;
use awam::wam::compile_program;

/// How many traced calls to check per benchmark (tak makes hundreds of
/// thousands of calls; a prefix exercises every predicate).
const TRACE_BUDGET: usize = 20_000;

#[test]
fn every_concrete_call_is_covered_by_the_analysis() {
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let compiled = compile_program(&program).expect("compile");

        let mut tracer = awam::obs::RecordingTracer::default();
        let mut machine = Machine::new(&compiled);
        machine.set_tracer(&mut tracer);
        machine.set_max_steps(3_000_000);
        // A step-limit error still leaves a usable trace prefix.
        let _ = machine.query_str(b.entry);
        drop(machine);

        let analyzer = Analyzer::compile(&program).expect("compile");
        let analysis = analyzer
            .analyze_query(b.entry, b.entry_specs)
            .expect("analysis");

        let mut checked = 0;
        for (pid, args) in tracer.calls().iter().take(TRACE_BUDGET) {
            let pa = analysis
                .predicates
                .iter()
                .find(|p| p.pred == *pid)
                .unwrap_or_else(|| {
                    panic!(
                        "{}: {} called concretely but never analyzed",
                        b.name,
                        compiled.predicates[*pid].key.display(&compiled.interner)
                    )
                });
            let covered = pa.entries.iter().any(|(cp, _)| cp.covers(args));
            assert!(
                covered,
                "{}: concrete call to {} not covered; args {:?}",
                b.name,
                pa.name,
                args.iter()
                    .map(|t| prolog_syntax::term_to_string(t, &compiled.interner, &[]))
                    .collect::<Vec<_>>()
            );
            checked += 1;
        }
        assert!(checked > 0, "{}: no calls traced", b.name);
    }
}

#[test]
fn hosted_analysis_completes_on_every_benchmark() {
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let hosted = awam::hosted_analyzer::HostedAnalyzer::build(&program, b.entry, b.entry_specs)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let run = hosted.run().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(run.succeeded, "{}: hosted driver failed", b.name);
    }
}

#[test]
fn analysis_is_deterministic() {
    for b in suite::all().into_iter().take(4) {
        let program = b.parse().expect("parse");
        let analyzer = Analyzer::compile(&program).expect("compile");
        let a1 = analyzer
            .analyze_query(b.entry, b.entry_specs)
            .expect("analysis");
        let a2 = analyzer
            .analyze_query(b.entry, b.entry_specs)
            .expect("analysis");
        for (p1, p2) in a1.predicates.iter().zip(&a2.predicates) {
            assert_eq!(p1.entries, p2.entries, "{}: {}", b.name, p1.name);
        }
        assert_eq!(a1.iterations, a2.iterations);
        assert_eq!(a1.instructions_executed, a2.instructions_executed);
    }
}

#[test]
fn code_size_and_exec_are_in_the_papers_ballpark() {
    // We use our own compiler rather than the PLM, so sizes differ — but
    // they must be the same order of magnitude (within 2x) of Table 1's.
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let compiled = compile_program(&program).expect("compile");
        let size = compiled.code_size() as f64;
        let paper = b.paper.size as f64;
        assert!(
            size < paper * 2.0 && size > paper * 0.5,
            "{}: size {size} vs paper {paper}",
            b.name
        );
    }
}
