//! Session warm-start and parallel batch: the cross-query reuse layer
//! must never change what an analysis *says*, only how fast it says it.
//!
//! * A repeated query through one [`Session`] is answered from the memo
//!   table: zero fixpoint iterations, zero abstract instructions, and
//!   per-predicate results identical to the cold run — on all eleven
//!   Table 1 benchmarks.
//! * [`Analyzer::analyze_batch`] returns exactly what sequential
//!   per-goal runs return, for any worker count.

use awam::absdom::Pattern;
use awam::{Analyzer, BatchGoal, Session};

/// Warm-start on every Table 1 benchmark: the second identical query
/// does no fixpoint work and reports the same analysis.
#[test]
fn warm_start_matches_cold_run_on_all_benchmarks() {
    for b in awam::suite::all() {
        let program = b.parse().expect("parse");
        let analyzer = Analyzer::compile(&program).expect("compile");
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");

        let mut session = analyzer.session();
        let cold = session.analyze(b.entry, &entry).expect("cold run");
        let warm = session.analyze(b.entry, &entry).expect("warm hit");

        assert!(cold.iterations > 0, "{}: cold run did no work", b.name);
        assert_eq!(warm.iterations, 0, "{}: warm hit ran a fixpoint", b.name);
        assert_eq!(
            warm.instructions_executed, 0,
            "{}: warm hit executed abstract code",
            b.name
        );
        assert_eq!(
            warm.predicates, cold.predicates,
            "{}: warm answer differs from cold run",
            b.name
        );
        // Reports agree except the header line, which states the work
        // done (0 iterations for the warm hit — that is the point).
        let body = |report: String| -> String {
            report
                .split_once('\n')
                .map(|(_, rest)| rest.to_owned())
                .unwrap_or(report)
        };
        assert_eq!(
            body(warm.report(&analyzer)),
            body(cold.report(&analyzer)),
            "{}: warm report differs from cold report",
            b.name
        );
        assert_eq!(session.stats().session_cold_runs, 1, "{}", b.name);
        assert_eq!(session.stats().session_warm_hits, 1, "{}", b.name);
    }
}

/// The warm-hit check is subsumption, not equality: a query whose entry
/// pattern is below a memoized calling pattern answers from the table.
#[test]
fn subsumed_query_is_a_warm_hit() {
    let program =
        awam::syntax::parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).")
            .expect("parse");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let mut session = analyzer.session();

    session
        .analyze_query("app", &["glist", "glist", "var"])
        .expect("cold run");
    // An integer list is a ground list, so this entry is subsumed.
    let warm = session
        .analyze_query("app", &["ilist", "ilist", "var"])
        .expect("warm hit");

    assert_eq!(warm.iterations, 0, "subsumed query re-ran the fixpoint");
    assert_eq!(session.stats().session_warm_hits, 1);
    assert_eq!(session.stats().session_cold_runs, 1);
}

/// A second *unrelated* query through the same session runs cold but
/// seeds from — and never shrinks — the accumulated table.
#[test]
fn session_table_grows_monotonically() {
    let program = awam::syntax::parse_program(
        "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).",
    )
    .expect("parse");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let mut session = analyzer.session();

    session
        .analyze_query("app", &["glist", "glist", "var"])
        .expect("first goal");
    let after_first = session.memo_len();
    session
        .analyze_query("nrev", &["glist", "var"])
        .expect("second goal");
    assert!(session.memo_len() >= after_first, "memo table shrank");
    assert_eq!(session.stats().session_cold_runs, 2);
    assert_eq!(session.stats().entries_reused, after_first as u64);
    assert!(session.stats().entries_created > 0);

    session.reset();
    assert_eq!(session.memo_len(), 0);
    assert_eq!(session.stats().session_cold_runs, 0);
}

/// `analyze_batch` must be a pure speedup: identical results to
/// sequential per-goal runs for 1, 2, and 8 workers.
#[test]
fn batch_matches_sequential_at_any_worker_count() {
    for b in awam::suite::all() {
        let program = b.parse().expect("parse");
        let analyzer = Analyzer::compile(&program).expect("compile");
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");
        // Several copies of the same goal plus the benchmark entry keeps
        // the job list big enough to exercise real thread interleavings.
        let goals: Vec<BatchGoal> = (0..4)
            .map(|_| BatchGoal::new(b.entry, entry.clone()))
            .collect();

        let sequential: Vec<_> = goals
            .iter()
            .map(|g| analyzer.analyze(&g.name, &g.entry).expect("sequential run"))
            .collect();
        for workers in [1, 2, 8] {
            let batch = analyzer.analyze_batch(&goals, workers);
            assert_eq!(batch.len(), sequential.len());
            for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
                let got = got.as_ref().expect("batch run");
                assert_eq!(
                    got.predicates, want.predicates,
                    "{}: goal {i} differs with {workers} workers",
                    b.name
                );
                assert_eq!(
                    got.iterations, want.iterations,
                    "{}: goal {i} iteration count differs with {workers} workers",
                    b.name
                );
            }
        }
    }
}

/// Batch error reporting is per-goal: one bad goal fails alone.
#[test]
fn batch_reports_per_goal_errors() {
    let program =
        awam::syntax::parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).")
            .expect("parse");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let goals = vec![
        BatchGoal::from_spec("app", &["glist", "glist", "var"]).expect("goal"),
        BatchGoal::from_spec("no_such_pred", &["var"]).expect("goal"),
    ];
    let results = analyzer.analyze_batch(&goals, 2);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
}

/// Sessions borrow the analyzer immutably, so independent sessions can
/// run concurrently over one compiled analyzer.
#[test]
fn concurrent_sessions_share_one_analyzer() {
    let program =
        awam::syntax::parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).")
            .expect("parse");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut session = Session::new(&analyzer);
                    let analysis = session
                        .analyze_query("app", &["glist", "glist", "var"])
                        .expect("analysis");
                    analysis.report(&analyzer)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    assert!(reports.windows(2).all(|w| w[0] == w[1]));
}
