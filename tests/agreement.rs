//! Cross-crate agreement: the compiled abstract WAM and the native
//! meta-interpreting baseline implement the *same* abstract semantics, so
//! on every benchmark they must reach the same least fixpoint — identical
//! extension tables (same calling patterns, same success summaries).

use awam::analysis::Analyzer;
use awam::baseline::BaselineAnalyzer;
use awam::suite;

#[test]
fn compiled_and_native_reach_the_same_fixpoint() {
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let compiled = Analyzer::compile(&program).expect("compile");
        let mut native = BaselineAnalyzer::new(&program).expect("baseline");
        let a = compiled
            .analyze_query(b.entry, b.entry_specs)
            .expect("compiled analysis");
        let n = native
            .analyze_query(b.entry, b.entry_specs)
            .expect("native analysis");

        // Same set of analyzed predicates…
        let a_names: Vec<&str> = a.predicates.iter().map(|p| p.name.as_str()).collect();
        let n_names: Vec<&str> = n.predicates.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(a_names, n_names, "{}: analyzed predicates differ", b.name);

        // …with identical (calling pattern, success pattern) entries.
        for (pa, pn) in a.predicates.iter().zip(&n.predicates) {
            let mut ea = pa.entries.clone();
            let mut en = pn.entries.clone();
            let key = |p: &absdom::Pattern| format!("{p:?}");
            ea.sort_by_key(|(c, _)| key(c));
            en.sort_by_key(|(c, _)| key(c));
            assert_eq!(
                ea, en,
                "{}: extension tables differ for {}",
                b.name, pa.name
            );
        }
    }
}

#[test]
fn iteration_counts_are_comparable() {
    // Both drivers iterate the same control scheme, so iteration counts
    // must match exactly.
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let a = Analyzer::compile(&program)
            .expect("compile")
            .analyze_query(b.entry, b.entry_specs)
            .expect("analysis");
        let n = BaselineAnalyzer::new(&program)
            .expect("baseline")
            .analyze_query(b.entry, b.entry_specs)
            .expect("analysis");
        assert_eq!(a.iterations, n.iterations, "{}", b.name);
    }
}
