//! Trace determinism: two identical analyses must produce byte-identical
//! event streams. The Dependency strategy's re-exploration order used to
//! flow through a `HashMap<_, HashSet<_>>` reverse-dependency index,
//! whose per-instance random hash seeds could reorder `--trace` output
//! between runs; the index is ordered now, and this test keeps it that
//! way.

use awam::analysis::{Analyzer, IterationStrategy};
use awam::obs::{JsonlTracer, RecordingTracer};
use awam::suite;

fn record(b: &suite::Benchmark, strategy: IterationStrategy) -> RecordingTracer {
    let program = b.parse().expect("parse");
    let analyzer = Analyzer::builder()
        .strategy(strategy)
        .compile(&program)
        .expect("compile");
    let entry = awam::absdom::Pattern::from_spec(b.entry_specs).expect("specs");
    let mut tracer = RecordingTracer::default();
    analyzer
        .analyze_traced(b.entry, &entry, &mut tracer)
        .expect("analysis");
    tracer
}

#[test]
fn dependency_strategy_traces_are_stable_across_runs() {
    // The Dependency strategy is the one that consults the reverse-
    // dependency index to schedule re-exploration, so it is the one a
    // hash-ordered index would scramble.
    for b in suite::all() {
        let first = record(&b, IterationStrategy::Dependency);
        let second = record(&b, IterationStrategy::Dependency);
        assert!(!first.events.is_empty(), "{}: empty trace", b.name);
        assert_eq!(
            first.events, second.events,
            "{}: dependency-strategy trace differs between runs",
            b.name
        );
    }
}

#[test]
fn global_restart_traces_are_stable_across_runs() {
    for b in suite::all() {
        let first = record(&b, IterationStrategy::GlobalRestart);
        let second = record(&b, IterationStrategy::GlobalRestart);
        assert_eq!(
            first.events, second.events,
            "{}: global-restart trace differs between runs",
            b.name
        );
    }
}

#[test]
fn jsonl_traces_are_byte_stable() {
    // End-to-end over the serialized form: the bytes a `--trace FILE`
    // run writes must be reproducible run over run.
    let b = suite::by_name("nreverse").expect("benchmark");
    let entry = awam::absdom::Pattern::from_spec(b.entry_specs).expect("specs");
    let mut streams = Vec::new();
    for _ in 0..2 {
        let program = b.parse().expect("parse");
        let analyzer = Analyzer::builder()
            .strategy(IterationStrategy::Dependency)
            .compile(&program)
            .expect("compile");
        let mut tracer = JsonlTracer::new(Vec::new());
        analyzer
            .analyze_traced(b.entry, &entry, &mut tracer)
            .expect("analysis");
        streams.push(tracer.into_inner().expect("flush"));
    }
    assert!(!streams[0].is_empty());
    assert_eq!(streams[0], streams[1]);
}

#[test]
fn hashed_et_traces_are_stable_across_runs() {
    // The hashed extension table indexes calling patterns through a map;
    // a hash-ordered map would make entry numbering (and so the whole
    // event stream) depend on per-process hash seeds. The index is a
    // BTreeMap now, and this test keeps it that way.
    use awam::analysis::EtImpl;
    for b in suite::all() {
        let mut traces = Vec::new();
        for _ in 0..2 {
            let program = b.parse().expect("parse");
            let analyzer = Analyzer::builder()
                .et_impl(EtImpl::Hashed)
                .strategy(IterationStrategy::Dependency)
                .compile(&program)
                .expect("compile");
            let entry = awam::absdom::Pattern::from_spec(b.entry_specs).expect("specs");
            let mut tracer = RecordingTracer::default();
            analyzer
                .analyze_traced(b.entry, &entry, &mut tracer)
                .expect("analysis");
            traces.push(tracer.events);
        }
        assert!(!traces[0].is_empty(), "{}: empty trace", b.name);
        assert_eq!(
            traces[0], traces[1],
            "{}: hashed-ET trace differs between runs",
            b.name
        );
    }
}
