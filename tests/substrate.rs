//! Differential coverage of the shared execution substrate (`awam-exec`):
//! the concrete machine and the abstract analyzer run the *same* code
//! area through the *same* dispatch loop, so on every benchmark their
//! static opcode coverage must be identical and their dynamic dispatches
//! must stay inside it — and the exact-counter tripwires that predate the
//! substrate extraction must still hold to the digit.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::obs::RecordingTracer;
use awam::suite;
use awam::syntax::parse_program;
use awam::wam::{compile_program, CompiledProgram, NUM_OPCODES, OPCODE_NAMES};

/// Per-opcode histogram of the static code area, with fused
/// superinstructions expanded to their constituents — matching how the
/// executor attributes dynamic dispatches back to plain opcodes.
fn static_opcode_counts(compiled: &CompiledProgram) -> Vec<u64> {
    let mut counts = vec![0u64; NUM_OPCODES];
    for instr in &compiled.code {
        for constituent in instr.expand() {
            counts[constituent.opcode_index()] += 1;
        }
    }
    counts
}

#[test]
fn both_machines_see_the_same_code_area() {
    // The concrete path (compile_program → Machine) and the abstract path
    // (Analyzer::compile) must agree on the code area instruction for
    // instruction: same listing, same per-opcode static histogram.
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let concrete_side = compile_program(&program).expect("compile");
        let analyzer = Analyzer::compile(&program).expect("analyzer compile");
        let abstract_side = analyzer.program();
        assert_eq!(
            concrete_side.listing(),
            abstract_side.listing(),
            "{}: listings diverge",
            b.name
        );
        assert_eq!(
            static_opcode_counts(&concrete_side),
            static_opcode_counts(abstract_side),
            "{}: static opcode coverage diverges",
            b.name
        );
    }
}

#[test]
fn dynamic_dispatch_stays_inside_static_coverage() {
    // Whatever either interpretation dispatches at runtime must be an
    // opcode that exists in the shared code area. The concrete run is
    // step-capped: coverage accumulates even if the goal does not finish
    // (zebra's full search is not the point here).
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let compiled = compile_program(&program).expect("compile");
        let static_counts = static_opcode_counts(&compiled);

        let analysis = Analyzer::compile(&program)
            .expect("analyzer compile")
            .analyze_query(b.entry, b.entry_specs)
            .expect("analysis");
        for i in 0..NUM_OPCODES {
            assert!(
                analysis.opcodes.get(i) == 0 || static_counts[i] > 0,
                "{}: abstract machine dispatched {} absent from the code area",
                b.name,
                OPCODE_NAMES[i]
            );
        }

        let mut machine = Machine::new(&compiled);
        machine.set_max_steps(200_000);
        // The Table 1 entries are arity-0 drivers, callable as bare goals.
        let _ = machine.query_str(b.entry);
        assert!(
            machine.steps() > 0,
            "{}: concrete machine never ran",
            b.name
        );
        for i in 0..NUM_OPCODES {
            assert!(
                machine.opcodes().get(i) == 0 || static_counts[i] > 0,
                "{}: concrete machine dispatched {} absent from the code area",
                b.name,
                OPCODE_NAMES[i]
            );
        }
    }
}

const NREV: &str = "
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
";

#[test]
fn abstract_tripwires_survive_the_substrate_extraction() {
    // The exact counter values from tests/observability.rs, frozen before
    // the dispatch loop moved into awam-exec. Any drift means the shared
    // substrate changed observable behavior.
    let program = parse_program(NREV).unwrap();
    let analyzer = Analyzer::compile(&program).unwrap();
    let analysis = analyzer.analyze_query("nrev", &["glist", "var"]).unwrap();

    assert_eq!(analysis.iterations, 3);
    let t = &analysis.table_stats;
    assert_eq!(t.lookups, t.hits + t.misses);
    assert_eq!(t.hits, 8);
    assert_eq!(t.misses, 3);
    assert_eq!(t.inserts, 3);
    assert_eq!(t.summary_updates, 11);
    assert_eq!(t.lub_widenings, 2);
    assert_eq!(t.version_bumps, 5);
    assert_eq!(analysis.opcodes.total(), analysis.instructions_executed);
    assert_eq!(
        analysis.machine_stats.instructions,
        analysis.instructions_executed
    );
}

#[test]
fn concrete_tripwires_survive_the_substrate_extraction() {
    let program = parse_program(NREV).unwrap();
    let compiled = compile_program(&program).unwrap();
    let mut recorder = RecordingTracer::default();
    let mut machine = Machine::new(&compiled);
    machine.set_tracer(&mut recorder);
    machine.query_str("nrev([1,2,3], R)").unwrap().unwrap();
    drop(machine);
    // nrev([1,2,3]) makes exactly 9 calls (3 nrev suffixes + 1+2+3 app
    // activations) — the pre-refactor value.
    assert_eq!(recorder.calls().len(), 9);
}
