//! Derivation provenance under test: exact clause/iteration records on a
//! hand-built program, run-to-run determinism of the derivation report
//! over the whole Table 1 suite, lub chains that re-fold to the stored
//! summaries, and the zero-cost-when-off guarantee (byte-identical
//! reports with tracking on or off).

use awam::analysis::AnalyzerBuilder;
use awam::syntax::parse_program;

/// Run one suite benchmark with provenance tracking on and return the
/// rendered report, the derivation JSON, and the refold verdict.
fn run_with_provenance(b: &awam::suite::Benchmark) -> (String, String, Option<String>) {
    let program = b.parse().unwrap();
    let analyzer = AnalyzerBuilder::new()
        .provenance(true)
        .compile(&program)
        .unwrap();
    let analysis = analyzer.analyze_query(b.entry, b.entry_specs).unwrap();
    let report = analysis.report(&analyzer);
    let derivations = analysis.provenance.expect("provenance was enabled");
    let json = derivations.to_json().emit();
    (report, json, derivations.refold_violation())
}

#[test]
fn derivation_reports_are_deterministic_across_the_suite() {
    for b in awam::suite::all() {
        let (report_a, json_a, refold_a) = run_with_provenance(&b);
        let (report_b, json_b, refold_b) = run_with_provenance(&b);
        assert_eq!(
            json_a, json_b,
            "{}: derivation JSON drifts between runs",
            b.name
        );
        assert_eq!(report_a, report_b, "{}: analysis report drifts", b.name);
        assert_eq!(refold_a, None, "{}: lub chain does not re-fold", b.name);
        assert_eq!(refold_b, None);
        assert!(!json_a.is_empty());
    }
}

#[test]
fn provenance_is_none_when_off_and_reports_match_byte_for_byte() {
    for b in awam::suite::all() {
        let program = b.parse().unwrap();

        let plain = AnalyzerBuilder::new().compile(&program).unwrap();
        let off = plain.analyze_query(b.entry, b.entry_specs).unwrap();
        assert!(
            off.provenance.is_none(),
            "{}: derivations materialized without opting in",
            b.name
        );

        let tracked = AnalyzerBuilder::new()
            .provenance(true)
            .compile(&program)
            .unwrap();
        let on = tracked.analyze_query(b.entry, b.entry_specs).unwrap();
        assert!(on.provenance.is_some());

        // Tracking must be invisible to everything the analysis already
        // reported: same results, same counters, same rendered report.
        assert_eq!(off.report(&plain), on.report(&tracked), "{}", b.name);
        assert_eq!(off.predicates, on.predicates, "{}", b.name);
        assert_eq!(off.iterations, on.iterations, "{}", b.name);
        assert_eq!(
            off.instructions_executed, on.instructions_executed,
            "{}",
            b.name
        );
        assert_eq!(off.intern_stats, on.intern_stats, "{}", b.name);
    }
}

#[test]
fn two_clause_program_yields_exact_provenance() {
    let program = parse_program(
        "
        s(X) :- t(X).
        t(a).
        t([_]).
    ",
    )
    .unwrap();
    let analyzer = AnalyzerBuilder::new()
        .provenance(true)
        .compile(&program)
        .unwrap();
    let analysis = analyzer.analyze_query("s", &["var"]).unwrap();
    let report = analysis.provenance.expect("provenance was enabled");
    assert_eq!(report.refold_violation(), None);

    // The entry goal's own entry carries no origin — nothing called it.
    let s = report.predicate("s", 1).expect("s/1 analyzed");
    assert_eq!(s.entries.len(), 1);
    assert_eq!(s.entries[0].origin, None);
    assert_eq!(s.entries[0].parent_call, None);
    assert_eq!(s.entries[0].created_iter, 1);

    // t/1 was called by clause 0 of s/1, in iteration 1, while s was
    // being explored for its (var) entry.
    let t = report.predicate("t", 1).expect("t/1 analyzed");
    assert_eq!(t.entries.len(), 1);
    let entry = &t.entries[0];
    assert_eq!(entry.origin, Some(("s/1".to_owned(), 0)));
    assert_eq!(entry.created_iter, 1);
    assert_eq!(entry.parent_call.as_deref(), Some("(var)"));

    // Both clauses of t succeeded and both lub steps were recorded, in
    // clause order, in the first iteration; the second widened the
    // ground atom with the one-element list.
    assert_eq!(entry.chain.len(), 2);
    assert_eq!(entry.chain[0].clause, 0);
    assert_eq!(entry.chain[0].iter, 1);
    assert_eq!(entry.chain[1].clause, 1);
    assert_eq!(entry.chain[1].iter, 1);
    assert_eq!(
        entry.chain[0].input, entry.chain[0].result,
        "first set is not a widening: input and result coincide"
    );
    assert_eq!(
        entry.success.as_deref(),
        Some(entry.chain[1].result_display.as_str()),
        "the chain's last result is the stored summary"
    );

    // The rendered tree names the originating clause.
    let text = t.render();
    assert!(text.contains("clause 0 of s/1"), "render: {text}");
    assert!(text.contains("lub chain:"), "render: {text}");
}

#[test]
fn session_warm_hits_keep_provenance_from_the_cold_run() {
    let program = parse_program(
        "
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ",
    )
    .unwrap();
    let analyzer = AnalyzerBuilder::new()
        .provenance(true)
        .compile(&program)
        .unwrap();
    let mut session = analyzer.session();
    let cold = session
        .analyze_query("app", &["glist", "glist", "var"])
        .unwrap();
    let warm = session
        .analyze_query("app", &["glist", "glist", "var"])
        .unwrap();
    let cold_report = cold.provenance.expect("cold run tracked provenance");
    let warm_report = warm.provenance.expect("warm hit reuses the tracked table");
    assert_eq!(
        cold_report.to_json().emit(),
        warm_report.to_json().emit(),
        "warm answers replay the cold run's derivations"
    );
    assert_eq!(warm_report.refold_violation(), None);
}
