//! Property-based end-to-end soundness: for randomly generated ground
//! inputs, the concrete solution of a benchmark-style predicate must be
//! covered by the abstract success summary inferred for the matching
//! entry pattern. Inputs come from the shared deterministic
//! [`awam::testkit::Rng`] (the workspace builds offline, so no
//! proptest); the per-property case budget honors `AWAM_FUZZ_ITERS`.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::syntax::parse_program;
use awam::testkit::{fuzz_iters, Rng};
use awam::wam::compile_program;

fn cases() -> u64 {
    fuzz_iters(48)
}

const LIB: &str = "
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
    qsort([], R, R).
    qsort([X|L], R, R0) :-
        partition(L, X, L1, L2), qsort(L2, R1, R0), qsort(L1, R, [X|R1]).
    partition([], _, [], []).
    partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
    partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
";

fn int_list(items: &[i64]) -> String {
    let items: Vec<String> = items.iter().map(ToString::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn check(query: &str, entry: &str, specs: &[&str], out_var: &str) {
    let program = parse_program(LIB).expect("parse");
    let compiled = compile_program(&program).expect("compile");
    let mut machine = Machine::new(&compiled);
    let solution = machine
        .query_str(query)
        .expect("concrete run")
        .expect("query succeeds");
    let (_, out_term, _) = solution
        .bindings
        .iter()
        .find(|(n, _, _)| n == out_var)
        .expect("output variable bound")
        .clone();

    let analyzer = Analyzer::compile(&program).expect("compile");
    let analysis = analyzer.analyze_query(entry, specs).expect("analysis");
    let pred = analysis
        .predicate(entry, specs.len())
        .expect("entry analyzed");
    let summary = pred.success_summary().expect("can succeed");
    // Check coverage of the output argument in isolation (leaf check):
    // the output position's abstract type must cover the concrete term.
    let out_idx = specs
        .iter()
        .position(|s| *s == "var")
        .expect("one output position");
    let single = absdom::Pattern::new(summary.nodes().to_vec(), vec![summary.root(out_idx)]);
    assert!(
        single.covers(std::slice::from_ref(&out_term)),
        "summary {single:?} does not cover concrete output of {query}"
    );
}

#[test]
fn nrev_outputs_covered() {
    let mut rng = Rng::new(1);
    for _ in 0..cases() {
        let items = rng.int_vec(12, -20, 20);
        let query = format!("nrev({}, Out)", int_list(&items));
        check(&query, "nrev", &["glist", "var"], "Out");
    }
}

#[test]
fn append_outputs_covered() {
    let mut rng = Rng::new(2);
    for _ in 0..cases() {
        let a = rng.int_vec(8, -9, 9);
        let b = rng.int_vec(8, -9, 9);
        let query = format!("app({}, {}, Out)", int_list(&a), int_list(&b));
        check(&query, "app", &["glist", "glist", "var"], "Out");
    }
}

#[test]
fn qsort_outputs_covered() {
    let mut rng = Rng::new(3);
    for _ in 0..cases() {
        let items = rng.int_vec(10, 0, 50);
        let query = format!("qsort({}, Out, [])", int_list(&items));
        check(&query, "qsort", &["glist", "var", "nil"], "Out");
    }
}

#[test]
fn len_outputs_covered() {
    let mut rng = Rng::new(4);
    for _ in 0..cases() {
        let items = rng.int_vec(10, 0, 5);
        let query = format!("len({}, Out)", int_list(&items));
        check(&query, "len", &["glist", "var"], "Out");
    }
}
