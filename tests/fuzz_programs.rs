//! Program-level fuzzing: a bounded in-tree slice of the `awam fuzz`
//! campaign.
//!
//! The generator, oracle matrix and shrinker live in `awam::testkit`;
//! this test only pins a default case budget so `cargo test` stays fast.
//! Set `AWAM_FUZZ_ITERS` to rescale (CI uses a smaller budget, a soak
//! run a larger one), and replay any failure with the printed
//! `awam fuzz --seed … --cases 1` command.

use awam::testkit::{fuzz_iters, run_campaign, FuzzConfig};

#[test]
fn bounded_campaign_passes_the_oracle_matrix() {
    let config = FuzzConfig {
        cases: fuzz_iters(64),
        ..FuzzConfig::default()
    };
    let report = run_campaign(&config);
    if let Some(failure) = report.failure {
        panic!("fuzz campaign failed:\n{}", failure.render());
    }
}
