//! Program-level fuzzing: generate random (but well-formed) Prolog
//! programs, analyze them with `any`-typed entries, run them concretely
//! with call tracing, and check the fundamental soundness obligation —
//! every concrete call is covered by the analysis — plus analyzer
//! termination.
//!
//! The generator is driven by a deterministic xorshift PRNG (the
//! workspace builds offline, so no proptest); every run covers the same
//! case set, and a failing case can be replayed from its seed.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::obs::RecordingTracer;
use awam::syntax::parse_program;
use awam::wam::compile_program;

/// xorshift64* — deterministic, seedable, good enough for fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A compact generator language for random programs: predicates `p0…pN`
/// with random clause shapes over a small vocabulary.
#[derive(Clone, Debug)]
struct GenProgram {
    preds: Vec<GenPred>,
}

#[derive(Clone, Debug)]
struct GenPred {
    arity: usize,
    clauses: Vec<GenClause>,
}

#[derive(Clone, Debug)]
struct GenClause {
    head_args: Vec<GenTerm>,
    goals: Vec<GenGoal>,
}

#[derive(Clone, Debug)]
enum GenTerm {
    Var(u8),
    Atom(u8),
    Int(i8),
    Cons(Box<GenTerm>, Box<GenTerm>),
    Nil,
    Struct(u8, Vec<GenTerm>),
}

#[derive(Clone, Debug)]
enum GenGoal {
    Call(u8, Vec<GenTerm>),
    UnifyGoal(GenTerm, GenTerm),
    IsPlus(u8, GenTerm),
    Less(GenTerm, GenTerm),
    Cut,
}

fn gen_term(rng: &mut Rng, depth: usize) -> GenTerm {
    // Compound terms only below the depth cap, with the same leaf mix as
    // before: Var, Atom, Int, Nil.
    let compound = depth > 0 && rng.below(3) == 0;
    if compound {
        if rng.below(2) == 0 {
            GenTerm::Cons(
                Box::new(gen_term(rng, depth - 1)),
                Box::new(gen_term(rng, depth - 1)),
            )
        } else {
            let f = rng.below(2) as u8;
            let n = 1 + rng.below(2) as usize;
            let args = (0..n).map(|_| gen_term(rng, depth - 1)).collect();
            GenTerm::Struct(f, args)
        }
    } else {
        match rng.below(4) {
            0 => GenTerm::Var(rng.below(4) as u8),
            1 => GenTerm::Atom(rng.below(3) as u8),
            2 => GenTerm::Int(rng.below(7) as i8 - 3),
            _ => GenTerm::Nil,
        }
    }
}

fn gen_goal(rng: &mut Rng, num_preds: u64) -> GenGoal {
    match rng.below(5) {
        0 => {
            let p = rng.below(num_preds) as u8;
            let n = rng.below(3) as usize;
            let args = (0..n).map(|_| gen_term(rng, 2)).collect();
            GenGoal::Call(p, args)
        }
        1 => GenGoal::UnifyGoal(gen_term(rng, 2), gen_term(rng, 2)),
        2 => GenGoal::IsPlus(rng.below(4) as u8, gen_term(rng, 2)),
        3 => GenGoal::Less(gen_term(rng, 2), gen_term(rng, 2)),
        _ => GenGoal::Cut,
    }
}

fn gen_program(rng: &mut Rng) -> GenProgram {
    const NUM_PREDS: u64 = 3;
    let mut preds: Vec<GenPred> = (0..NUM_PREDS)
        .map(|_| {
            let num_clauses = 1 + rng.below(2) as usize;
            let clauses = (0..num_clauses)
                .map(|_| {
                    let head_args = (0..rng.below(3)).map(|_| gen_term(rng, 2)).collect();
                    let goals = (0..rng.below(3))
                        .map(|_| gen_goal(rng, NUM_PREDS))
                        .collect();
                    GenClause { head_args, goals }
                })
                .collect();
            GenPred { arity: 0, clauses }
        })
        .collect();
    // Arity of each predicate = the head arg count of its first clause;
    // pad/truncate the others to match.
    for p in &mut preds {
        let arity = p.clauses[0].head_args.len();
        p.arity = arity;
        for c in &mut p.clauses {
            c.head_args.truncate(arity);
            while c.head_args.len() < arity {
                c.head_args.push(GenTerm::Var(3));
            }
        }
    }
    GenProgram { preds }
}

fn term_src(t: &GenTerm) -> String {
    match t {
        GenTerm::Var(v) => format!("V{v}"),
        GenTerm::Atom(a) => format!("a{a}"),
        GenTerm::Int(i) => format!("({i})"),
        GenTerm::Nil => "[]".into(),
        GenTerm::Cons(h, t) => format!("[{}|{}]", term_src(h), term_src(t)),
        GenTerm::Struct(f, args) => {
            let args: Vec<String> = args.iter().map(term_src).collect();
            format!("f{f}({})", args.join(", "))
        }
    }
}

fn program_src(g: &GenProgram) -> String {
    let mut out = String::new();
    for (i, p) in g.preds.iter().enumerate() {
        for c in &p.clauses {
            let head = if p.arity == 0 {
                format!("p{i}")
            } else {
                let args: Vec<String> = c.head_args.iter().map(term_src).collect();
                format!("p{i}({})", args.join(", "))
            };
            let goals: Vec<String> = c
                .goals
                .iter()
                .map(|goal| match goal {
                    GenGoal::Call(t, args) => {
                        let target = &g.preds[*t as usize];
                        // Match the callee's arity (pad with fresh vars).
                        let mut args: Vec<String> =
                            args.iter().take(target.arity).map(term_src).collect();
                        while args.len() < target.arity {
                            args.push(format!("W{}", args.len()));
                        }
                        if target.arity == 0 {
                            format!("p{t}")
                        } else {
                            format!("p{t}({})", args.join(", "))
                        }
                    }
                    GenGoal::UnifyGoal(a, b) => format!("{} = {}", term_src(a), term_src(b)),
                    GenGoal::IsPlus(v, t) => format!("V{v} is {} + 1", term_src(t)),
                    GenGoal::Less(a, b) => format!("{} < {}", term_src(a), term_src(b)),
                    GenGoal::Cut => "!".into(),
                })
                .collect();
            if goals.is_empty() {
                out.push_str(&format!("{head}.\n"));
            } else {
                out.push_str(&format!("{head} :- {}.\n", goals.join(", ")));
            }
        }
    }
    out
}

#[test]
fn random_programs_analyze_soundly() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x9e37_79b9_7f4a_7c15 ^ (case.wrapping_mul(0xabcd_1234_5678_9abd)));
        let g = gen_program(&mut rng);
        let src = program_src(&g);
        let program = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => panic!("case {case}: generator produced unparseable source: {e}\n{src}"),
        };
        let compiled = match compile_program(&program) {
            Ok(c) => c,
            Err(e) => panic!("case {case}: generator produced uncompilable source: {e}\n{src}"),
        };

        // Analysis must terminate (finite domain) with `any` entries.
        let entry_specs: Vec<&str> = std::iter::repeat_n("any", g.preds[0].arity).collect();
        let analyzer = Analyzer::compile(&program).expect("compile");
        let analysis = match analyzer.analyze_query("p0", &entry_specs) {
            Ok(a) => a,
            Err(e) => panic!("case {case}: analysis failed to terminate: {e}\n{src}"),
        };

        // Concrete run (step-capped; arithmetic errors are fine), traced
        // through the shared Tracer interface.
        let mut tracer = RecordingTracer::default();
        let mut machine = Machine::new(&compiled);
        machine.set_tracer(&mut tracer);
        machine.set_max_steps(50_000);
        let arity = g.preds[0].arity;
        let query = if arity == 0 {
            "p0".to_owned()
        } else {
            let args: Vec<String> = (0..arity).map(|i| format!("Q{i}")).collect();
            format!("p0({})", args.join(", "))
        };
        let _ = machine.query_str(&query);
        drop(machine);

        // Soundness: every traced call covered.
        for (pid, args) in tracer.calls().iter().take(2_000) {
            let pa = analysis.predicates.iter().find(|p| p.pred == *pid);
            let Some(pa) = pa else {
                panic!(
                    "case {case}: predicate {} called concretely but never analyzed\n{src}",
                    compiled.predicates[*pid].key.display(&compiled.interner)
                );
            };
            assert!(
                pa.entries.iter().any(|(cp, _)| cp.covers(args)),
                "case {case}: uncovered concrete call to {} with {:?}\nprogram:\n{}",
                pa.name,
                args,
                src
            );
        }
    }
}
