//! Program-level fuzzing: generate random (but well-formed) Prolog
//! programs, analyze them with `any`-typed entries, run them concretely
//! with call tracing, and check the fundamental soundness obligation —
//! every concrete call is covered by the analysis — plus analyzer
//! termination and cross-analyzer agreement on calling patterns.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::syntax::parse_program;
use awam::wam::compile_program;
use proptest::prelude::*;

/// A compact generator language for random programs: predicates `p0…pN`
/// with random clause shapes over a small vocabulary.
#[derive(Clone, Debug)]
struct GenProgram {
    preds: Vec<GenPred>,
}

#[derive(Clone, Debug)]
struct GenPred {
    arity: usize,
    clauses: Vec<GenClause>,
}

#[derive(Clone, Debug)]
struct GenClause {
    head_args: Vec<GenTerm>,
    goals: Vec<GenGoal>,
}

#[derive(Clone, Debug)]
enum GenTerm {
    Var(u8),
    Atom(u8),
    Int(i8),
    Cons(Box<GenTerm>, Box<GenTerm>),
    Nil,
    Struct(u8, Vec<GenTerm>),
}

#[derive(Clone, Debug)]
enum GenGoal {
    Call(u8, Vec<GenTerm>),
    UnifyGoal(GenTerm, GenTerm),
    IsPlus(u8, GenTerm),
    Less(GenTerm, GenTerm),
    Cut,
}

fn gen_term() -> impl Strategy<Value = GenTerm> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(GenTerm::Var),
        (0u8..3).prop_map(GenTerm::Atom),
        (-3i8..4).prop_map(GenTerm::Int),
        Just(GenTerm::Nil),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(h, t)| GenTerm::Cons(Box::new(h), Box::new(t))),
            (0u8..2, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| GenTerm::Struct(f, args)),
        ]
    })
}

fn gen_goal(num_preds: u8) -> impl Strategy<Value = GenGoal> {
    prop_oneof![
        (0..num_preds, prop::collection::vec(gen_term(), 0..3))
            .prop_map(|(p, args)| GenGoal::Call(p, args)),
        (gen_term(), gen_term()).prop_map(|(a, b)| GenGoal::UnifyGoal(a, b)),
        (0u8..4, gen_term()).prop_map(|(v, t)| GenGoal::IsPlus(v, t)),
        (gen_term(), gen_term()).prop_map(|(a, b)| GenGoal::Less(a, b)),
        Just(GenGoal::Cut),
    ]
}

fn gen_program() -> impl Strategy<Value = GenProgram> {
    let num_preds = 3u8;
    let clause = (
        prop::collection::vec(gen_term(), 0..3),
        prop::collection::vec(gen_goal(num_preds), 0..3),
    )
        .prop_map(|(head_args, goals)| GenClause { head_args, goals });
    let pred = prop::collection::vec(clause, 1..3)
        .prop_map(|clauses| GenPred { arity: 0, clauses });
    prop::collection::vec(pred, num_preds as usize..=num_preds as usize).prop_map(|mut preds| {
        // Arity of each predicate = the head arg count of its first
        // clause; pad/truncate the others to match.
        for p in &mut preds {
            let arity = p.clauses[0].head_args.len();
            p.arity = arity;
            for c in &mut p.clauses {
                c.head_args.truncate(arity);
                while c.head_args.len() < arity {
                    c.head_args.push(GenTerm::Var(3));
                }
            }
        }
        GenProgram { preds }
    })
}

fn term_src(t: &GenTerm) -> String {
    match t {
        GenTerm::Var(v) => format!("V{v}"),
        GenTerm::Atom(a) => format!("a{a}"),
        GenTerm::Int(i) => format!("({i})"),
        GenTerm::Nil => "[]".into(),
        GenTerm::Cons(h, t) => format!("[{}|{}]", term_src(h), term_src(t)),
        GenTerm::Struct(f, args) => {
            let args: Vec<String> = args.iter().map(term_src).collect();
            format!("f{f}({})", args.join(", "))
        }
    }
}

fn program_src(g: &GenProgram) -> String {
    let mut out = String::new();
    for (i, p) in g.preds.iter().enumerate() {
        for c in &p.clauses {
            let head = if p.arity == 0 {
                format!("p{i}")
            } else {
                let args: Vec<String> = c.head_args.iter().map(term_src).collect();
                format!("p{i}({})", args.join(", "))
            };
            let goals: Vec<String> = c
                .goals
                .iter()
                .map(|goal| match goal {
                    GenGoal::Call(t, args) => {
                        let target = &g.preds[*t as usize];
                        // Match the callee's arity (pad with fresh vars).
                        let mut args: Vec<String> =
                            args.iter().take(target.arity).map(term_src).collect();
                        while args.len() < target.arity {
                            args.push(format!("W{}", args.len()));
                        }
                        if target.arity == 0 {
                            format!("p{t}")
                        } else {
                            format!("p{t}({})", args.join(", "))
                        }
                    }
                    GenGoal::UnifyGoal(a, b) => format!("{} = {}", term_src(a), term_src(b)),
                    GenGoal::IsPlus(v, t) => format!("V{v} is {} + 1", term_src(t)),
                    GenGoal::Less(a, b) => format!("{} < {}", term_src(a), term_src(b)),
                    GenGoal::Cut => "!".into(),
                })
                .collect();
            if goals.is_empty() {
                out.push_str(&format!("{head}.\n"));
            } else {
                out.push_str(&format!("{head} :- {}.\n", goals.join(", ")));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_analyze_soundly(g in gen_program()) {
        let src = program_src(&g);
        let program = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => panic!("generator produced unparseable source: {e}\n{src}"),
        };
        let compiled = match compile_program(&program) {
            Ok(c) => c,
            Err(e) => panic!("generator produced uncompilable source: {e}\n{src}"),
        };

        // Analysis must terminate (finite domain) with `any` entries.
        let entry_specs: Vec<&str> = std::iter::repeat_n("any", g.preds[0].arity).collect();
        let mut analyzer = Analyzer::compile(&program).expect("compile");
        let analysis = match analyzer.analyze_query("p0", &entry_specs) {
            Ok(a) => a,
            Err(e) => panic!("analysis failed to terminate: {e}\n{src}"),
        };

        // Concrete run (step-capped; arithmetic errors are fine), traced.
        let mut machine = Machine::new(&compiled);
        machine.trace_calls = true;
        machine.set_max_steps(50_000);
        let arity = g.preds[0].arity;
        let query = if arity == 0 {
            "p0".to_owned()
        } else {
            let args: Vec<String> = (0..arity).map(|i| format!("Q{i}")).collect();
            format!("p0({})", args.join(", "))
        };
        let _ = machine.query_str(&query);

        // Soundness: every traced call covered.
        for (pid, args) in machine.call_trace.iter().take(2_000) {
            let pa = analysis.predicates.iter().find(|p| p.pred == *pid);
            let Some(pa) = pa else {
                panic!(
                    "predicate {} called concretely but never analyzed\n{src}",
                    compiled.predicates[*pid].key.display(&compiled.interner)
                );
            };
            prop_assert!(
                pa.entries.iter().any(|(cp, _)| cp.covers(args)),
                "uncovered concrete call to {} with {:?}\nprogram:\n{}",
                pa.name,
                args,
                src
            );
        }
    }
}
