//! The `awam compile --emit` / `awam analyze-wam` workflow, end to end:
//! every benchmark's compiled code must survive the textual WAM format,
//! and analyzing the reloaded code must give exactly the same extension
//! table as analyzing the freshly compiled code.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::suite;
use awam::wam::text::{from_text, to_text};

#[test]
fn benchmarks_round_trip_through_the_text_format() {
    for b in suite::all() {
        let program = b.parse().expect("parse");
        let compiled = awam::wam::compile_program(&program).expect("compile");
        let text = to_text(&compiled);
        let reloaded = from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(compiled.code, reloaded.code, "{}", b.name);

        // Same analysis results from the reloaded code…
        let fresh = Analyzer::from_compiled(compiled);
        let loaded = Analyzer::from_compiled(reloaded.clone());
        let a = fresh
            .analyze_query(b.entry, b.entry_specs)
            .expect("fresh analysis");
        let l = loaded
            .analyze_query(b.entry, b.entry_specs)
            .expect("loaded analysis");
        assert_eq!(a.predicates.len(), l.predicates.len(), "{}", b.name);
        for (pa, pl) in a.predicates.iter().zip(&l.predicates) {
            assert_eq!(pa.entries, pl.entries, "{}: {}", b.name, pa.name);
        }

        // …and the reloaded code still *runs*.
        let mut machine = Machine::new(&reloaded);
        machine.set_max_steps(2_000_000_000);
        assert!(
            machine.query_str(b.entry).expect("runs").is_some(),
            "{}: reloaded code must execute",
            b.name
        );
    }
}
