//! The indexed consult (PR 7, layer 2): the Linear extension table now
//! answers every lookup from a per-predicate id index instead of
//! rescanning its entry list, with `scan_steps` kept as the consult-cost
//! counter (exactly one step per lookup).
//!
//! * `scan_steps == lookups` on every Table 1 benchmark, with the zebra
//!   and nreverse counters pinned exactly (zebra burned 7,102 scan steps
//!   on 300 lookups before the index).
//! * Linear and Hashed modes produce identical analyses and identical
//!   counters — the index made the modes share one consult path.
//! * The index lives inside the table a [`Session`] keeps, so it
//!   survives (and keeps answering across) seeded warm-table runs.
//!
//! Debug builds double-check every probe against the paper's linear
//! rescan (`debug_assert_eq!` in `ExtensionTable::find`), so these tests
//! also re-validate index/scan parity on every lookup they trigger.

use awam::absdom::Pattern;
use awam::analysis::EtImpl;
use awam::Analyzer;

/// One scan step per lookup, on all eleven benchmarks.
#[test]
fn one_scan_step_per_lookup_on_all_benchmarks() {
    for b in awam::suite::all() {
        let program = b.parse().expect("parse");
        let analyzer = Analyzer::compile(&program).expect("compile");
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");
        let analysis = analyzer.analyze(b.entry, &entry).expect("analysis");
        let t = &analysis.table_stats;
        assert_eq!(
            t.scan_steps, t.lookups,
            "{}: indexed consult must cost exactly one step per lookup",
            b.name
        );
        assert_eq!(t.hits + t.misses, t.lookups, "{}: hit/miss split", b.name);
    }
}

/// Exact consult counters on the two benchmarks the issue calls out:
/// zebra (the scan-step hog before the index) and nreverse (the
/// tripwire program).
#[test]
fn consult_counters_pinned_on_zebra_and_nreverse() {
    let pins = [
        // (benchmark, lookups, hits, misses, inserts)
        ("zebra", 300, 214, 86, 86),
        ("nreverse", 88, 65, 23, 23),
    ];
    for (name, lookups, hits, misses, inserts) in pins {
        let b = awam::suite::by_name(name).expect("benchmark");
        let program = b.parse().expect("parse");
        let analyzer = Analyzer::compile(&program).expect("compile");
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");
        let analysis = analyzer.analyze(b.entry, &entry).expect("analysis");
        let t = &analysis.table_stats;
        assert_eq!(t.lookups, lookups, "{name}: lookups");
        assert_eq!(t.scan_steps, lookups, "{name}: scan_steps == lookups");
        assert_eq!(t.hits, hits, "{name}: hits");
        assert_eq!(t.misses, misses, "{name}: misses");
        assert_eq!(t.inserts, inserts, "{name}: inserts");
    }
}

/// Linear (indexed probe) and Hashed modes agree on every benchmark:
/// same per-predicate results, same report text, same table counters.
#[test]
fn hashed_and_linear_modes_agree_on_all_benchmarks() {
    for b in awam::suite::all() {
        let program = b.parse().expect("parse");
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");
        let linear = Analyzer::builder()
            .et_impl(EtImpl::Linear)
            .compile(&program)
            .expect("compile linear");
        let hashed = Analyzer::builder()
            .et_impl(EtImpl::Hashed)
            .compile(&program)
            .expect("compile hashed");
        let a = linear.analyze(b.entry, &entry).expect("linear analysis");
        let h = hashed.analyze(b.entry, &entry).expect("hashed analysis");
        assert_eq!(a.predicates, h.predicates, "{}: results differ", b.name);
        assert_eq!(
            a.report(&linear),
            h.report(&hashed),
            "{}: reports differ",
            b.name
        );
        assert_eq!(
            a.table_stats, h.table_stats,
            "{}: table counters differ between modes",
            b.name
        );
        assert_eq!(
            a.iterations, h.iterations,
            "{}: iteration counts differ",
            b.name
        );
    }
}

/// The id index is part of the table a session owns, so a second
/// (non-subsumed, warm-table-seeded) query keeps consulting it: lookups
/// accumulate at one scan step each and the new run scores hits against
/// entries the index already holds.
#[test]
fn session_reuse_keeps_the_consult_index() {
    let program =
        awam::syntax::parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).")
            .expect("parse");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let mut session = analyzer.session();

    let first = session
        .analyze_query("app", &["ilist", "ilist", "var"])
        .expect("first run");
    let t1 = first.table_stats;
    assert!(first.iterations > 0, "first query should run the fixpoint");
    assert_eq!(t1.scan_steps, t1.lookups, "first run: one step per lookup");
    let memo_after_first = session.memo_len();

    // A ground list is not an integer list, so this query is not
    // subsumed: it re-runs the fixpoint seeded with the surviving table.
    let second = session
        .analyze_query("app", &["glist", "glist", "var"])
        .expect("second run");
    let t2 = second.table_stats;
    assert!(second.iterations > 0, "second query must not be a warm hit");
    assert_eq!(session.stats().session_cold_runs, 2);
    assert_eq!(session.stats().session_warm_hits, 0);

    // Table counters accumulate across the session; the index answered
    // every new lookup in one step and found previously-indexed entries.
    assert!(t2.lookups > t1.lookups, "second run did table lookups");
    assert_eq!(
        t2.scan_steps, t2.lookups,
        "seeded run: index still answers in one step per lookup"
    );
    assert!(
        t2.hits > t1.hits,
        "seeded run should hit entries through the surviving index"
    );
    assert!(
        session.memo_len() > memo_after_first,
        "second run should add its own entries alongside the old ones"
    );
}
