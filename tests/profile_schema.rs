//! The self-profiling JSON surface under test: the document `awam
//! profile --metrics-json` emits must keep every key the checked-in
//! schema snapshot (`tests/snapshots/metrics_schema.json`) promises —
//! counters, histograms with their quantile fields, and the span tree
//! shape — because external scrapers key on exactly those names.

use awam::analysis::AnalyzerBuilder;
use awam::obs::{envelope_obj, Json};
use awam::syntax::parse_program;

const NREV: &str = "
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
";

/// Build the same document the CLI's `--metrics-json` prints.
fn profile_doc() -> Json {
    let program = parse_program(NREV).unwrap();
    let analyzer = AnalyzerBuilder::new()
        .profiling(true)
        .compile(&program)
        .unwrap();
    let analysis = analyzer.analyze_query("nrev", &["glist", "var"]).unwrap();
    let profile = analysis.profile.expect("profiling was enabled");
    envelope_obj(
        "profile",
        Json::obj(vec![
            ("metrics", profile.metrics.to_json()),
            ("spans", profile.spans.to_json()),
        ]),
    )
}

fn schema() -> Json {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/metrics_schema.json"
    ))
    .expect("schema snapshot present");
    Json::parse(&text).expect("schema snapshot parses")
}

fn string_list(schema: &Json, key: &str) -> Vec<String> {
    let Some(Json::Arr(items)) = schema.get(key) else {
        panic!("schema key {key} is not an array");
    };
    items
        .iter()
        .map(|i| i.as_str().expect("schema lists strings").to_owned())
        .collect()
}

/// Every span node, recursively, must carry the promised fields.
fn check_span(node: &Json, fields: &[String]) {
    for f in fields {
        assert!(node.get(f).is_some(), "span node missing field {f}");
    }
    let Some(Json::Arr(children)) = node.get("children") else {
        panic!("span children is not an array");
    };
    for c in children {
        check_span(c, fields);
    }
}

#[test]
fn metrics_json_matches_the_schema_snapshot() {
    let schema = schema();
    let doc = profile_doc();

    for key in string_list(&schema, "top_level") {
        assert!(doc.get(&key).is_some(), "missing top-level key {key}");
    }
    let metrics = doc.get("metrics").unwrap();
    for key in string_list(&schema, "metrics_sections") {
        assert!(metrics.get(&key).is_some(), "missing metrics section {key}");
    }

    let counters = metrics.get("counters").unwrap();
    for key in string_list(&schema, "required_counters") {
        assert!(counters.get(&key).is_some(), "missing counter {key}");
    }

    let histograms = metrics.get("histograms").unwrap();
    let hist_fields = string_list(&schema, "histogram_fields");
    for key in string_list(&schema, "required_histograms") {
        let h = histograms
            .get(&key)
            .unwrap_or_else(|| panic!("missing histogram {key}"));
        for f in &hist_fields {
            assert!(h.get(f).is_some(), "histogram {key} missing field {f}");
        }
    }

    check_span(
        doc.get("spans").unwrap(),
        &string_list(&schema, "span_fields"),
    );
}

#[test]
fn profile_json_is_parseable_and_roundtrips() {
    let doc = profile_doc();
    let text = doc.emit_pretty();
    let parsed = Json::parse(&text).expect("emitted profile JSON parses back");
    // Structure survives the round trip (nanosecond values vary between
    // runs, so compare the re-emission of the same parse, not two runs).
    assert_eq!(parsed.emit(), doc.emit());
}

#[test]
fn profile_is_none_without_opt_in() {
    let program = parse_program(NREV).unwrap();
    let analyzer = AnalyzerBuilder::new().compile(&program).unwrap();
    let analysis = analyzer.analyze_query("nrev", &["glist", "var"]).unwrap();
    assert!(analysis.profile.is_none());
    assert!(analysis.pred_instrs.is_empty());
}
