//! The instrumentation itself under test: exact counter values on small
//! fixed programs, fixpoint-round events, and the JSONL trace format
//! round-tripping through our own serializer.

use awam::analysis::Analyzer;
use awam::machine::Machine;
use awam::obs::{parse_jsonl, JsonlTracer, RecordingTracer, TraceEvent};
use awam::syntax::parse_program;
use awam::wam::compile_program;

const NREV: &str = "
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
";

#[test]
fn exact_counters_on_nreverse() {
    let program = parse_program(NREV).unwrap();
    let analyzer = Analyzer::compile(&program).unwrap();
    let analysis = analyzer.analyze_query("nrev", &["glist", "var"]).unwrap();

    // These are exact values for this program under the default settings
    // (k = 4, linear ET, global restart). The analysis is deterministic,
    // so any drift here means the machine's behavior changed — the test
    // is a tripwire, not an approximation.
    assert_eq!(analysis.iterations, 3);
    let t = &analysis.table_stats;
    assert_eq!(
        t.lookups,
        t.hits + t.misses,
        "hit/miss split covers lookups"
    );
    assert_eq!(t.hits, 8);
    assert_eq!(t.misses, 3);
    assert_eq!(t.inserts, 3, "nrev/2 once, app/3 twice");
    assert_eq!(t.summary_updates, 11);
    assert_eq!(t.lub_widenings, 2);
    assert_eq!(t.version_bumps, 5);

    // The leq memo cache answers summary-update subsumption checks: one
    // leq per update that found an existing summary (11 updates − 3
    // first-sets = 8), of which 2 repeat an already-decided id pair.
    // Exact values again — if these read 0 the cache came unwired, and
    // if they drift the update path changed shape.
    let i = &analysis.intern_stats;
    assert_eq!(i.leq_calls, 8);
    assert_eq!(i.leq_cache_hits, 2);
    // A leq miss computes its answer through the lub cache, warming it
    // for the widening that follows.
    assert_eq!(i.lub_calls, 8);
    assert_eq!(i.lub_cache_hits, 2);

    // The per-opcode histogram totals the instruction counter.
    assert_eq!(analysis.opcodes.total(), analysis.instructions_executed);
    assert_eq!(
        analysis.machine_stats.instructions,
        analysis.instructions_executed
    );
    assert!(analysis.machine_stats.heap_high_water > 0);
}

#[test]
fn intern_stats_are_sampled_live_not_at_construction() {
    let program = parse_program(NREV).unwrap();
    let analyzer = Analyzer::compile(&program).unwrap();
    let mut session = analyzer.session();
    let cold = session.analyze_query("nrev", &["glist", "var"]).unwrap();
    let warm = session.analyze_query("nrev", &["glist", "var"]).unwrap();

    // The cold run's counters reflect the finished fixpoint, not the
    // freshly-built interner.
    assert_eq!(cold.intern_stats.leq_calls, 8);
    // The warm hit's subsumption probe goes through the same leq cache,
    // and its answer samples the counters *after* that probe: exactly
    // one more leq decision than the cold run reported.
    assert_eq!(warm.intern_stats.leq_calls, cold.intern_stats.leq_calls + 1);
    assert!(warm.intern_stats.leq_cache_hits >= cold.intern_stats.leq_cache_hits);
}

#[test]
fn fixpoint_round_events_match_iteration_count() {
    let program = parse_program(NREV).unwrap();
    let analyzer = Analyzer::compile(&program).unwrap();
    let entry = awam::absdom::Pattern::from_spec(&["glist", "var"]).unwrap();
    let mut tracer = RecordingTracer::default();
    let analysis = analyzer
        .analyze_traced("nrev", &entry, &mut tracer)
        .unwrap();

    assert_eq!(tracer.rounds(), analysis.iterations);
    // Round events bracket properly: starts and ends pair up, and the
    // final round reports no change (that is why the fixpoint stopped).
    let starts: Vec<u64> = tracer
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RoundStart { round } => Some(*round),
            _ => None,
        })
        .collect();
    let ends: Vec<(u64, bool)> = tracer
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RoundEnd { round, changed } => Some((*round, *changed)),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec![1, 2, 3]);
    assert_eq!(ends.len(), 3);
    assert!(!ends[2].1, "last round must be quiescent");

    // ET consults in the event stream agree with the counters.
    let consults = tracer
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::EtConsult { .. }))
        .count() as u64;
    assert_eq!(consults, analysis.table_stats.lookups);
    let inserts = tracer
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::EtInsert { .. }))
        .count() as u64;
    assert_eq!(inserts, analysis.table_stats.inserts);
}

#[test]
fn analysis_trace_roundtrips_through_jsonl() {
    let program = parse_program(NREV).unwrap();
    let entry = awam::absdom::Pattern::from_spec(&["glist", "var"]).unwrap();

    // Record the events directly…
    let mut recorder = RecordingTracer::default();
    Analyzer::compile(&program)
        .unwrap()
        .analyze_traced("nrev", &entry, &mut recorder)
        .unwrap();

    // …and through the JSONL writer.
    let mut jsonl = JsonlTracer::new(Vec::new());
    Analyzer::compile(&program)
        .unwrap()
        .analyze_traced("nrev", &entry, &mut jsonl)
        .unwrap();
    assert_eq!(jsonl.io_errors, 0);
    let bytes = jsonl.into_inner().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let parsed = parse_jsonl(&text).unwrap();

    // The analysis is deterministic, so the decoded stream must equal the
    // directly recorded one event for event.
    assert_eq!(parsed, recorder.events);
    assert!(!parsed.is_empty());
}

#[test]
fn concrete_trace_roundtrips_through_jsonl() {
    let program = parse_program(NREV).unwrap();
    let compiled = compile_program(&program).unwrap();

    let mut recorder = RecordingTracer::default();
    {
        let mut machine = Machine::new(&compiled);
        machine.set_tracer(&mut recorder);
        machine.query_str("nrev([1,2,3], R)").unwrap().unwrap();
    }

    let mut jsonl = JsonlTracer::new(Vec::new());
    {
        let mut machine = Machine::new(&compiled);
        machine.set_tracer(&mut jsonl);
        machine.query_str("nrev([1,2,3], R)").unwrap().unwrap();
    }
    let text = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(parsed, recorder.events);

    // nrev([1,2,3]) descends through nrev for the suffixes [2,3], [3],
    // and [], and app runs 1+2+3 activations for the reversed prefixes;
    // the traced call events for this query total exactly 9.
    let calls = recorder.calls();
    assert_eq!(calls.len(), 9);
    // Every traced call names a predicate that exists in the program.
    for (pid, _) in &calls {
        assert!(*pid < compiled.predicates.len());
    }
}

#[test]
fn concrete_opcode_counts_total_steps() {
    let program = parse_program(NREV).unwrap();
    let compiled = compile_program(&program).unwrap();
    let mut machine = Machine::new(&compiled);
    machine.query_str("nrev([1,2], R)").unwrap().unwrap();
    let stats = machine.machine_stats();
    assert_eq!(machine.opcodes().total(), stats.instructions);
    assert!(stats.calls > 0);
}
