//! Fault-injection self-test: the oracle matrix must *catch* a planted
//! analyzer bug, and the shrinker must reduce the counterexample to a
//! handful of clauses.
//!
//! This lives in its own integration-test binary because the planted
//! fault is a process-global flag (`awam::analysis::fault`): enabling it
//! here must not leak into the healthy-path campaign tests.

use awam::testkit::{run_campaign, FuzzConfig, Oracle};

#[test]
fn planted_skip_lub_fault_is_caught_and_shrunk() {
    let config = FuzzConfig {
        cases: 200,
        // The soundness oracle is the one that detects frozen success
        // summaries; restricting to it keeps the campaign fast.
        oracles: vec![Oracle::Soundness],
        fault: Some("skip-lub".to_owned()),
        ..FuzzConfig::default()
    };
    let report = run_campaign(&config);
    let failure = report
        .failure
        .expect("a campaign with the skip-lub fault planted must fail");
    assert_eq!(failure.oracle, Oracle::Soundness);
    let min = failure
        .minimized
        .as_ref()
        .expect("minimization is on by default");
    assert!(
        min.clauses <= 5,
        "counterexample should shrink to a handful of clauses, got {}:\n{}",
        min.clauses,
        min.source
    );
    let replay = failure.replay_command();
    assert!(
        replay.contains("--fault skip-lub"),
        "replay command must reproduce the planted fault: {replay}"
    );
    assert!(
        replay.contains("--oracle soundness"),
        "replay command must name the failing oracle: {replay}"
    );
}
