//! End-to-end tests of the `awam serve` daemon: a real TCP server on an
//! ephemeral port, concurrent clients across tenants, and the three
//! contracts the serving layer makes —
//!
//! 1. **Fidelity**: a served analysis is byte-identical to calling
//!    [`Analyzer::analyze`] in-process (fresh sessions exactly; warm
//!    sessions up to the run-header counters, which legitimately read 0
//!    iterations on a memo hit).
//! 2. **Compile-once**: N clients × M queries against one program
//!    compile it exactly once; the counters prove it.
//! 3. **Shedding**: a request that exceeds its abstract-instruction
//!    budget is rejected with the documented `over_budget` error
//!    envelope, not a hang or a panic.

use awam::serve::{Client, ServeConfig, Server};
use awam::syntax::parse_program;
use awam::{obs::Json, Analyzer};

const NREV: &str = "
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
";

const QPERM: &str = "
    qperm([], []).
    qperm(L, [H|T]) :- del(H, L, R), qperm(R, T).
    del(X, [X|T], T).
    del(X, [H|T], [H|R]) :- del(X, T, R).
";

/// The report a standalone in-process analysis produces — the string
/// served responses must reproduce byte-for-byte.
fn direct_report(source: &str, goal: &str, entry: &[&str]) -> String {
    let program = parse_program(source).expect("test program parses");
    let analyzer = Analyzer::compile(&program).expect("test program compiles");
    let analysis = analyzer.analyze_query(goal, entry).expect("analysis runs");
    analysis.report(&analyzer)
}

#[test]
fn concurrent_tenants_get_single_shot_identical_results() {
    let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind ephemeral port")
        .spawn();
    let addr = handle.addr().to_string();

    // Register both programs once, up front.
    let mut setup = Client::connect(&addr).expect("connect");
    let nrev_hash = setup
        .register("tenant-a", NREV)
        .expect("register nrev")
        .get("program")
        .and_then(Json::as_str)
        .expect("nrev hash")
        .to_owned();
    let qperm_hash = setup
        .register("tenant-b", QPERM)
        .expect("register qperm")
        .get("program")
        .and_then(Json::as_str)
        .expect("qperm hash")
        .to_owned();

    let expected_nrev = direct_report(NREV, "nrev", &["glist", "var"]);
    let expected_qperm = direct_report(QPERM, "qperm", &["glist", "var"]);

    // 8 concurrent clients, 2 tenants, 4 queries each. `reuse: false`
    // pins every query to a fresh session, the configuration with an
    // exact byte-equality contract against Analyzer::analyze.
    std::thread::scope(|scope| {
        for client_idx in 0..8 {
            let addr = &addr;
            let (nrev_hash, qperm_hash) = (&nrev_hash, &qperm_hash);
            let (expected_nrev, expected_qperm) = (&expected_nrev, &expected_qperm);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let (tenant, hash, goal, expected) = if client_idx % 2 == 0 {
                    ("tenant-a", nrev_hash, "nrev", expected_nrev)
                } else {
                    ("tenant-b", qperm_hash, "qperm", expected_qperm)
                };
                for _ in 0..4 {
                    let response = client
                        .analyze(tenant, hash, goal, &["glist", "var"], false)
                        .expect("analyze round-trips");
                    assert_eq!(
                        response.get("schema").and_then(Json::as_str),
                        Some("awam/v1"),
                        "every response carries the versioned envelope"
                    );
                    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                    assert_eq!(
                        response.get("report").and_then(Json::as_str),
                        Some(expected.as_str()),
                        "served fresh-session report is byte-identical to Analyzer::analyze"
                    );
                }
            });
        }
    });

    // Compile-once: 2 registers compiled 2 programs; the 32 analyze
    // requests all hit the cache.
    let stats = setup.stats().expect("stats");
    let counters = stats.get("counters").expect("counters object");
    assert_eq!(
        counters.get("program_cache_misses").and_then(Json::as_i64),
        Some(2),
        "each program compiled exactly once"
    );
    assert_eq!(
        counters.get("program_cache_hits").and_then(Json::as_i64),
        Some(32),
        "every analyze found its program compiled"
    );
    assert_eq!(
        counters.get("responses_error").and_then(Json::as_i64),
        Some(0)
    );
    handle.shutdown();
}

#[test]
fn warm_sessions_reuse_the_memo_table_across_requests() {
    let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind")
        .spawn();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let hash = client
        .register("warm-tenant", NREV)
        .expect("register")
        .get("program")
        .and_then(Json::as_str)
        .expect("hash")
        .to_owned();

    let cold = client
        .analyze("warm-tenant", &hash, "nrev", &["glist", "var"], true)
        .expect("cold analyze");
    assert_eq!(cold.get("warm").and_then(Json::as_bool), Some(false));
    assert!(cold.get("iterations").and_then(Json::as_i64).unwrap_or(0) > 0);

    let warm = client
        .analyze("warm-tenant", &hash, "nrev", &["glist", "var"], true)
        .expect("warm analyze");
    assert_eq!(
        warm.get("warm").and_then(Json::as_bool),
        Some(true),
        "second identical goal is answered from the pooled session's table"
    );
    assert_eq!(warm.get("iterations").and_then(Json::as_i64), Some(0));

    // The answers (per-predicate results after the run header) match.
    let results = |doc: &Json| {
        let report = doc.get("report").and_then(Json::as_str).expect("report");
        report[report.find("\n\n").expect("result section")..].to_owned()
    };
    assert_eq!(results(&warm), results(&cold));

    // A different tenant gets no warm session — pools are namespaced.
    let other = client
        .analyze("other-tenant", &hash, "nrev", &["glist", "var"], true)
        .expect("other tenant");
    assert_eq!(other.get("warm").and_then(Json::as_bool), Some(false));
    handle.shutdown();
}

#[test]
fn over_budget_requests_shed_with_the_documented_envelope() {
    let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind")
        .spawn();
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let hash = client
        .register("default", NREV)
        .expect("register")
        .get("program")
        .and_then(Json::as_str)
        .expect("hash")
        .to_owned();

    let response = client
        .call(&Json::obj(vec![
            ("op", Json::Str("analyze".to_owned())),
            ("program", Json::Str(hash.clone())),
            ("goal", Json::Str("nrev".to_owned())),
            (
                "entry",
                Json::Arr(vec![
                    Json::Str("glist".to_owned()),
                    Json::Str("var".to_owned()),
                ]),
            ),
            ("budget", Json::Int(1)),
            ("id", Json::Int(77)),
        ]))
        .expect("over-budget round-trip");

    // The documented error envelope, id echoed.
    assert_eq!(
        response.get("schema").and_then(Json::as_str),
        Some("awam/v1")
    );
    assert_eq!(response.get("kind").and_then(Json::as_str), Some("error"));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(response.get("id").and_then(Json::as_i64), Some(77));
    let error = response.get("error").expect("error object");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("over_budget")
    );
    assert!(error
        .get("message")
        .and_then(Json::as_str)
        .expect("message")
        .contains("budget"));

    // The shed is counted, and the daemon still serves afterwards.
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats
            .get("counters")
            .and_then(|c| c.get("shed_budget"))
            .and_then(Json::as_i64),
        Some(1)
    );
    let retry = client
        .analyze("default", &hash, "nrev", &["glist", "var"], true)
        .expect("unbudgeted retry");
    assert_eq!(retry.get("ok").and_then(Json::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn update_migrates_warm_sessions_to_the_edited_program() {
    let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind")
        .spawn();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let old_hash = client
        .register("edit-tenant", NREV)
        .expect("register")
        .get("program")
        .and_then(Json::as_str)
        .expect("hash")
        .to_owned();

    // Park a warm session under the old fingerprint.
    let cold = client
        .analyze("edit-tenant", &old_hash, "nrev", &["glist", "var"], true)
        .expect("cold analyze");
    assert_eq!(cold.get("warm").and_then(Json::as_bool), Some(false));

    // A duplicate clause: a real clause-level diff with identical
    // semantics, so the migrated session's answers must not move.
    let edited = format!("{NREV}app([], L, L).\n");
    let response = client.update(&old_hash, &edited).expect("update");
    assert_eq!(response.get("kind").and_then(Json::as_str), Some("update"));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        response.get("previous").and_then(Json::as_str),
        Some(old_hash.as_str())
    );
    let new_hash = response
        .get("program")
        .and_then(Json::as_str)
        .expect("new hash")
        .to_owned();
    assert_ne!(new_hash, old_hash);
    assert_eq!(
        response.get("migrated").and_then(Json::as_i64),
        Some(1),
        "the parked session was migrated, not purged"
    );
    let invalidation = response.get("invalidation").expect("invalidation stats");
    let field = |k: &str| invalidation.get(k).and_then(Json::as_i64).expect(k);
    assert_eq!(
        field("entries_before"),
        field("entries_kept") + field("entries_reset") + field("entries_dropped"),
        "kept/reset/dropped partition the pre-edit table"
    );
    assert!(field("entries_reset") > 0, "app's cone was invalidated");

    // The migrated session is parked under the NEW fingerprint and is
    // already reconverged: the next identical goal is a warm hit whose
    // answers are byte-identical to a fresh register+analyze.
    let warm = client
        .analyze("edit-tenant", &new_hash, "nrev", &["glist", "var"], true)
        .expect("analyze after update");
    assert_eq!(warm.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("iterations").and_then(Json::as_i64), Some(0));
    let results = |doc: &Json| {
        let report = doc.get("report").and_then(Json::as_str).expect("report");
        report[report.find("\n\n").expect("result section")..].to_owned()
    };
    let fresh = direct_report(&edited, "nrev", &["glist", "var"]);
    assert_eq!(
        results(&warm),
        fresh[fresh.find("\n\n").expect("result section")..],
        "migrated session answers match a fresh analysis of the edited source"
    );

    // The old fingerprint's pool was drained: analyzing the old program
    // again starts cold.
    let old_again = client
        .analyze("edit-tenant", &old_hash, "nrev", &["glist", "var"], true)
        .expect("old program still registered");
    assert_eq!(old_again.get("warm").and_then(Json::as_bool), Some(false));

    let stats = client.stats().expect("stats");
    let counters = stats.get("counters").expect("counters");
    assert_eq!(counters.get("updates").and_then(Json::as_i64), Some(1));
    assert_eq!(
        counters.get("sessions_migrated").and_then(Json::as_i64),
        Some(1)
    );

    // Updating a fingerprint the daemon has never seen is a clean error.
    let unknown = client
        .update("00000000deadbeef", NREV)
        .expect("error round-trip");
    assert_eq!(
        unknown
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_program")
    );
    handle.shutdown();
}

#[test]
fn batch_matches_per_goal_single_shot_results() {
    let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind")
        .spawn();
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let response = client
        .call(&Json::obj(vec![
            ("op", Json::Str("batch".to_owned())),
            ("source", Json::Str(NREV.to_owned())),
            (
                "goals",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("goal", Json::Str("nrev".to_owned())),
                        (
                            "entry",
                            Json::Arr(vec![
                                Json::Str("glist".to_owned()),
                                Json::Str("var".to_owned()),
                            ]),
                        ),
                    ]),
                    Json::obj(vec![
                        ("goal", Json::Str("app".to_owned())),
                        (
                            "entry",
                            Json::Arr(vec![
                                Json::Str("glist".to_owned()),
                                Json::Str("glist".to_owned()),
                                Json::Str("var".to_owned()),
                            ]),
                        ),
                    ]),
                ]),
            ),
        ]))
        .expect("batch round-trip");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let results = response
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[0].get("report").and_then(Json::as_str),
        Some(direct_report(NREV, "nrev", &["glist", "var"]).as_str())
    );
    assert_eq!(
        results[1].get("report").and_then(Json::as_str),
        Some(direct_report(NREV, "app", &["glist", "glist", "var"]).as_str())
    );
    handle.shutdown();
}
