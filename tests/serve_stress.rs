//! Concurrency stress tests for the serve data plane: a register storm
//! against a deliberately tiny program cache while analyze traffic runs
//! on other connections. What must hold under that pressure:
//!
//! 1. **No deadlock** — the storm finishes (sharded locks, the
//!    compile-once pending tickets, and the pipeline condvars never
//!    wait on each other in a cycle).
//! 2. **Eviction purges the right pools** — when a program is evicted
//!    to make room, every tenant's parked sessions for it are dropped;
//!    a re-registered program starts cold rather than resuming a
//!    session whose extension table belongs to the evicted artifact.
//! 3. **Fidelity survives churn** — every successful fresh-session
//!    response is byte-identical to an in-process
//!    [`Analyzer::analyze`] of the same program, even while the cache
//!    is thrashing.

use awam::serve::{Client, ServeConfig, Server};
use awam::syntax::parse_program;
use awam::testkit::{gen_program, GenConfig, Rng};
use awam::{obs::Json, Analyzer};

/// The report a standalone in-process analysis produces.
fn direct_report(source: &str, goal: &str, entry: &[&str]) -> String {
    let program = parse_program(source).expect("generated program parses");
    let analyzer = Analyzer::compile(&program).expect("generated program compiles");
    let analysis = analyzer.analyze_query(goal, entry).expect("analysis runs");
    analysis.report(&analyzer)
}

/// A corpus of distinct generated programs with their entry arities.
fn corpus(seed: u64, count: usize) -> Vec<(String, usize)> {
    let mut rng = Rng::new(seed);
    let config = GenConfig::default();
    (0..count)
        .map(|_| {
            let p = gen_program(&mut rng, &config);
            (p.source(), p.entry_arity())
        })
        .collect()
}

#[test]
fn register_storm_with_concurrent_analyzes_stays_live_and_exact() {
    // A cache budget small enough that the storm constantly evicts,
    // sharded and pipelined the way production runs.
    let config = ServeConfig {
        cache_bytes: 48 << 10,
        shards: 4,
        workers: 4,
        pipeline_depth: 4,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
    let addr = handle.addr().to_string();

    let programs = corpus(0xC0FFEE, 12);
    let expected: Vec<String> = programs
        .iter()
        .map(|(source, arity)| direct_report(source, "p0", &vec!["any"; *arity]))
        .collect();

    std::thread::scope(|scope| {
        for thread_idx in 0..6 {
            let addr = &addr;
            let (programs, expected) = (&programs, &expected);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let tenant = format!("tenant{}", thread_idx % 3);
                for round in 0..10 {
                    let idx = (thread_idx * 7 + round * 3) % programs.len();
                    let (source, arity) = &programs[idx];
                    let hash = client
                        .register(&tenant, source)
                        .expect("register round-trips")
                        .get("program")
                        .and_then(Json::as_str)
                        .expect("register returns a hash")
                        .to_owned();
                    // Fresh-session analyze by hash: either byte-exact,
                    // or cleanly refused because the storm already
                    // evicted it — never wrong, never hung.
                    let entry: Vec<&str> = vec!["any"; *arity];
                    let response = client
                        .analyze(&tenant, &hash, "p0", &entry, false)
                        .expect("analyze round-trips");
                    if response.get("ok").and_then(Json::as_bool) == Some(true) {
                        assert_eq!(
                            response.get("report").and_then(Json::as_str),
                            Some(expected[idx].as_str()),
                            "served report is byte-identical under cache churn"
                        );
                    } else {
                        assert_eq!(
                            response
                                .get("error")
                                .and_then(|e| e.get("code"))
                                .and_then(Json::as_str),
                            Some("unknown_program"),
                            "the only legal failure is eviction between register and analyze"
                        );
                    }
                    // Warm-path analyze by inline source (immune to the
                    // eviction race): result section must match the
                    // direct run even when answered from a pooled
                    // session.
                    let specs = vec![r#""any""#; *arity].join(",");
                    let response = client
                        .call_line(&format!(
                            r#"{{"op":"analyze","tenant":"{tenant}","source":{},"goal":"p0","entry":[{specs}],"reuse":true}}"#,
                            Json::Str(source.clone()).emit()
                        ))
                        .expect("inline analyze round-trips");
                    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                    let report = response
                        .get("report")
                        .and_then(Json::as_str)
                        .expect("report");
                    let split = report.find("\n\n").expect("result section");
                    assert_eq!(
                        &report[split..],
                        &expected[idx][expected[idx].find("\n\n").expect("result section")..],
                        "warm results match the direct run under churn"
                    );
                }
            });
        }
    });

    // The storm actually thrashed the cache, and the daemon still
    // answers coherently afterwards.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    let counters = stats.get("counters").expect("counters");
    assert!(
        counters
            .get("program_cache_evictions")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            > 0,
        "the tiny byte budget forced evictions"
    );
    assert_eq!(
        counters.get("requests").and_then(Json::as_i64),
        Some(6 * 10 * 3),
        "6 threads x 10 rounds x (register + 2 analyzes)"
    );
    handle.shutdown();
}

#[test]
fn eviction_purges_the_evicted_programs_session_pools() {
    // One shard so LRU order is global and the victim is predictable.
    let config = ServeConfig {
        cache_bytes: 32 << 10,
        shards: 1,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

    let programs = corpus(0xBEEF, 40);
    let (victim_source, victim_arity) = &programs[0];
    let entry: Vec<&str> = vec!["any"; *victim_arity];

    let victim_hash = client
        .register("t", victim_source)
        .expect("register victim")
        .get("program")
        .and_then(Json::as_str)
        .expect("hash")
        .to_owned();
    let cold = client
        .analyze("t", &victim_hash, "p0", &entry, true)
        .expect("cold analyze");
    assert_eq!(cold.get("warm").and_then(Json::as_bool), Some(false));
    let warm = client
        .analyze("t", &victim_hash, "p0", &entry, true)
        .expect("warm analyze");
    assert_eq!(
        warm.get("warm").and_then(Json::as_bool),
        Some(true),
        "a session is parked for (t, victim) before the eviction"
    );

    // Register filler programs without touching the victim again; it
    // becomes the LRU entry and must fall off the 32 KiB budget.
    for (source, _) in &programs[1..] {
        client.register("t", source).expect("register filler");
    }
    let probe = client
        .analyze("t", &victim_hash, "p0", &entry, true)
        .expect("probe round-trips");
    assert_eq!(
        probe
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_program"),
        "39 filler programs overflow a 32 KiB budget and evict the victim"
    );

    // Re-registering the same source yields the same fingerprint — if
    // eviction had leaked the parked session, this analyze would
    // resume it and report warm. It must start cold.
    client
        .register("t", victim_source)
        .expect("re-register victim");
    let after = client
        .analyze("t", &victim_hash, "p0", &entry, true)
        .expect("post-eviction analyze");
    assert_eq!(after.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        after.get("warm").and_then(Json::as_bool),
        Some(false),
        "eviction purged the victim's pooled sessions"
    );
    handle.shutdown();
}

#[test]
fn pipelined_storm_answers_every_id_exactly_once() {
    let config = ServeConfig {
        cache_bytes: 48 << 10,
        shards: 4,
        workers: 4,
        pipeline_depth: 8,
        ..ServeConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
    let addr = handle.addr().to_string();

    let programs = corpus(0xF00D, 6);
    std::thread::scope(|scope| {
        for thread_idx in 0..4 {
            let addr = &addr;
            let programs = &programs;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // 48 id-tagged inline-source analyzes in windows of 8.
                let lines: Vec<String> = (0..48)
                    .map(|id| {
                        let (source, arity) = &programs[(thread_idx + id) % programs.len()];
                        let entry = vec![r#""any""#; *arity].join(",");
                        format!(
                            r#"{{"op":"analyze","tenant":"t{thread_idx}","source":{},"goal":"p0","entry":[{entry}],"id":{id}}}"#,
                            Json::Str(source.clone()).emit()
                        )
                    })
                    .collect();
                let mut seen = std::collections::BTreeSet::new();
                for window in lines.chunks(8) {
                    for line in window {
                        client.send_line(line).expect("send");
                    }
                    client.flush().expect("flush");
                    for _ in window {
                        let response = client.recv().expect("response");
                        assert_eq!(
                            response.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "pipelined analyze succeeds: {}",
                            response.emit()
                        );
                        let id = response.get("id").and_then(Json::as_i64).expect("id");
                        assert!(seen.insert(id), "no duplicate ids");
                    }
                }
                assert_eq!(seen.len(), 48, "every pipelined request answered");
            });
        }
    });
    handle.shutdown();
}
