//! Quickstart: compile a Prolog program and run the compiled dataflow
//! analysis on it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use awam::analysis::Analyzer;
use awam::syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Naive reverse — the classic benchmark the paper's Table 1 uses.
    let source = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).

        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ";
    let program = parse_program(source)?;

    // Compile to WAM code (the same code a concrete machine would run)…
    let analyzer = Analyzer::compile(&program)?;
    println!(
        "compiled {} predicates into {} WAM instructions\n",
        analyzer.program().predicates.len(),
        analyzer.program().code_size()
    );

    // …and reinterpret it over the abstract domain, asking: what happens
    // when nrev/2 is called with a ground list and an unbound output?
    let analysis = analyzer.analyze_query("nrev", &["glist", "var"])?;
    println!("{}", analysis.report(&analyzer));

    // The extension table answers mode/type questions directly:
    let nrev = analysis.predicate("nrev", 2).expect("analyzed");
    let success = nrev.success_summary().expect("nrev can succeed");
    assert!(
        success.node_is_ground(success.root(1)),
        "the analyzer proves the output of nrev/2 is ground"
    );
    println!("=> nrev/2 maps a ground list to a ground list: proven.");
    Ok(())
}
