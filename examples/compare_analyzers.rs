//! The paper's experiment in miniature: the same analysis performed three
//! ways — compiled into the abstract WAM, interpreted natively, and
//! hosted on Prolog — with times side by side.
//!
//! ```sh
//! cargo run --release --example compare_analyzers [benchmark]
//! ```

use awam::analysis::Analyzer;
use awam::baseline::BaselineAnalyzer;
use awam::hosted_analyzer::HostedAnalyzer;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "nreverse".into());
    let bench = awam::suite::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name} (try: tak, qsort, zebra…)"))?;
    let program = bench.parse()?;

    println!("benchmark: {name} (entry {}/0)\n", bench.entry);

    // 1. Compiled: the abstract WAM.
    let analyzer = Analyzer::compile(&program)?;
    let entry = awam::absdom::Pattern::from_spec(bench.entry_specs).expect("entry spec");
    let t = Instant::now();
    let analysis = analyzer.analyze(bench.entry, &entry)?;
    let compiled = t.elapsed();
    println!(
        "compiled abstract WAM : {:>10.1?}  ({} abstract instructions, {} iterations)",
        compiled, analysis.instructions_executed, analysis.iterations
    );

    // 2. Native meta-interpreter (same domain, interpretive dispatch).
    let mut native = BaselineAnalyzer::new(&program)?;
    let t = Instant::now();
    let native_analysis = native.analyze(bench.entry, &entry)?;
    let native_time = t.elapsed();
    println!(
        "native meta-interp.   : {:>10.1?}  ({} goal reductions)",
        native_time, native_analysis.goals_executed
    );

    // 3. Prolog-hosted (the 1992 deployment model).
    let hosted = HostedAnalyzer::build(&program, bench.entry, bench.entry_specs)?;
    let t = Instant::now();
    let run = hosted.run()?;
    let hosted_time = t.elapsed();
    println!(
        "Prolog-hosted         : {:>10.1?}  ({} concrete WAM instructions)",
        hosted_time, run.steps
    );

    println!(
        "\nspeed-up of compilation: {:.1}x over hosted, {:.1}x over native",
        hosted_time.as_secs_f64() / compiled.as_secs_f64(),
        native_time.as_secs_f64() / compiled.as_secs_f64()
    );
    println!(
        "\nwhat the compiled analyzer found:\n{}",
        analysis.report(&analyzer)
    );
    Ok(())
}
