//! Mode inference: the same predicate analyzed under different calling
//! patterns — the information an optimizing Prolog compiler needs to
//! specialize unification (the paper's motivation, §1).
//!
//! ```sh
//! cargo run --example mode_inference
//! ```

use awam::analysis::Analyzer;
use awam::syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).

        qsort([], R, R).
        qsort([X|L], R, R0) :-
            partition(L, X, L1, L2),
            qsort(L2, R1, R0),
            qsort(L1, R, [X|R1]).
        partition([], _, [], []).
        partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
        partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
    ";
    let program = parse_program(source)?;

    // Forward mode: append two ground lists.
    let analyzer = Analyzer::compile(&program)?;
    let fwd = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
    let app = fwd.predicate("app", 3).expect("analyzed");
    println!("app(glist, glist, var): modes {:?}", mode_strings(app));

    // Backward mode: split a ground list.
    let analyzer = Analyzer::compile(&program)?;
    let bwd = analyzer.analyze_query("app", &["var", "var", "glist"])?;
    let app = bwd.predicate("app", 3).expect("analyzed");
    println!("app(var, var, glist):   modes {:?}", mode_strings(app));

    // qsort in its difference-list mode.
    let analyzer = Analyzer::compile(&program)?;
    let q = analyzer.analyze_query("qsort", &["glist", "var", "nil"])?;
    for pred in &q.predicates {
        println!("{}: modes {:?}", pred.name, mode_strings(pred));
    }
    println!("\nfull report for qsort:\n{}", q.report(&analyzer));
    Ok(())
}

fn mode_strings(pred: &awam::analysis::PredAnalysis) -> Vec<String> {
    pred.modes().iter().map(ToString::to_string).collect()
}
