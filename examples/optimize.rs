//! The downstream client: feed the analysis to the optimizer — what the
//! paper's §1 says global dataflow information is *for*.
//!
//! ```sh
//! cargo run --example optimize
//! ```

use awam::analysis::Analyzer;
use awam::opt::{specialize, OptReport};
use awam::syntax::parse_program;
use awam::wam::compile_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        % A type-dispatched predicate: only the integer path is live.
        format_value(X, int(X)) :- integer(X).
        format_value(X, atom(X)) :- atom(X).
        format_value([], empty).

        sum([], 0).
        sum([H|T], S) :- sum(T, S0), S is S0 + H, format_value(S, _).

        main(S) :- sum([1, 2, 3, 4], S).
    ";
    let program = parse_program(source)?;
    let compiled = compile_program(&program)?;
    let analyzer = Analyzer::from_compiled(compiled.clone());
    let analysis = analyzer.analyze_query("main", &["var"])?;

    // 1. Instruction-level opportunities.
    let report = OptReport::build(&compiled, &analysis);
    println!("optimization opportunities:\n{report}");

    // 2. Clause-level specialization: the atom/[] clauses of
    //    format_value/2 are dead for this entry.
    let spec = specialize(&program, &analysis);
    println!(
        "specialization removed {} clauses and {} predicates",
        spec.dead_clauses, spec.dead_preds
    );
    let before = compiled.code_size();
    let after = compile_program(&spec.program)?.code_size();
    println!("code size: {before} -> {after} instructions");
    assert!(spec.dead_clauses >= 1);
    assert!(after < before);

    // The residual program still computes the same answer.
    let residual = compile_program(&spec.program)?;
    let mut machine = awam::machine::Machine::new(&residual);
    let solution = machine.query_str("main(S)")?.expect("still succeeds");
    assert_eq!(solution.binding_str("S").unwrap(), "10");
    println!("residual program verified: main(S) gives S = 10");
    Ok(())
}
