% Naive reverse of a 30-element list — the classic LIPS benchmark.

nreverse :- nrev([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                  16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30], _).

nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concatenate(RT, [H], R).

concatenate([], L, L).
concatenate([H|T], L, [H|R]) :- concatenate(T, L, R).
