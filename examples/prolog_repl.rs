//! The substrate as a miniature Prolog: compile a program and run
//! queries on the concrete WAM, enumerating solutions.
//!
//! ```sh
//! cargo run --example prolog_repl               # canned demo
//! cargo run --example prolog_repl -- 'mem(X, [a, b, c])'
//! ```

use awam::machine::Machine;
use awam::syntax::parse_program;
use awam::wam::compile_program;

const PROGRAM: &str = "
    mem(X, [X|_]).
    mem(X, [_|T]) :- mem(X, T).

    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).

    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.

    queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
    place([], Qs, Qs).
    place(Unplaced, Safe, Qs) :-
        sel(Unplaced, Rest, Q),
        \\+ attack(Q, Safe),
        place(Rest, [Q|Safe], Qs).
    attack(X, Xs) :- attack(X, 1, Xs).
    attack(X, N, [Y|_]) :- X is Y + N.
    attack(X, N, [Y|_]) :- X is Y - N.
    attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
    range(N, N, [N]) :- !.
    range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
    sel([X|Xs], Xs, X).
    sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    let compiled = compile_program(&program)?;
    let mut machine = Machine::new(&compiled);

    let queries: Vec<String> = match std::env::args().nth(1) {
        Some(q) => vec![q],
        None => vec![
            "app(X, Y, [1, 2, 3])".to_owned(),
            "mem(Q, [r, g, b])".to_owned(),
            "len([a, b, c, d], N)".to_owned(),
            "queens(6, Qs)".to_owned(),
        ],
    };

    for query in queries {
        println!("?- {query}.");
        let mut solution = machine.query_str(&query)?;
        let mut count = 0;
        while let Some(s) = solution {
            count += 1;
            if s.bindings.is_empty() {
                println!("   true");
            } else {
                let bindings: Vec<String> = s
                    .bindings
                    .iter()
                    .map(|(name, _, text)| format!("{name} = {text}"))
                    .collect();
                println!("   {}", bindings.join(", "));
            }
            if count >= 5 {
                println!("   … (stopping after 5 solutions)");
                break;
            }
            solution = machine.next_solution()?;
        }
        if count == 0 {
            println!("   false");
        }
        println!();
    }
    Ok(())
}
