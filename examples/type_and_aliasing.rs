//! Type and aliasing inference: the parts of the paper's domain beyond
//! plain modes — `α-list` types, structure types, and definite aliasing
//! between argument positions.
//!
//! ```sh
//! cargo run --example type_and_aliasing
//! ```

use awam::analysis::{report, Analyzer};
use awam::syntax::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- list types through symbolic differentiation ---
    let deriv = parse_program(
        "
        d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
        d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
        d(X, X, 1) :- !.
        d(_, _, 0).
        ",
    )?;
    let analyzer = Analyzer::compile(&deriv)?;
    let analysis = analyzer.analyze_query("d", &["g", "atom", "var"])?;
    let d = analysis.predicate("d", 3).expect("analyzed");
    println!("d/3 types on success:");
    for (i, ty) in report::success_types(d, analyzer.interner())
        .iter()
        .enumerate()
    {
        println!("  argument {}: {}", i + 1, ty);
    }

    // --- aliasing: two arguments provably the same term ---
    let same = parse_program(
        "
        same(X, X).
        chain(A, B, C) :- same(A, B), same(B, C).
        ",
    )?;
    let analyzer = Analyzer::compile(&same)?;
    let analysis = analyzer.analyze_query("chain", &["var", "var", "var"])?;
    let chain = analysis.predicate("chain", 3).expect("analyzed");
    let aliases = report::aliased_arg_pairs(chain);
    println!("\nchain/3 definite aliasing on success: {aliases:?}");
    assert!(aliases.contains(&(0, 1)) && aliases.contains(&(1, 2)));

    // Aliasing is what makes groundness propagate:
    let grounding = parse_program(
        "
        same(X, X).
        test(A, B) :- same(A, B), A = f(1, 2).
        ",
    )?;
    let analyzer = Analyzer::compile(&grounding)?;
    let analysis = analyzer.analyze_query("test", &["var", "var"])?;
    let test = analysis.predicate("test", 2).expect("analyzed");
    let success = test.success_summary().expect("succeeds");
    println!(
        "\ntest/2 success pattern: {}",
        success.display(analyzer.interner())
    );
    assert!(
        success.node_is_ground(success.root(1)),
        "grounding A must ground its alias B"
    );
    println!("=> binding A to f(1,2) provably grounds B too.");
    Ok(())
}
