//! Seed-replayable random program edits.
//!
//! [`gen_edit`] draws one well-formed [`ProgramEdit`] against a *parsed*
//! program, reusing the [`crate::proggen`] term vocabulary for spliced
//! clause text and the shared [`Rng`] for determinism. Because the draw
//! depends only on the RNG stream and the current program, an edit
//! sequence over an evolving program replays exactly from `(campaign
//! seed, case index, edit index)`: the campaign seed fixes the generated
//! program, and oracle #9 derives edit `j`'s RNG seed from the
//! fingerprint of the source as it stands after edits `0..j` (see
//! [`crate::oracle::Oracle::Incremental`]).
//!
//! Constraints keeping the edits *interesting* rather than degenerate:
//! clause-targeting edits only name existing predicates; `RemoveClause`
//! only fires on predicates with ≥ 2 clauses (never emptying one as a
//! side effect); `RemovePredicate` never targets the entry predicate
//! `p0` or a predicate that other predicates' clauses mention (so the
//! edited program keeps compiling); `AddPredicate` invents a fresh name.
//! When a drawn kind has no legal target it falls back to `AddClause`,
//! which is always legal.

use crate::proggen::{gen_term, term_source};
use crate::rng::Rng;
use awam_core::incremental::ProgramEdit;
use prolog_syntax::{pretty, Program};

/// What [`gen_edit`] knows about one predicate of the program under edit.
struct PredInfo {
    name: String,
    arity: usize,
    clauses: usize,
}

fn predicates(program: &Program) -> Vec<PredInfo> {
    program
        .predicate_index()
        .into_iter()
        .map(|(key, clauses)| PredInfo {
            name: program.interner.resolve(key.name).to_owned(),
            arity: key.arity,
            clauses: clauses.len(),
        })
        .collect()
}

/// Whether `text` contains `name` as a standalone identifier token
/// (boundaries are any non-`[a-zA-Z0-9_]` byte). Used for the
/// conservative "nobody mentions this predicate" removability check and
/// for fresh-name picking; a false positive only skips a legal edit.
fn mentions(text: &str, name: &str) -> bool {
    let bytes = text.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(pos) = text[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + name.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// A random head or call `name(args…)` with generated argument terms.
fn render_call(rng: &mut Rng, name: &str, arity: usize) -> String {
    if arity == 0 {
        return name.to_owned();
    }
    let args: Vec<String> = (0..arity)
        .map(|_| term_source(&gen_term(rng, 2)))
        .collect();
    format!("{name}({})", args.join(", "))
}

/// A random clause for `name/arity`: generated head arguments and up to
/// two body goals (calls to existing predicates, or unifications).
fn gen_clause_text(rng: &mut Rng, name: &str, arity: usize, preds: &[PredInfo]) -> String {
    let head = render_call(rng, name, arity);
    let num_goals = rng.below(3) as usize;
    let goals: Vec<String> = (0..num_goals)
        .map(|_| {
            if rng.below(3) < 2 && !preds.is_empty() {
                let target = &preds[rng.below(preds.len() as u64) as usize];
                render_call(rng, &target.name, target.arity)
            } else {
                format!(
                    "{} = {}",
                    term_source(&gen_term(rng, 2)),
                    term_source(&gen_term(rng, 2))
                )
            }
        })
        .collect();
    if goals.is_empty() {
        format!("{head}.")
    } else {
        format!("{head} :- {}.", goals.join(", "))
    }
}

/// The first `q<N>` name the program does not mention anywhere.
fn fresh_name(program_text: &str) -> String {
    (0..)
        .map(|i| format!("q{i}"))
        .find(|name| !mentions(program_text, name))
        .expect("some qN is always unused")
}

/// Draw one well-formed random edit against `program`.
///
/// The draw consumes a bounded number of RNG values, so an edit sequence
/// is replayable by re-seeding the RNG per edit (what oracle #9 does).
pub fn gen_edit(rng: &mut Rng, program: &Program) -> ProgramEdit {
    let preds = predicates(program);
    if preds.is_empty() {
        return ProgramEdit::AddPredicate {
            source: "q0.".to_owned(),
        };
    }
    let pick = |rng: &mut Rng| rng.below(preds.len() as u64) as usize;
    match rng.below(5) {
        // AddClause — always legal.
        0 => {
            let p = &preds[pick(rng)];
            ProgramEdit::AddClause {
                clause: gen_clause_text(rng, &p.name, p.arity, &preds),
            }
        }
        // ReplaceClause — always legal (every predicate has ≥ 1 clause).
        1 => {
            let p = &preds[pick(rng)];
            let clause = rng.below(p.clauses as u64) as usize;
            ProgramEdit::ReplaceClause {
                pred: p.name.clone(),
                arity: p.arity,
                clause,
                text: gen_clause_text(rng, &p.name, p.arity, &preds),
            }
        }
        // RemoveClause — needs a predicate with ≥ 2 clauses.
        2 => {
            let candidates: Vec<&PredInfo> = preds.iter().filter(|p| p.clauses >= 2).collect();
            if candidates.is_empty() {
                let p = &preds[pick(rng)];
                return ProgramEdit::AddClause {
                    clause: gen_clause_text(rng, &p.name, p.arity, &preds),
                };
            }
            let p = candidates[rng.below(candidates.len() as u64) as usize];
            let clause = rng.below(p.clauses as u64) as usize;
            ProgramEdit::RemoveClause {
                pred: p.name.clone(),
                arity: p.arity,
                clause,
            }
        }
        // AddPredicate — a fresh, never-mentioned name.
        3 => {
            let text = render(program);
            let name = fresh_name(&text);
            let arity = rng.below(3) as usize;
            let num_clauses = 1 + rng.below(2) as usize;
            let clauses: Vec<String> = (0..num_clauses)
                .map(|_| gen_clause_text(rng, &name, arity, &preds))
                .collect();
            ProgramEdit::AddPredicate {
                source: clauses.join("\n"),
            }
        }
        // RemovePredicate — never the entry, never a mentioned one.
        _ => {
            let text = render(program);
            let candidates: Vec<&PredInfo> = preds
                .iter()
                .filter(|p| {
                    p.name != "p0" && !mentioned_outside_own_clauses(program, &text, p)
                })
                .collect();
            if candidates.is_empty() {
                let p = &preds[pick(rng)];
                return ProgramEdit::AddClause {
                    clause: gen_clause_text(rng, &p.name, p.arity, &preds),
                };
            }
            let p = candidates[rng.below(candidates.len() as u64) as usize];
            ProgramEdit::RemovePredicate {
                pred: p.name.clone(),
                arity: p.arity,
            }
        }
    }
}

fn render(program: &Program) -> String {
    program
        .clauses
        .iter()
        .map(|c| pretty::clause_to_string(c, &program.interner))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Whether any clause of a *different* predicate mentions `p.name`
/// (conservative token scan over rendered clause text — a recursive
/// self-call does not block removal, since it vanishes with the
/// predicate).
fn mentioned_outside_own_clauses(program: &Program, _text: &str, p: &PredInfo) -> bool {
    program.clauses.iter().any(|c| {
        let key = c.pred_key();
        let own = key.arity == p.arity && program.interner.resolve(key.name) == p.name;
        !own && mentions(&pretty::clause_to_string(c, &program.interner), &p.name)
    })
}

/// Greedily minimize a failing edit sequence: try dropping each edit in
/// turn (re-checking `still_fails` on the shortened sequence) and keep
/// every drop that preserves the failure. `still_fails` receives the
/// candidate sequence and must replay it from scratch — edits that no
/// longer apply after earlier drops should be skipped, not treated as
/// failures.
pub fn minimize_edits(
    edits: &[ProgramEdit],
    still_fails: &mut dyn FnMut(&[ProgramEdit]) -> bool,
) -> Vec<ProgramEdit> {
    let mut kept: Vec<ProgramEdit> = edits.to_vec();
    let mut i = 0;
    while i < kept.len() {
        let mut candidate = kept.clone();
        candidate.remove(i);
        if still_fails(&candidate) {
            kept = candidate;
        } else {
            i += 1;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proggen::{gen_program, GenConfig};

    #[test]
    fn generated_edits_apply_and_reparse() {
        let config = GenConfig::default();
        let mut applied = 0u32;
        for case in 0..48u64 {
            let mut rng = Rng::new(case);
            let g = gen_program(&mut rng, &config);
            let mut program = prolog_syntax::parse_program(&g.source()).unwrap();
            for edit_idx in 0..4u64 {
                let mut erng = Rng::new(case * 1000 + edit_idx);
                let edit = gen_edit(&mut erng, &program);
                let new_source = edit
                    .apply(&program)
                    .unwrap_or_else(|e| panic!("case {case} edit {edit_idx} ({edit:?}): {e}"));
                program = prolog_syntax::parse_program(&new_source).unwrap_or_else(|e| {
                    panic!("case {case} edit {edit_idx}: edited source unparseable: {e}\n{new_source}")
                });
                applied += 1;
            }
        }
        assert_eq!(applied, 48 * 4, "every generated edit must apply");
    }

    #[test]
    fn edits_replay_from_the_same_seed() {
        let g = gen_program(&mut Rng::new(7), &GenConfig::default());
        let program = prolog_syntax::parse_program(&g.source()).unwrap();
        let a = gen_edit(&mut Rng::new(99), &program);
        let b = gen_edit(&mut Rng::new(99), &program);
        assert_eq!(a, b);
    }

    #[test]
    fn minimize_edits_drops_irrelevant_steps() {
        let edits = vec![
            ProgramEdit::AddClause {
                clause: "x.".into(),
            },
            ProgramEdit::AddClause {
                clause: "y.".into(),
            },
            ProgramEdit::AddClause {
                clause: "z.".into(),
            },
        ];
        // "Failure" iff the sequence still contains the y edit.
        let min = minimize_edits(&edits, &mut |seq| {
            seq.iter().any(|e| matches!(e, ProgramEdit::AddClause { clause } if clause == "y."))
        });
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn remove_predicate_spares_the_entry_and_called_preds() {
        let src = "p0 :- p1.\np1.\np2.\n";
        let program = prolog_syntax::parse_program(src).unwrap();
        for seed in 0..64 {
            let mut rng = Rng::new(seed);
            if let ProgramEdit::RemovePredicate { pred, .. } = gen_edit(&mut rng, &program) {
                assert_eq!(pred, "p2", "only the uncalled non-entry predicate is removable");
            }
        }
    }
}
