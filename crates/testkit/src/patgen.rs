//! Random abstract patterns, and random concrete instances of a pattern
//! (γ-sampling).
//!
//! Promoted from the inline generators of `gamma_soundness.rs` (shape
//! language + LCG) and `interning.rs` (node-level generator): one
//! generator, one PRNG, shared by every γ-soundness and lattice property
//! test.

use crate::rng::Rng;
use absdom::{AbsLeaf, PNode, Pattern};
use prolog_syntax::{Interner, Term, VarId};
use std::collections::HashMap;

/// A random single-root pattern of at most `depth` nesting levels.
/// Structure functors are interned as `f`/`g` through `interner`.
pub fn random_pattern(rng: &mut Rng, depth: usize, interner: &mut Interner) -> Pattern {
    random_pattern_n(rng, 1, depth, interner)
}

/// A random pattern with `arity` roots.
pub fn random_pattern_n(
    rng: &mut Rng,
    arity: usize,
    depth: usize,
    interner: &mut Interner,
) -> Pattern {
    let mut nodes = Vec::new();
    let roots = (0..arity)
        .map(|_| random_node(rng, depth, &mut nodes, interner))
        .collect();
    Pattern::new(nodes, roots)
}

fn random_node(
    rng: &mut Rng,
    depth: usize,
    nodes: &mut Vec<PNode>,
    interner: &mut Interner,
) -> usize {
    let node = if depth > 0 && rng.below(3) == 0 {
        if rng.below(2) == 0 {
            let e = random_node(rng, depth - 1, nodes, interner);
            PNode::List(e)
        } else {
            let f = interner.intern(if rng.below(2) == 0 { "f" } else { "g" });
            let n = 1 + rng.below(2) as usize;
            let args = (0..n)
                .map(|_| random_node(rng, depth - 1, nodes, interner))
                .collect();
            PNode::Struct(f, args)
        }
    } else {
        match rng.below(3) {
            0 => PNode::Leaf(AbsLeaf::ALL[rng.below(AbsLeaf::ALL.len() as u64) as usize]),
            1 => PNode::Int(rng.range_i64(-3, 4)),
            _ => PNode::Atom(absdom::nil_symbol()),
        }
    };
    nodes.push(node);
    nodes.len() - 1
}

/// A concrete term in γ(node `id` of `p`) — a random instance covered by
/// the pattern.
///
/// `var_base` offsets generated variable ids so instances of two patterns
/// can be kept variable-disjoint. `shared` memoizes one instance per
/// pattern node, so every occurrence of a shared node materializes the
/// same subterm (call with a fresh map per instance).
pub fn gamma_instance(
    p: &Pattern,
    id: usize,
    interner: &mut Interner,
    rng: &mut Rng,
    var_base: u32,
    shared: &mut HashMap<usize, Term>,
) -> Term {
    if let Some(t) = shared.get(&id) {
        return t.clone();
    }
    let term = match p.node(id) {
        PNode::Leaf(l) => instance_of_leaf(*l, interner, rng, var_base),
        PNode::Int(i) => Term::Int(*i),
        PNode::Atom(a) => Term::Atom(*a),
        PNode::Struct(f, args) => {
            let args = args
                .iter()
                .map(|&a| gamma_instance(p, a, interner, rng, var_base, shared))
                .collect();
            Term::Struct(*f, args)
        }
        PNode::List(e) => {
            let n = rng.below(3);
            let items: Vec<Term> = (0..n)
                .map(|_| gamma_instance(p, *e, interner, rng, var_base, shared))
                .collect();
            Term::list(interner, items)
        }
    };
    shared.insert(id, term.clone());
    term
}

/// A concrete term in γ(leaf).
pub fn instance_of_leaf(l: AbsLeaf, interner: &mut Interner, rng: &mut Rng, var_base: u32) -> Term {
    use AbsLeaf::*;
    match l {
        Var => Term::Var(VarId(var_base + rng.below(4) as u32)),
        Integer => Term::Int(rng.range_i64(-3, 4)),
        Atom => Term::Atom(interner.intern(["a", "b", "c"][rng.below(3) as usize])),
        Const => {
            if rng.below(2) == 0 {
                Term::Int(rng.range_i64(0, 5))
            } else {
                Term::Atom(interner.intern("k"))
            }
        }
        Ground => match rng.below(3) {
            0 => Term::Int(rng.range_i64(0, 5)),
            1 => Term::Atom(interner.intern("gr")),
            _ => {
                let f = interner.intern("h");
                Term::Struct(f, vec![Term::Int(rng.range_i64(0, 3))])
            }
        },
        NonVar => match rng.below(2) {
            0 => Term::Atom(interner.intern("nv")),
            _ => {
                let f = interner.intern("h");
                Term::Struct(f, vec![Term::Var(VarId(var_base + rng.below(4) as u32))])
            }
        },
        Any => match rng.below(3) {
            0 => Term::Var(VarId(var_base + rng.below(4) as u32)),
            1 => Term::Int(rng.range_i64(0, 5)),
            _ => Term::Atom(interner.intern("x")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_instances_are_covered_by_their_pattern() {
        // The γ-sampler's whole contract: what it produces for a pattern
        // lies in that pattern's concretization.
        for case in 0..256u64 {
            let mut rng = Rng::new(0x6A77A ^ case);
            let mut interner = Interner::new();
            let p = random_pattern(&mut rng, 2, &mut interner);
            let t = gamma_instance(
                &p,
                p.root(0),
                &mut interner,
                &mut rng,
                0,
                &mut HashMap::new(),
            );
            assert!(
                p.covers(std::slice::from_ref(&t)),
                "case {case}: sampled instance {t:?} escapes γ({p:?})"
            );
        }
    }
}
