//! Random well-formed Prolog programs.
//!
//! The generator produces a compact intermediate form ([`GenProgram`]) —
//! predicates `p0…pN` with random clause shapes over a small vocabulary —
//! that renders to parseable, compilable Prolog source. Keeping the
//! intermediate form (instead of generating text directly) is what makes
//! the shrinker possible: delta-debugging edits structure, not strings.
//!
//! Shapes covered: variables, atoms, integers, nil, partial lists,
//! structures (`f/g` of arity 1–2), and the goal mix of the concrete
//! machine's builtin surface — user calls, unification, arithmetic
//! (`is` with `+` and `*`), comparison (`<`), and cut.

use crate::rng::Rng;

/// Knobs of the program generator. [`GenConfig::default`] reproduces the
/// historical `tests/fuzz_programs.rs` shape mix (3 predicates, ≤2
/// clauses, ≤2 goals of 5 kinds) plus the `is … * 2` arithmetic goal.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of predicates `p0…p(n-1)`. The entry point is always `p0`.
    pub num_preds: u64,
    /// Clauses per predicate are drawn from `1..=max_clauses`.
    pub max_clauses: u64,
    /// Goals per clause body are drawn from `0..max_goals`.
    pub max_goals: u64,
    /// Head/goal argument counts are drawn from `0..max_args`.
    pub max_args: u64,
    /// Depth cap for generated terms (compound terms only below it).
    pub term_depth: usize,
    /// Relative weights of the goal kinds, in [`GoalKind::ALL`] order:
    /// call, unify, `is +`, `is *`, `<`, cut. A zero weight disables the
    /// kind entirely (e.g. set cut's weight to 0 for cut-free programs).
    pub goal_weights: [u32; 6],
}

/// The goal kinds [`GenConfig::goal_weights`] indexes, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoalKind {
    /// A user predicate call `pN(…)`.
    Call,
    /// A unification goal `T1 = T2`.
    Unify,
    /// Arithmetic `V is T + 1`.
    IsPlus,
    /// Arithmetic `V is T * 2`.
    IsTimes,
    /// Comparison `T1 < T2`.
    Less,
    /// Cut.
    Cut,
}

impl GoalKind {
    /// Every goal kind, in the order [`GenConfig::goal_weights`] uses.
    pub const ALL: [GoalKind; 6] = [
        GoalKind::Call,
        GoalKind::Unify,
        GoalKind::IsPlus,
        GoalKind::IsTimes,
        GoalKind::Less,
        GoalKind::Cut,
    ];
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            num_preds: 3,
            max_clauses: 2,
            max_goals: 3,
            max_args: 3,
            term_depth: 2,
            goal_weights: [2, 1, 1, 1, 1, 1],
        }
    }
}

/// A generated program: predicates `p0…pN`.
///
/// A predicate whose clause list is empty has been removed by the
/// shrinker; it renders to nothing and no live clause calls it.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// The predicates, indexed by the `N` of `pN`.
    pub preds: Vec<GenPred>,
}

/// One generated predicate.
#[derive(Clone, Debug)]
pub struct GenPred {
    /// Arity (head arg count; every clause is padded/truncated to it).
    pub arity: usize,
    /// The clauses.
    pub clauses: Vec<GenClause>,
}

/// One generated clause.
#[derive(Clone, Debug)]
pub struct GenClause {
    /// Head arguments (`arity` of them).
    pub head_args: Vec<GenTerm>,
    /// Body goals, in order.
    pub goals: Vec<GenGoal>,
}

/// A generated term over the small fuzzing vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenTerm {
    /// A clause variable `V0…V3`.
    Var(u8),
    /// An atom `a0…a2`.
    Atom(u8),
    /// A small integer.
    Int(i8),
    /// A list cell `[H|T]`.
    Cons(Box<GenTerm>, Box<GenTerm>),
    /// The empty list.
    Nil,
    /// A structure `f0(…)`/`f1(…)`.
    Struct(u8, Vec<GenTerm>),
}

/// A generated body goal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenGoal {
    /// A call to predicate `p<target>` with the given argument terms
    /// (padded/truncated to the callee's arity at render time).
    Call(u8, Vec<GenTerm>),
    /// `T1 = T2`.
    UnifyGoal(GenTerm, GenTerm),
    /// `V is T + 1`.
    IsPlus(u8, GenTerm),
    /// `V is T * 2`.
    IsTimes(u8, GenTerm),
    /// `T1 < T2`.
    Less(GenTerm, GenTerm),
    /// `!`.
    Cut,
}

/// A random term of at most `depth` nesting levels.
pub fn gen_term(rng: &mut Rng, depth: usize) -> GenTerm {
    let compound = depth > 0 && rng.below(3) == 0;
    if compound {
        if rng.below(2) == 0 {
            GenTerm::Cons(
                Box::new(gen_term(rng, depth - 1)),
                Box::new(gen_term(rng, depth - 1)),
            )
        } else {
            let f = rng.below(2) as u8;
            let n = 1 + rng.below(2) as usize;
            let args = (0..n).map(|_| gen_term(rng, depth - 1)).collect();
            GenTerm::Struct(f, args)
        }
    } else {
        match rng.below(4) {
            0 => GenTerm::Var(rng.below(4) as u8),
            1 => GenTerm::Atom(rng.below(3) as u8),
            2 => GenTerm::Int(rng.range_i64(-3, 4) as i8),
            _ => GenTerm::Nil,
        }
    }
}

/// A random goal over `config.num_preds` predicates, drawn from the
/// weighted goal-kind mix.
pub fn gen_goal(rng: &mut Rng, config: &GenConfig) -> GenGoal {
    match GoalKind::ALL[rng.weighted(&config.goal_weights)] {
        GoalKind::Call => {
            let p = rng.below(config.num_preds) as u8;
            let n = rng.below(config.max_args) as usize;
            let args = (0..n).map(|_| gen_term(rng, config.term_depth)).collect();
            GenGoal::Call(p, args)
        }
        GoalKind::Unify => GenGoal::UnifyGoal(
            gen_term(rng, config.term_depth),
            gen_term(rng, config.term_depth),
        ),
        GoalKind::IsPlus => GenGoal::IsPlus(rng.below(4) as u8, gen_term(rng, config.term_depth)),
        GoalKind::IsTimes => GenGoal::IsTimes(rng.below(4) as u8, gen_term(rng, config.term_depth)),
        GoalKind::Less => GenGoal::Less(
            gen_term(rng, config.term_depth),
            gen_term(rng, config.term_depth),
        ),
        GoalKind::Cut => GenGoal::Cut,
    }
}

/// A random well-formed program.
pub fn gen_program(rng: &mut Rng, config: &GenConfig) -> GenProgram {
    let mut preds: Vec<GenPred> = (0..config.num_preds)
        .map(|_| {
            let num_clauses = 1 + rng.below(config.max_clauses) as usize;
            let clauses = (0..num_clauses)
                .map(|_| {
                    let head_args = (0..rng.below(config.max_args))
                        .map(|_| gen_term(rng, config.term_depth))
                        .collect();
                    let goals = (0..rng.below(config.max_goals))
                        .map(|_| gen_goal(rng, config))
                        .collect();
                    GenClause { head_args, goals }
                })
                .collect();
            GenPred { arity: 0, clauses }
        })
        .collect();
    // Arity of each predicate = the head arg count of its first clause;
    // pad/truncate the others to match.
    for p in &mut preds {
        let arity = p.clauses[0].head_args.len();
        p.arity = arity;
        for c in &mut p.clauses {
            c.head_args.truncate(arity);
            while c.head_args.len() < arity {
                c.head_args.push(GenTerm::Var(3));
            }
        }
    }
    GenProgram { preds }
}

/// Render one generated term to source text (shared with [`crate::editgen`],
/// which splices generated terms into clause-level edits).
pub fn term_source(t: &GenTerm) -> String {
    term_src(t)
}

fn term_src(t: &GenTerm) -> String {
    match t {
        GenTerm::Var(v) => format!("V{v}"),
        GenTerm::Atom(a) => format!("a{a}"),
        GenTerm::Int(i) => format!("({i})"),
        GenTerm::Nil => "[]".into(),
        GenTerm::Cons(h, t) => format!("[{}|{}]", term_src(h), term_src(t)),
        GenTerm::Struct(f, args) => {
            let args: Vec<String> = args.iter().map(term_src).collect();
            format!("f{f}({})", args.join(", "))
        }
    }
}

impl GenProgram {
    /// The arity of the entry predicate `p0` (0 if `p0` was shrunk away).
    pub fn entry_arity(&self) -> usize {
        self.preds.first().map_or(0, |p| p.arity)
    }

    /// Total clause count across live predicates.
    pub fn clause_count(&self) -> usize {
        self.preds.iter().map(|p| p.clauses.len()).sum()
    }

    /// Render to Prolog source text. Predicates with no clauses are
    /// omitted (the generator never makes them; the shrinker does).
    pub fn source(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.preds.iter().enumerate() {
            for c in &p.clauses {
                let head = if p.arity == 0 {
                    format!("p{i}")
                } else {
                    let args: Vec<String> = c.head_args.iter().map(term_src).collect();
                    format!("p{i}({})", args.join(", "))
                };
                let goals: Vec<String> = c
                    .goals
                    .iter()
                    .map(|goal| match goal {
                        GenGoal::Call(t, args) => {
                            let target = &self.preds[*t as usize];
                            // Match the callee's arity (pad with fresh vars).
                            let mut args: Vec<String> =
                                args.iter().take(target.arity).map(term_src).collect();
                            while args.len() < target.arity {
                                args.push(format!("W{}", args.len()));
                            }
                            if target.arity == 0 {
                                format!("p{t}")
                            } else {
                                format!("p{t}({})", args.join(", "))
                            }
                        }
                        GenGoal::UnifyGoal(a, b) => format!("{} = {}", term_src(a), term_src(b)),
                        GenGoal::IsPlus(v, t) => format!("V{v} is {} + 1", term_src(t)),
                        GenGoal::IsTimes(v, t) => format!("V{v} is {} * 2", term_src(t)),
                        GenGoal::Less(a, b) => format!("{} < {}", term_src(a), term_src(b)),
                        GenGoal::Cut => "!".into(),
                    })
                    .collect();
                if goals.is_empty() {
                    out.push_str(&format!("{head}.\n"));
                } else {
                    out.push_str(&format!("{head} :- {}.\n", goals.join(", ")));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse_and_compile() {
        let config = GenConfig::default();
        for case in 0..64 {
            let mut rng = Rng::new(case);
            let g = gen_program(&mut rng, &config);
            let src = g.source();
            let program = prolog_syntax::parse_program(&src)
                .unwrap_or_else(|e| panic!("case {case}: unparseable source: {e}\n{src}"));
            wam::compile_program(&program)
                .unwrap_or_else(|e| panic!("case {case}: uncompilable source: {e}\n{src}"));
        }
    }

    #[test]
    fn zero_weight_disables_a_goal_kind() {
        let config = GenConfig {
            goal_weights: [0, 1, 1, 1, 1, 0], // no calls, no cuts
            ..GenConfig::default()
        };
        for case in 0..32 {
            let mut rng = Rng::new(case);
            let g = gen_program(&mut rng, &config);
            for p in &g.preds {
                for c in &p.clauses {
                    for goal in &c.goals {
                        assert!(!matches!(goal, GenGoal::Call(..) | GenGoal::Cut));
                    }
                }
            }
        }
    }
}
