//! The differential oracle matrix.
//!
//! Every oracle takes one generated program (as source text) and checks
//! one equivalence the analyzer's correctness argument rests on. The
//! matrix is the fuzzing analogue of the repo's named test files: each
//! oracle generalizes one of them from fixed benchmarks to arbitrary
//! generated programs.
//!
//! | oracle      | equivalence checked                                        |
//! |-------------|------------------------------------------------------------|
//! | `soundness` | every traced concrete call is covered by the analysis (§4.1)|
//! | `interning` | structural (Linear) and interned (Hashed) consult paths agree on results |
//! | `traces`    | the two consult paths emit byte-identical JSONL traces      |
//! | `batch`     | `analyze_batch` at 1/2/8 workers equals sequential runs     |
//! | `sessions`  | a warm session hit answers exactly what the cold run said   |
//! | `budget`    | analysis terminates within the iteration/instruction budget |
//! | `provenance`| derivation tracking is invisible (byte-identical reports and traces) and every recorded lub chain re-folds to the stored summary |
//! | `fusion`    | superinstruction fusion is invisible: fused and unfused code give byte-identical traces, reports and opcode histograms |
//! | `incremental` | after k random edits, the incrementally repaired table's goal-reachable core is byte-equal to a cold re-analysis of the edited source |

use crate::editgen::{gen_edit, minimize_edits};
use crate::rng::{case_seed, Rng};
use absdom::Pattern;
use awam_core::incremental::{ProgramEdit, UpdateError, Workspace};
use awam_core::{program_fingerprint, Analysis, AnalysisError, Analyzer, BatchGoal, EtImpl};
use awam_obs::{JsonlTracer, RecordingTracer};
use prolog_syntax::parse_program;
use wam::compile_program;
use wam_machine::Machine;

/// Step cap for concrete replay runs (the generated programs may loop).
const CONCRETE_STEP_CAP: u64 = 50_000;
/// Abstract-instruction budget the `budget` oracle enforces. Generated
/// programs are tiny; a healthy analyzer stays orders of magnitude below.
const ABSTRACT_INSTR_BUDGET: u64 = 2_000_000;
/// How many traced calls the soundness oracle re-checks per program.
const MAX_CHECKED_CALLS: usize = 2_000;
/// How many concrete entry solutions the soundness oracle enumerates.
/// Backtracking into later clauses is what exposes unsound success
/// summaries, so one solution is not enough.
const MAX_SOLUTIONS: usize = 64;

/// One oracle of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Concrete-call-coverage soundness.
    Soundness,
    /// Structural-vs-interned ET result equality (Linear vs Hashed).
    Interning,
    /// Byte-identical JSONL traces between the two consult paths.
    Traces,
    /// Sequential-vs-batch equality at 1, 2 and 8 workers.
    Batch,
    /// Cold-vs-warm session equality.
    Sessions,
    /// Analyzer termination within the step budget.
    Budget,
    /// Provenance-on vs provenance-off invisibility plus lub-chain
    /// refolding.
    Provenance,
    /// Fused-vs-unfused invisibility: byte-identical traces, reports
    /// and per-opcode histograms.
    Fusion,
    /// Incremental-vs-cold equality under random edit sequences: the
    /// goal-reachable core of the repaired table must be byte-equal to
    /// a cold re-analysis after every edit.
    Incremental,
}

impl Oracle {
    /// Every oracle, in matrix order.
    pub const ALL: [Oracle; 9] = [
        Oracle::Soundness,
        Oracle::Interning,
        Oracle::Traces,
        Oracle::Batch,
        Oracle::Sessions,
        Oracle::Budget,
        Oracle::Provenance,
        Oracle::Fusion,
        Oracle::Incremental,
    ];

    /// The CLI name of this oracle.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Soundness => "soundness",
            Oracle::Interning => "interning",
            Oracle::Traces => "traces",
            Oracle::Batch => "batch",
            Oracle::Sessions => "sessions",
            Oracle::Budget => "budget",
            Oracle::Provenance => "provenance",
            Oracle::Fusion => "fusion",
            Oracle::Incremental => "incremental",
        }
    }

    /// Parse a CLI name back into an oracle.
    pub fn from_name(name: &str) -> Option<Oracle> {
        Oracle::ALL.into_iter().find(|o| o.name() == name)
    }
}

impl std::fmt::Display for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an oracle did not pass.
#[derive(Debug)]
pub enum OracleOutcome {
    /// The program violates the equivalence the oracle checks — a real
    /// finding (and what the shrinker preserves).
    Violation(String),
    /// The program could not be put through the oracle at all (parse or
    /// compile failure, unknown entry). On generator output this is a
    /// generator bug; during shrinking it marks an edit that cut too much.
    Infra(String),
}

/// Run `oracle` over `source`, analyzing from entry `p0` with all-`any`
/// entry specs.
///
/// # Errors
///
/// [`OracleOutcome::Violation`] when the checked equivalence fails,
/// [`OracleOutcome::Infra`] when the program cannot be analyzed at all.
pub fn check(oracle: Oracle, source: &str) -> Result<(), OracleOutcome> {
    let setup = Setup::new(source)?;
    match oracle {
        Oracle::Soundness => setup.soundness(),
        Oracle::Interning => setup.interning(),
        Oracle::Traces => setup.traces(),
        Oracle::Batch => setup.batch(),
        Oracle::Sessions => setup.sessions(),
        Oracle::Budget => setup.budget(),
        Oracle::Provenance => setup.provenance(),
        Oracle::Fusion => setup.fusion(),
        Oracle::Incremental => setup.incremental(),
    }
}

/// Shared per-program setup: parsed program, compiled code, entry specs.
struct Setup {
    source: String,
    program: prolog_syntax::Program,
    compiled: wam::CompiledProgram,
    entry_arity: usize,
}

fn infra(what: &str, e: impl std::fmt::Display) -> OracleOutcome {
    OracleOutcome::Infra(format!("{what}: {e}"))
}

impl Setup {
    fn new(source: &str) -> Result<Setup, OracleOutcome> {
        let program = parse_program(source).map_err(|e| infra("parse", e))?;
        let compiled = compile_program(&program).map_err(|e| infra("compile", e))?;
        let entry_arity = compiled
            .predicates
            .iter()
            .find(|p| compiled.interner.resolve(p.key.name) == "p0")
            .map(|p| p.key.arity)
            .ok_or_else(|| OracleOutcome::Infra("entry predicate p0 not compiled".into()))?;
        Ok(Setup {
            source: source.to_owned(),
            program,
            compiled,
            entry_arity,
        })
    }

    fn entry_pattern(&self) -> Pattern {
        let specs = vec!["any"; self.entry_arity];
        Pattern::from_spec(&specs).expect("all-any specs are always valid")
    }

    fn analyzer(&self, et: EtImpl) -> Analyzer {
        Analyzer::builder().et_impl(et).build(self.compiled.clone())
    }

    fn analyze(&self, et: EtImpl) -> Result<Analysis, OracleOutcome> {
        self.analyzer(et)
            .analyze("p0", &self.entry_pattern())
            .map_err(analysis_outcome)
    }

    /// §4.1 soundness: run the program concretely (step-capped, call-
    /// traced, enumerating up to [`MAX_SOLUTIONS`] entry solutions) and
    /// require (a) every concrete call to be covered by some calling
    /// pattern the analysis derived for that predicate, and (b) every
    /// concrete entry solution to be covered by the entry's success
    /// summary. (b) is what catches a success summary that stopped
    /// widening: the first solution follows the first clause, so only
    /// backtracked solutions can contradict a frozen summary.
    fn soundness(&self) -> Result<(), OracleOutcome> {
        let analysis = self.analyze(EtImpl::Linear)?;
        let mut tracer = RecordingTracer::default();
        let mut machine = Machine::new(&self.compiled);
        machine.set_tracer(&mut tracer);
        machine.set_max_steps(CONCRETE_STEP_CAP);
        let arg_names: Vec<String> = (0..self.entry_arity).map(|i| format!("Q{i}")).collect();
        let query = if self.entry_arity == 0 {
            "p0".to_owned()
        } else {
            format!("p0({})", arg_names.join(", "))
        };
        // Failures (including step-cap and arithmetic errors) are fine:
        // whatever calls happened before the stop must still be covered.
        let mut solutions = Vec::new();
        if let Ok(Some(first)) = machine.query_str(&query) {
            solutions.push(first);
            while solutions.len() < MAX_SOLUTIONS {
                match machine.next_solution() {
                    Ok(Some(s)) => solutions.push(s),
                    Ok(None) | Err(_) => break,
                }
            }
        }
        drop(machine);

        let entry_analysis = analysis
            .predicates
            .iter()
            .find(|p| p.arity == self.entry_arity && p.name == format!("p0/{}", self.entry_arity));
        for solution in &solutions {
            let args: Vec<_> = arg_names
                .iter()
                .map(|n| {
                    solution
                        .bindings
                        .iter()
                        .find(|(name, _, _)| name == n)
                        .map(|(_, term, _)| term.clone())
                        .ok_or_else(|| infra("solution binding missing", n))
                })
                .collect::<Result<_, _>>()?;
            let covered = entry_analysis.is_some_and(|pa| {
                pa.entries
                    .iter()
                    .any(|(_, sp)| sp.as_ref().is_some_and(|sp| sp.covers(&args)))
            });
            if !covered {
                return Err(OracleOutcome::Violation(format!(
                    "concrete entry solution not covered by the success summary: p0({})",
                    solution
                        .bindings
                        .iter()
                        .map(|(_, _, r)| r.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }

        for (pid, args) in tracer.calls().iter().take(MAX_CHECKED_CALLS) {
            let name = self.compiled.predicates[*pid]
                .key
                .display(&self.compiled.interner);
            let Some(pa) = analysis.predicates.iter().find(|p| p.pred == *pid) else {
                return Err(OracleOutcome::Violation(format!(
                    "predicate {name} called concretely but never analyzed"
                )));
            };
            if !pa.entries.iter().any(|(cp, _)| cp.covers(args)) {
                return Err(OracleOutcome::Violation(format!(
                    "uncovered concrete call to {name} with args {args:?}"
                )));
            }
        }
        Ok(())
    }

    /// The structural (Linear scan, allocation-free matcher) and interned
    /// (Hashed, id-keyed probe) consult paths must agree on everything the
    /// analysis says.
    fn interning(&self) -> Result<(), OracleOutcome> {
        let lin = self.analyze(EtImpl::Linear)?;
        let hash = self.analyze(EtImpl::Hashed)?;
        if lin.predicates != hash.predicates {
            return Err(OracleOutcome::Violation(
                "per-predicate results diverge between Linear and Hashed consult paths".into(),
            ));
        }
        if lin.iterations != hash.iterations {
            return Err(OracleOutcome::Violation(format!(
                "iteration counts diverge: Linear {} vs Hashed {}",
                lin.iterations, hash.iterations
            )));
        }
        if lin.instructions_executed != hash.instructions_executed {
            return Err(OracleOutcome::Violation(format!(
                "abstract work diverges: Linear {} vs Hashed {} instructions",
                lin.instructions_executed, hash.instructions_executed
            )));
        }
        Ok(())
    }

    /// The serialized event stream must not change by a byte when the
    /// lookup structure switches from structural scans to id probes.
    fn traces(&self) -> Result<(), OracleOutcome> {
        let entry = self.entry_pattern();
        let mut streams = Vec::new();
        for et in [EtImpl::Linear, EtImpl::Hashed] {
            let analyzer = self.analyzer(et);
            let mut tracer = JsonlTracer::new(Vec::new());
            analyzer
                .analyze_traced("p0", &entry, &mut tracer)
                .map_err(analysis_outcome)?;
            streams.push(tracer.into_inner().map_err(|e| infra("trace flush", e))?);
        }
        if streams[0] != streams[1] {
            return Err(OracleOutcome::Violation(
                "JSONL trace bytes differ between structural and interned consult paths".into(),
            ));
        }
        Ok(())
    }

    /// `analyze_batch` is a pure speedup: goal-for-goal identical to
    /// sequential runs at every worker count.
    fn batch(&self) -> Result<(), OracleOutcome> {
        let analyzer = self.analyzer(EtImpl::Linear);
        // One goal per live predicate (all-`any` entries), so the batch
        // exercises more than the entry point.
        let goals: Vec<BatchGoal> = self
            .compiled
            .predicates
            .iter()
            .map(|p| {
                let specs = vec!["any"; p.key.arity];
                BatchGoal::new(
                    self.compiled.interner.resolve(p.key.name),
                    Pattern::from_spec(&specs).expect("all-any specs are always valid"),
                )
            })
            .collect();
        let sequential: Vec<_> = goals
            .iter()
            .map(|g| analyzer.analyze(&g.name, &g.entry))
            .collect();
        for workers in [1usize, 2, 8] {
            let batch = analyzer.analyze_batch(&goals, workers);
            for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
                match (got, want) {
                    (Ok(got), Ok(want)) => {
                        if got.predicates != want.predicates || got.iterations != want.iterations {
                            return Err(OracleOutcome::Violation(format!(
                                "goal {i} ({}) diverges from sequential at {workers} workers",
                                goals[i].name
                            )));
                        }
                    }
                    (Err(_), Err(_)) => {}
                    _ => {
                        return Err(OracleOutcome::Violation(format!(
                            "goal {i} ({}) error status diverges at {workers} workers",
                            goals[i].name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// A repeated query through one session is a warm hit that answers
    /// exactly what the cold run answered.
    fn sessions(&self) -> Result<(), OracleOutcome> {
        let analyzer = self.analyzer(EtImpl::Linear);
        let entry = self.entry_pattern();
        let mut session = analyzer.session();
        let cold = session.analyze("p0", &entry).map_err(analysis_outcome)?;
        let warm = session.analyze("p0", &entry).map_err(analysis_outcome)?;
        if warm.iterations != 0 || warm.instructions_executed != 0 {
            return Err(OracleOutcome::Violation(format!(
                "warm hit did fixpoint work: {} iterations, {} instructions",
                warm.iterations, warm.instructions_executed
            )));
        }
        if warm.predicates != cold.predicates {
            return Err(OracleOutcome::Violation(
                "warm session answer differs from the cold run".into(),
            ));
        }
        if session.stats().session_warm_hits != 1 || session.stats().session_cold_runs != 1 {
            return Err(OracleOutcome::Violation(format!(
                "session counters off: {} warm hits, {} cold runs (want 1/1)",
                session.stats().session_warm_hits,
                session.stats().session_cold_runs
            )));
        }
        Ok(())
    }

    /// Termination: the fixpoint must converge well inside the safety
    /// rails (no `IterationLimit`/`DepthLimit`) and inside the abstract
    /// instruction budget.
    fn budget(&self) -> Result<(), OracleOutcome> {
        let analysis = self.analyze(EtImpl::Linear)?;
        if analysis.instructions_executed > ABSTRACT_INSTR_BUDGET {
            return Err(OracleOutcome::Violation(format!(
                "analysis executed {} abstract instructions (budget {})",
                analysis.instructions_executed, ABSTRACT_INSTR_BUDGET
            )));
        }
        // `program` is kept so oracles can extend to source-level checks;
        // use it for a cheap sanity bound meanwhile.
        debug_assert!(!self.program.clauses.is_empty());
        Ok(())
    }

    /// Provenance tracking must be invisible — the rendered report and
    /// the JSONL trace stay byte-identical whether tracking is on or
    /// off — and every recorded derivation must be *true*: its lub chain
    /// re-folds (via the structural lub) to the stored success summary.
    fn provenance(&self) -> Result<(), OracleOutcome> {
        let entry = self.entry_pattern();
        let mut reports = Vec::new();
        let mut streams = Vec::new();
        let mut derivations = None;
        for on in [false, true] {
            let analyzer = Analyzer::builder()
                .et_impl(EtImpl::Linear)
                .provenance(on)
                .build(self.compiled.clone());
            let mut tracer = JsonlTracer::new(Vec::new());
            let analysis = analyzer
                .analyze_traced("p0", &entry, &mut tracer)
                .map_err(analysis_outcome)?;
            streams.push(tracer.into_inner().map_err(|e| infra("trace flush", e))?);
            reports.push(analysis.report(&analyzer));
            if on {
                derivations = analysis.provenance;
            } else if analysis.provenance.is_some() {
                return Err(OracleOutcome::Violation(
                    "provenance-off run returned a derivation report".into(),
                ));
            }
        }
        if reports[0] != reports[1] {
            return Err(OracleOutcome::Violation(
                "analysis report changes when provenance tracking is enabled".into(),
            ));
        }
        if streams[0] != streams[1] {
            return Err(OracleOutcome::Violation(
                "JSONL trace bytes change when provenance tracking is enabled".into(),
            ));
        }
        let Some(report) = derivations else {
            return Err(OracleOutcome::Violation(
                "provenance-on run returned no derivation report".into(),
            ));
        };
        if let Some(v) = report.refold_violation() {
            return Err(OracleOutcome::Violation(format!(
                "recorded derivation does not re-fold: {v}"
            )));
        }
        Ok(())
    }

    /// Superinstruction fusion must be invisible: a fused run and an
    /// unfused run (`fuse(false)`) of the same program must emit
    /// byte-identical JSONL traces and reports, execute the same number
    /// of (constituent-attributed) instructions, and agree on every
    /// per-opcode dispatch count.
    fn fusion(&self) -> Result<(), OracleOutcome> {
        let entry = self.entry_pattern();
        let mut reports = Vec::new();
        let mut streams = Vec::new();
        let mut analyses = Vec::new();
        for fuse in [true, false] {
            let analyzer = Analyzer::builder()
                .et_impl(EtImpl::Linear)
                .fuse(fuse)
                .build(self.compiled.clone());
            let mut tracer = JsonlTracer::new(Vec::new());
            let analysis = analyzer
                .analyze_traced("p0", &entry, &mut tracer)
                .map_err(analysis_outcome)?;
            streams.push(tracer.into_inner().map_err(|e| infra("trace flush", e))?);
            reports.push(analysis.report(&analyzer));
            analyses.push(analysis);
        }
        if streams[0] != streams[1] {
            return Err(OracleOutcome::Violation(
                "JSONL trace bytes differ between fused and unfused code".into(),
            ));
        }
        if reports[0] != reports[1] {
            return Err(OracleOutcome::Violation(
                "analysis report differs between fused and unfused code".into(),
            ));
        }
        if analyses[0].instructions_executed != analyses[1].instructions_executed {
            return Err(OracleOutcome::Violation(format!(
                "attributed instruction counts diverge: fused {} vs unfused {}",
                analyses[0].instructions_executed, analyses[1].instructions_executed
            )));
        }
        for i in 0..wam::NUM_OPCODES {
            if analyses[0].opcodes.get(i) != analyses[1].opcodes.get(i) {
                return Err(OracleOutcome::Violation(format!(
                    "opcode histogram diverges at {}: fused {} vs unfused {}",
                    wam::OPCODE_NAMES[i],
                    analyses[0].opcodes.get(i),
                    analyses[1].opcodes.get(i)
                )));
            }
        }
        Ok(())
    }

    /// Oracle #9: apply [`INCREMENTAL_EDITS`] random edits through the
    /// incremental [`Workspace`], and after every applied edit require
    /// the goal-reachable core of the repaired table (both the raw
    /// entry dump and the rendered report) to be **byte-equal** to a
    /// cold re-analysis of the same edited source.
    ///
    /// Edit `j`'s RNG is seeded from the fingerprint of the source as it
    /// stands before the edit, so the whole sequence replays from the
    /// campaign seed alone — and program shrinking composes for free,
    /// because the oracle stays a pure function of the source text.
    /// Edits the evolving program rejects (unparseable splice, broken
    /// compile) are skipped: the workspace keeps its pre-edit state.
    /// On a divergence the failing edit sequence is greedily minimized
    /// ([`minimize_edits`]) before reporting.
    fn incremental(&self) -> Result<(), OracleOutcome> {
        let specs = vec!["any"; self.entry_arity];
        let mut ws = incremental_workspace(&self.source, &specs)?;
        let mut applied: Vec<ProgramEdit> = Vec::new();
        for j in 0..INCREMENTAL_EDITS {
            let base = program_fingerprint(ws.source());
            let mut rng = Rng::new(case_seed(base, j));
            let edit = gen_edit(&mut rng, ws.program());
            match ws.apply_edit(&edit) {
                Ok(stats) => {
                    applied.push(edit.clone());
                    if stats.entries_before
                        != stats.entries_kept + stats.entries_reset + stats.entries_dropped
                    {
                        return Err(OracleOutcome::Violation(format!(
                            "edit {j} ({edit:?}): invalidation counters lose entries: \
                             {} before vs {} kept + {} reset + {} dropped",
                            stats.entries_before,
                            stats.entries_kept,
                            stats.entries_reset,
                            stats.entries_dropped
                        )));
                    }
                }
                // Repair blow-ups are real findings; inapplicable edits
                // (parse/compile/edit errors) leave the workspace as-is.
                Err(UpdateError::Analysis(e)) => return Err(analysis_outcome(e)),
                Err(_) => continue,
            }
            if let Some(divergence) = incremental_divergence(&mut ws, &specs)? {
                let minimal = minimize_edits(&applied, &mut |seq| {
                    incremental_replay_diverges(&self.source, &specs, seq)
                });
                return Err(OracleOutcome::Violation(format!(
                    "after edit {j}: {divergence}\nminimized edit sequence ({} of {}): {minimal:#?}",
                    minimal.len(),
                    applied.len()
                )));
            }
        }
        Ok(())
    }
}

/// How many random edits oracle #9 applies per generated program.
const INCREMENTAL_EDITS: u64 = 4;

/// Open a workspace on `source` and run the entry analysis once.
fn incremental_workspace(source: &str, specs: &[&str]) -> Result<Workspace, OracleOutcome> {
    let mut ws = Workspace::from_source(source).map_err(|e| infra("workspace", e))?;
    ws.analyze("p0", specs).map_err(analysis_outcome)?;
    Ok(ws)
}

/// Compare the workspace's repaired core against a cold re-analysis of
/// its current source; `Some(description)` on a byte difference.
fn incremental_divergence(
    ws: &mut Workspace,
    specs: &[&str],
) -> Result<Option<String>, OracleOutcome> {
    let inc_dump = ws.core_dump("p0", specs).map_err(analysis_outcome)?;
    let inc_report = ws.core_report("p0", specs).map_err(analysis_outcome)?;
    let mut cold = Workspace::from_source(ws.source()).map_err(|e| infra("cold workspace", e))?;
    let cold_dump = cold.core_dump("p0", specs).map_err(analysis_outcome)?;
    let cold_report = cold.core_report("p0", specs).map_err(analysis_outcome)?;
    if inc_dump != cold_dump {
        return Ok(Some(format!(
            "incremental ET core diverges from cold re-analysis\nsource:\n{}\nincremental:\n{inc_dump}\ncold:\n{cold_dump}",
            ws.source()
        )));
    }
    if inc_report != cold_report {
        return Ok(Some(format!(
            "incremental report diverges from cold re-analysis\nsource:\n{}\nincremental:\n{inc_report}\ncold:\n{cold_report}",
            ws.source()
        )));
    }
    Ok(None)
}

/// Replay an explicit edit sequence from `source` (skipping edits the
/// evolving program rejects) and report whether the final state still
/// diverges from a cold re-analysis — the [`minimize_edits`] predicate.
fn incremental_replay_diverges(source: &str, specs: &[&str], edits: &[ProgramEdit]) -> bool {
    let Ok(mut ws) = incremental_workspace(source, specs) else {
        return false;
    };
    for edit in edits {
        match ws.apply_edit(edit) {
            Ok(_) => {}
            Err(_) => continue,
        }
    }
    matches!(incremental_divergence(&mut ws, specs), Ok(Some(_)))
}

/// Map an [`AnalysisError`] to an oracle outcome: resource-bound blowups
/// are violations (the termination obligation failed); entry/spec
/// problems are infrastructure (the program under test lost its entry).
fn analysis_outcome(e: AnalysisError) -> OracleOutcome {
    match e {
        AnalysisError::IterationLimit | AnalysisError::DepthLimit => {
            OracleOutcome::Violation(format!("analysis hit a resource bound: {e}"))
        }
        other => OracleOutcome::Infra(format!("analysis setup: {other}")),
    }
}
