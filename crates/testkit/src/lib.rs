//! # awam-testkit — the generative-testing subsystem
//!
//! One deterministic, seed-replayable harness shared by every randomized
//! test in the workspace and by the `awam fuzz` CLI subcommand:
//!
//! * [`Rng`] — the single PRNG (xorshift64* with a splitmix64 seed
//!   scrambler and an unbiased [`Rng::below`]), replacing the three
//!   divergent inline copies the test files used to carry;
//! * [`proggen`] — random well-formed Prolog programs with a configurable
//!   size/recursion/builtin mix ([`GenConfig`]);
//! * [`patgen`] — random abstract patterns and random concrete instances
//!   of a pattern (γ-sampling);
//! * [`editgen`] — random well-formed clause-level edits over a parsed
//!   program, each replayable from `(seed, case, edit index)`, plus a
//!   greedy edit-sequence minimizer;
//! * [`mod@shrink`] — a greedy delta-debugging shrinker (drop predicates →
//!   drop clauses → drop goals → simplify terms) that re-checks the
//!   failing oracle at every step;
//! * [`oracle`] — the differential oracle matrix: concrete-call-coverage
//!   soundness, structural-vs-interned ET equality, trace byte equality,
//!   sequential-vs-batch equality, cold-vs-warm session equality, and
//!   termination/step-budget;
//! * [`campaign`] — the campaign driver gluing it all together, with
//!   per-case replay seeds and JSON failure dumps.
//!
//! In-tree tests are thin bounded wrappers over this crate; their
//! iteration counts honor the `AWAM_FUZZ_ITERS` environment variable
//! (see [`fuzz_iters`]). Long campaigns run outside `cargo test` via
//! `awam fuzz --seed N --cases N [--oracle NAME] [--minimize]`.

#![warn(missing_docs)]

pub mod campaign;
pub mod editgen;
pub mod oracle;
pub mod patgen;
pub mod proggen;
pub mod rng;
pub mod shrink;

pub use campaign::{run_campaign, FuzzConfig, FuzzFailure, FuzzReport, Minimized};
pub use editgen::{gen_edit, minimize_edits};
pub use oracle::{check, Oracle, OracleOutcome};
pub use patgen::{gamma_instance, instance_of_leaf, random_pattern, random_pattern_n};
pub use proggen::{gen_program, GenConfig, GenProgram};
pub use rng::{case_seed, fuzz_iters, Rng};
pub use shrink::{shrink, ShrinkReport};
