//! The workspace's one deterministic PRNG.
//!
//! Before this crate existed, three test files each carried their own
//! inline generator (an xorshift64*, an LCG, and a splitmix64). This is
//! the single replacement: xorshift64* state update with a splitmix64
//! seed scrambler, so nearby seeds (`seed`, `seed + 1`, …) still produce
//! unrelated streams, and an **unbiased** [`Rng::below`] (Lemire's
//! widening-multiply method with rejection, instead of the modulo-biased
//! `next() % n` the inline copies used).

/// A deterministic, seed-replayable pseudo-random generator.
///
/// Cheap to create, `Copy`-free by design (drawing mutates the state), and
/// stable across platforms: every draw is pure 64-bit integer arithmetic.
#[derive(Clone, Debug)]
pub struct Rng(u64);

/// splitmix64's finalizer: a bijective 64-bit scrambler.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The generation seed of case `index` in a campaign with base seed
/// `base`.
///
/// Defined as `base + index` (the [`Rng`] constructor scrambles it), so
/// the replay command for a failing case `i` under base seed `S` is
/// simply `--seed S+i --cases 1`: case 0 of base seed `S + i` draws the
/// identical stream.
pub fn case_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index)
}

impl Rng {
    /// A generator seeded with `seed`. Any seed is valid, including 0
    /// (the state is scrambled through splitmix64 and forced nonzero).
    pub fn new(seed: u64) -> Rng {
        Rng(splitmix(seed) | 1)
    }

    /// The next raw 64-bit draw (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n` without modulo bias (Lemire's method: widening
    /// multiply, rejecting the short low-word interval).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        if (m as u64) < n {
            // Only reachable for draws in the biased low fringe; reject
            // until the low word clears the threshold.
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng::range_i64: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A random list of `0..max_len` integers in `lo..hi` (the shape the
    /// benchmark-style soundness tests feed to `nrev`/`qsort`/`len`).
    pub fn int_vec(&mut self, max_len: u64, lo: i64, hi: i64) -> Vec<i64> {
        let n = self.below(max_len);
        (0..n).map(|_| self.range_i64(lo, hi)).collect()
    }

    /// Pick an index according to integer `weights` (an index `i` wins
    /// with probability `weights[i] / weights.sum()`). Zero-weight entries
    /// are never picked.
    ///
    /// # Panics
    ///
    /// Panics if the weights sum to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let mut draw = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        unreachable!("draw below the weight total always lands in a bucket")
    }
}

/// The iteration count for in-tree randomized tests: the value of the
/// `AWAM_FUZZ_ITERS` environment variable when set and parseable, else
/// `default`. Long campaigns belong in `awam fuzz`; the in-tree wrappers
/// stay bounded (and CI can tighten them further).
pub fn fuzz_iters(default: u64) -> u64 {
    match std::env::var("AWAM_FUZZ_ITERS") {
        Ok(v) => v.parse().unwrap_or(default),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_within_bounds_and_roughly_uniform() {
        // 50k draws over 5 buckets: expected 10k per bucket, σ ≈ 89.
        // A ±500 window is > 5σ — fails only on a real bias, not noise.
        let mut rng = Rng::new(0xF00D);
        let mut buckets = [0u64; 5];
        for _ in 0..50_000 {
            let v = rng.below(5);
            buckets[v as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (9_500..=10_500).contains(&count),
                "bucket {i} has {count} of 50000 draws — distribution is off"
            );
        }
    }

    #[test]
    fn below_handles_degenerate_and_huge_ranges() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
        // A modulus just above 2^63: the old `% n` would map nearly the
        // whole upper half of the draw space onto the low residues.
        let n = (1u64 << 63) + 3;
        for _ in 0..100 {
            assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams of adjacent seeds overlap");
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn weighted_never_picks_zero_weight() {
        let mut rng = Rng::new(9);
        for _ in 0..1_000 {
            let i = rng.weighted(&[3, 0, 2]);
            assert_ne!(i, 1);
            assert!(i < 3);
        }
    }
}
