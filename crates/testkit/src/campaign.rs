//! The fuzz campaign driver: generate → check the oracle matrix →
//! shrink → report, fully replayable from a seed.
//!
//! Case `i` of a campaign with base seed `S` draws from a PRNG seeded
//! with [`case_seed`]`(S, i) = S + i`, so a failure in a long campaign
//! replays as a one-case campaign: `awam fuzz --seed S+i --cases 1`.

use crate::oracle::{check, Oracle, OracleOutcome};
use crate::proggen::{gen_program, GenConfig, GenProgram};
use crate::rng::{case_seed, Rng};
use crate::shrink::{shrink, ShrinkReport};
use awam_obs::Json;

/// Configuration of one fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seed; case `i` generates from seed `base + i`.
    pub seed: u64,
    /// Number of generated programs.
    pub cases: u64,
    /// Oracles to run over each program, in order.
    pub oracles: Vec<Oracle>,
    /// Whether to delta-debug the first failure down to a minimal
    /// program.
    pub minimize: bool,
    /// Print every generated program to stderr before checking it
    /// (debugging aid for crashes that kill the process mid-campaign).
    pub dump: bool,
    /// Name of a planted fault (see `awam_core::fault`) active for this
    /// campaign — recorded so replay commands reproduce the failure.
    pub fault: Option<String>,
    /// Program-generator knobs.
    pub gen: GenConfig,
}

impl Default for FuzzConfig {
    /// Seed 1, 100 cases, the full oracle matrix, minimization on.
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            cases: 100,
            oracles: Oracle::ALL.to_vec(),
            minimize: true,
            dump: false,
            fault: None,
            gen: GenConfig::default(),
        }
    }
}

/// A minimized counterexample.
#[derive(Clone, Debug)]
pub struct Minimized {
    /// Source of the locally-minimal failing program.
    pub source: String,
    /// Clause count of the minimal program.
    pub clauses: usize,
    /// The oracle's message on the minimal program.
    pub message: String,
    /// Shrinker work: oracle invocations / edits kept.
    pub attempts: u64,
    /// Edits the shrinker kept.
    pub kept: u64,
}

/// One oracle failure found by a campaign.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Index of the failing case within the campaign.
    pub case: u64,
    /// The case's own generation seed (`base_seed + case`).
    pub case_seed: u64,
    /// The oracle that failed.
    pub oracle: Oracle,
    /// The oracle's failure message.
    pub message: String,
    /// Source of the generated program that failed.
    pub source: String,
    /// The planted fault active when the failure was found, if any.
    pub fault: Option<String>,
    /// The delta-debugged counterexample, when minimization ran.
    pub minimized: Option<Minimized>,
}

impl FuzzFailure {
    /// The one-line command that replays exactly this failure.
    pub fn replay_command(&self) -> String {
        let fault = match &self.fault {
            Some(name) => format!(" --fault {name}"),
            None => String::new(),
        };
        format!(
            "awam fuzz --seed {} --cases 1 --oracle {}{fault}",
            self.case_seed,
            self.oracle.name()
        )
    }

    /// The failure as a JSON document (the `--json` dump of `awam fuzz`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("case", Json::Int(self.case as i64)),
            ("case_seed", Json::Int(self.case_seed as i64)),
            ("oracle", Json::Str(self.oracle.name().to_owned())),
            ("message", Json::Str(self.message.clone())),
            ("program", Json::Str(self.source.clone())),
            ("replay", Json::Str(self.replay_command())),
        ];
        if let Some(fault) = &self.fault {
            pairs.push(("fault", Json::Str(fault.clone())));
        }
        if let Some(min) = &self.minimized {
            pairs.push((
                "minimized",
                Json::obj(vec![
                    ("program", Json::Str(min.source.clone())),
                    ("clauses", Json::Int(min.clauses as i64)),
                    ("message", Json::Str(min.message.clone())),
                    ("shrink_attempts", Json::Int(min.attempts as i64)),
                    ("shrink_kept", Json::Int(min.kept as i64)),
                ]),
            ));
        }
        Json::obj(pairs)
    }

    /// A human-readable rendering: message, program, minimized program,
    /// replay command.
    pub fn render(&self) -> String {
        let mut out = format!(
            "oracle `{}` failed on case {} (seed {}):\n  {}\n\nprogram:\n{}",
            self.oracle, self.case, self.case_seed, self.message, self.source
        );
        if let Some(min) = &self.minimized {
            out.push_str(&format!(
                "\nminimized to {} clause(s) ({} shrink attempts, {} kept):\n{}\nminimal failure: {}\n",
                min.clauses, min.attempts, min.kept, min.source, min.message
            ));
        }
        out.push_str(&format!("\nreplay: {}\n", self.replay_command()));
        out
    }
}

/// The outcome of a campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases actually run (the campaign stops at the first failure).
    pub cases_run: u64,
    /// Oracle checks performed.
    pub checks_run: u64,
    /// The first failure, if any.
    pub failure: Option<FuzzFailure>,
}

/// Run a campaign: for each case, generate one program and run every
/// configured oracle over it; stop at (and optionally minimize) the
/// first failure.
///
/// # Panics
///
/// Panics when an oracle reports an infrastructure error on freshly
/// generated output — that is a generator bug, not a finding.
pub fn run_campaign(config: &FuzzConfig) -> FuzzReport {
    if let Some(name) = &config.fault {
        awam_core::fault::enable(name).expect("fault name was validated by the caller");
    }
    let mut checks_run = 0u64;
    for case in 0..config.cases {
        let seed = case_seed(config.seed, case);
        let mut rng = Rng::new(seed);
        let program = gen_program(&mut rng, &config.gen);
        let source = program.source();
        if config.dump {
            eprintln!("--- case {case} (seed {seed}) ---\n{source}");
        }
        for &oracle in &config.oracles {
            checks_run += 1;
            match check(oracle, &source) {
                Ok(()) => {}
                Err(OracleOutcome::Infra(msg)) => {
                    panic!(
                        "case {case} (seed {seed}): generator produced a program the \
                            harness cannot process ({msg}):\n{source}"
                    )
                }
                Err(OracleOutcome::Violation(message)) => {
                    let minimized = config
                        .minimize
                        .then(|| minimize(&program, oracle))
                        .flatten();
                    return FuzzReport {
                        cases_run: case + 1,
                        checks_run,
                        failure: Some(FuzzFailure {
                            case,
                            case_seed: seed,
                            oracle,
                            message,
                            source,
                            fault: config.fault.clone(),
                            minimized,
                        }),
                    };
                }
            }
        }
    }
    FuzzReport {
        cases_run: config.cases,
        checks_run,
        failure: None,
    }
}

/// Delta-debug a failing program against one oracle. Returns `None` only
/// if the failure stopped reproducing even on the unedited program (a
/// flaky oracle — with deterministic oracles this does not happen).
fn minimize(program: &GenProgram, oracle: Oracle) -> Option<Minimized> {
    let fails = |g: &GenProgram| -> Option<String> {
        match check(oracle, &g.source()) {
            Err(OracleOutcome::Violation(msg)) => Some(msg),
            // A candidate that can no longer be analyzed is not a
            // counterexample — the edit cut too much.
            Ok(()) | Err(OracleOutcome::Infra(_)) => None,
        }
    };
    fails(program)?;
    let ShrinkReport {
        program: min,
        attempts,
        kept,
    } = shrink(program, &mut |g| fails(g).is_some());
    let message = fails(&min)?;
    Some(Minimized {
        source: min.source(),
        clauses: min.clause_count(),
        message,
        attempts,
        kept,
    })
}
