//! Greedy delta-debugging over generated programs.
//!
//! The shrinker edits the generator's intermediate form, never raw
//! source, so every candidate stays well-formed by construction. Edits
//! are tried coarsest-first — drop whole predicates, then clauses, then
//! goals, then simplify terms — and an edit is kept only when the
//! caller's oracle still fails on the edited program. Passes repeat until
//! no single edit preserves the failure, which makes the result *locally
//! minimal*: in particular, removing any one remaining clause makes the
//! program pass.

use crate::proggen::{GenClause, GenGoal, GenProgram, GenTerm};

/// How far a [`shrink`] run got.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The locally-minimal failing program.
    pub program: GenProgram,
    /// Candidate edits tried (oracle invocations).
    pub attempts: u64,
    /// Edits kept (each one removed or simplified something).
    pub kept: u64,
}

/// Greedily minimize `program` while `still_fails` keeps returning `true`.
///
/// `still_fails` receives candidate programs and must return whether the
/// original failure still reproduces (treat infrastructure errors — a
/// candidate that no longer parses or lost its entry point — as `false`).
/// The entry predicate `p0` is never dropped wholesale, though its
/// clauses can shrink like any other.
pub fn shrink(
    program: &GenProgram,
    still_fails: &mut dyn FnMut(&GenProgram) -> bool,
) -> ShrinkReport {
    let mut current = program.clone();
    let mut attempts = 0u64;
    let mut kept = 0u64;
    loop {
        let mut progressed = false;
        for pass in [drop_predicates, drop_clauses, drop_goals, simplify_terms] {
            while let Some(smaller) = pass(&current, still_fails, &mut attempts) {
                current = smaller;
                kept += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    ShrinkReport {
        program: current,
        attempts,
        kept,
    }
}

/// Remove every goal that calls predicate `target` (used when `target`
/// loses its last clause, so the source never calls an undefined
/// predicate).
fn strip_calls_to(program: &mut GenProgram, target: u8) {
    for p in &mut program.preds {
        for c in &mut p.clauses {
            c.goals
                .retain(|g| !matches!(g, GenGoal::Call(t, _) if *t == target));
        }
    }
}

/// Try dropping one whole predicate (its clauses plus every call to it).
fn drop_predicates(
    program: &GenProgram,
    still_fails: &mut dyn FnMut(&GenProgram) -> bool,
    attempts: &mut u64,
) -> Option<GenProgram> {
    for i in (1..program.preds.len()).rev() {
        if program.preds[i].clauses.is_empty() {
            continue;
        }
        let mut candidate = program.clone();
        candidate.preds[i].clauses.clear();
        strip_calls_to(&mut candidate, i as u8);
        *attempts += 1;
        if still_fails(&candidate) {
            return Some(candidate);
        }
    }
    None
}

/// Try dropping one clause (dropping a predicate's last clause also
/// strips the calls to it).
fn drop_clauses(
    program: &GenProgram,
    still_fails: &mut dyn FnMut(&GenProgram) -> bool,
    attempts: &mut u64,
) -> Option<GenProgram> {
    for (pi, p) in program.preds.iter().enumerate() {
        for ci in (0..p.clauses.len()).rev() {
            let mut candidate = program.clone();
            candidate.preds[pi].clauses.remove(ci);
            if candidate.preds[pi].clauses.is_empty() {
                if pi == 0 {
                    continue; // never drop the entry predicate entirely
                }
                strip_calls_to(&mut candidate, pi as u8);
            }
            *attempts += 1;
            if still_fails(&candidate) {
                return Some(candidate);
            }
        }
    }
    None
}

/// Try dropping one body goal.
fn drop_goals(
    program: &GenProgram,
    still_fails: &mut dyn FnMut(&GenProgram) -> bool,
    attempts: &mut u64,
) -> Option<GenProgram> {
    for (pi, p) in program.preds.iter().enumerate() {
        for (ci, c) in p.clauses.iter().enumerate() {
            for gi in (0..c.goals.len()).rev() {
                let mut candidate = program.clone();
                candidate.preds[pi].clauses[ci].goals.remove(gi);
                *attempts += 1;
                if still_fails(&candidate) {
                    return Some(candidate);
                }
            }
        }
    }
    None
}

/// Simpler replacements for a term, in preference order.
fn simpler(t: &GenTerm) -> Vec<GenTerm> {
    match t {
        // Already minimal leaves.
        GenTerm::Var(_) | GenTerm::Nil => Vec::new(),
        GenTerm::Atom(_) | GenTerm::Int(_) => vec![GenTerm::Var(3)],
        GenTerm::Cons(..) | GenTerm::Struct(..) => vec![GenTerm::Var(3), GenTerm::Nil],
    }
}

/// Every term position in a clause: head args plus goal args.
fn clause_terms(c: &mut GenClause) -> Vec<&mut GenTerm> {
    let mut slots: Vec<&mut GenTerm> = c.head_args.iter_mut().collect();
    for g in &mut c.goals {
        match g {
            GenGoal::Call(_, args) => slots.extend(args.iter_mut()),
            GenGoal::UnifyGoal(a, b) | GenGoal::Less(a, b) => {
                slots.push(a);
                slots.push(b);
            }
            GenGoal::IsPlus(_, t) | GenGoal::IsTimes(_, t) => slots.push(t),
            GenGoal::Cut => {}
        }
    }
    slots
}

/// Try replacing one term with a simpler one (compounds by a variable or
/// nil, constants by a variable).
fn simplify_terms(
    program: &GenProgram,
    still_fails: &mut dyn FnMut(&GenProgram) -> bool,
    attempts: &mut u64,
) -> Option<GenProgram> {
    for (pi, p) in program.preds.iter().enumerate() {
        for (ci, c) in p.clauses.iter().enumerate() {
            let slots = {
                let mut probe = c.clone();
                clause_terms(&mut probe).len()
            };
            for slot in 0..slots {
                let replacements = {
                    let mut probe = c.clone();
                    simpler(clause_terms(&mut probe)[slot])
                };
                for replacement in replacements {
                    let mut candidate = program.clone();
                    *clause_terms(&mut candidate.preds[pi].clauses[ci])[slot] = replacement;
                    *attempts += 1;
                    if still_fails(&candidate) {
                        return Some(candidate);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proggen::{gen_program, GenConfig};
    use crate::rng::Rng;

    /// A planted "oracle": fails iff some clause of the entry predicate
    /// `p0` still calls `p1` (stand-in for a real analyzer bug that needs
    /// a caller/callee pair to trigger).
    fn planted(g: &GenProgram) -> bool {
        g.preds.first().is_some_and(|p0| {
            p0.clauses.iter().any(|c| {
                c.goals
                    .iter()
                    .any(|goal| matches!(goal, GenGoal::Call(1, _)))
            })
        })
    }

    #[test]
    fn shrinks_to_a_locally_minimal_program() {
        // Find a seed whose generated program triggers the planted oracle.
        let config = GenConfig::default();
        let (g, seed) = (0..200u64)
            .find_map(|seed| {
                let mut rng = Rng::new(seed);
                let g = gen_program(&mut rng, &config);
                planted(&g).then_some((g, seed))
            })
            .expect("some generated program calls p1");

        let report = shrink(&g, &mut |candidate| planted(candidate));
        let min = &report.program;
        assert!(planted(min), "seed {seed}: shrunk program no longer fails");
        assert!(
            min.clause_count() <= g.clause_count(),
            "seed {seed}: shrinking grew the program"
        );
        // Local minimality: removing any one clause makes the oracle pass
        // (the planted failure needs both a caller clause and p1 itself —
        // dropping p1's last clause strips the call).
        for (pi, p) in min.preds.iter().enumerate() {
            for ci in 0..p.clauses.len() {
                let mut without = min.clone();
                without.preds[pi].clauses.remove(ci);
                if without.preds[pi].clauses.is_empty() && pi != 0 {
                    strip_calls_to(&mut without, pi as u8);
                }
                assert!(
                    !planted(&without),
                    "seed {seed}: dropping clause {ci} of p{pi} still fails — not minimal"
                );
            }
        }
        // And the obvious floor: one caller clause + one p1 clause.
        assert!(
            min.clause_count() <= 2,
            "seed {seed}: planted failure should shrink to ≤2 clauses, got {}:\n{}",
            min.clause_count(),
            min.source()
        );
    }
}
