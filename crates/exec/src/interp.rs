//! The [`Interpretation`] trait and the single instruction dispatch.
//!
//! [`step`] contains the only `match` over [`wam::Instr`] on any
//! execution path in the workspace. Data movement — the `get_*`/`put_*`/
//! `unify_*` register and heap traffic, `allocate`/`deallocate` — is
//! identical in both of the paper's interpretations and is handled here
//! inline. The genuine divergence points of §4–§5 are trait methods:
//!
//! | trait method | concrete machine | abstract machine (§4–§5) |
//! |---|---|---|
//! | [`unify`] | syntactic unification | `s_unify` over abstract cells |
//! | [`get_list`]/[`get_structure`] | bind or match | + `ComplexTermInst` (Fig. 4) |
//! | [`call`]/[`execute`] | jump, set continuation | ET consult/insert (Fig. 5) |
//! | [`proceed`] | return through `cont` | clause success (`updateET`) |
//! | [`neck_cut`] etc. | truncate choice stack | `true` (sound) |
//! | [`try_me_else`] etc. | choice points, switches | unreachable (bypassed) |
//!
//! [`unify`]: Interpretation::unify
//! [`get_list`]: Interpretation::get_list
//! [`get_structure`]: Interpretation::get_structure
//! [`call`]: Interpretation::call
//! [`execute`]: Interpretation::execute
//! [`proceed`]: Interpretation::proceed
//! [`neck_cut`]: Interpretation::neck_cut
//! [`try_me_else`]: Interpretation::try_me_else

use crate::cell::CellRepr;
use crate::frame::{Frame, Mode};
use wam::{
    Builtin, CodeAddr, CompiledProgram, Functor, Instr, PredIdx, UnifyOp, WamConst,
    FIRST_FUSED_OPCODE,
};

/// What the driver loop should do after one dispatched instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Flow {
    /// Keep dispatching at the current [`Frame::pc`].
    Continue,
    /// The instruction failed. The concrete driver backtracks; the
    /// abstract driver reports clause failure (the caller forces the next
    /// clause).
    Fail,
    /// Leave the driver loop successfully: top-level success concretely,
    /// clause completion abstractly.
    Done,
}

/// One interpretation of the WAM code: a cell domain plus the semantics
/// of unification, control, and indexing.
///
/// Implementors own a [`Frame`] (exposed through [`Interpretation::frame`]) and any
/// extra state their semantics needs — the concrete machine keeps a
/// choice-point stack, the abstract machine an extension table.
pub trait Interpretation: Sized {
    /// The tagged-word type of this interpretation's heap.
    type Cell: CellRepr;
    /// One trail record; see [`Interpretation::trail_entry`].
    type TrailEntry: std::fmt::Debug;
    /// A runtime error, distinct from goal/clause failure.
    type Error;

    /// The shared machine state.
    fn frame(&self) -> &Frame<Self::Cell, Self::TrailEntry>;
    /// The shared machine state, mutably.
    fn frame_mut(&mut self) -> &mut Frame<Self::Cell, Self::TrailEntry>;

    /// Build the trail record for overwriting `addr`, which held `old`.
    ///
    /// The concrete machine records only the address (undo resets to an
    /// unbound ref); the abstract machine value-trails `(addr, old)`
    /// because instantiation overwrites variable-*like* cells.
    fn trail_entry(addr: usize, old: Self::Cell) -> Self::TrailEntry;

    /// Undo one trail record against the heap.
    fn undo_entry(heap: &mut [Self::Cell], entry: Self::TrailEntry);

    // ----- unification (§4.1) -----

    /// Unify two cells, binding (with trailing) as needed.
    fn unify(&mut self, a: Self::Cell, b: Self::Cell) -> bool;

    /// Unify `arg` with the constant `c` (`get_constant`, and the
    /// read-mode half of `unify_constant`).
    fn get_constant(&mut self, c: WamConst, arg: Self::Cell) -> bool;

    /// `get_list Ai`: match or instantiate a list, setting mode and `S`.
    fn get_list(&mut self, arg: Self::Cell) -> bool;

    /// `get_structure f/n, Ai`: match or instantiate a structure.
    fn get_structure(&mut self, f: Functor, arg: Self::Cell) -> bool;

    /// The subterm cell at structure cursor `s` (read mode).
    ///
    /// The abstract machine overrides this to capture open cells *by
    /// reference*, so later instantiation is visible to all aliases.
    fn read_subterm(&self, s: usize) -> Self::Cell {
        self.frame().heap[s]
    }

    // ----- control (§5) -----

    /// `call p/n`: invoke a predicate with a return continuation.
    fn call(&mut self, pred: PredIdx) -> Result<Flow, Self::Error>;

    /// `execute p/n`: tail-invoke a predicate.
    fn execute(&mut self, pred: PredIdx) -> Result<Flow, Self::Error>;

    /// `proceed`: clause/goal success.
    fn proceed(&mut self) -> Result<Flow, Self::Error>;

    /// `call_builtin b`: the builtin's domain semantics.
    fn builtin(&mut self, b: Builtin) -> Result<Flow, Self::Error>;

    // ----- cut -----

    /// `neck_cut`: discard alternatives of the current predicate.
    fn neck_cut(&mut self) -> bool;
    /// `get_level Yn`: save the cut barrier.
    fn get_level(&mut self, y: u16) -> bool;
    /// `cut_level Yn`: cut back to the saved barrier.
    fn cut_level(&mut self, y: u16) -> bool;

    // ----- clause chaining and indexing -----
    //
    // Followed by the concrete machine, bypassed entirely by the abstract
    // control scheme (clause entries are iterated directly, §5).

    /// `try_me_else L`: push a choice point.
    fn try_me_else(&mut self, alt: CodeAddr) -> Flow;
    /// `retry_me_else L`: update the alternative.
    fn retry_me_else(&mut self, alt: CodeAddr) -> Flow;
    /// `trust_me`: drop the choice point.
    fn trust_me(&mut self) -> Flow;
    /// `try L`: push a choice point and jump.
    fn try_(&mut self, clause: CodeAddr) -> Flow;
    /// `retry L`: update the alternative and jump.
    fn retry(&mut self, clause: CodeAddr) -> Flow;
    /// `trust L`: drop the choice point and jump.
    fn trust(&mut self, clause: CodeAddr) -> Flow;
    /// `switch_on_term`: dispatch on the tag of `A1`.
    fn switch_on_term(
        &mut self,
        var: CodeAddr,
        con: CodeAddr,
        lis: CodeAddr,
        str_: CodeAddr,
    ) -> Flow;
    /// `switch_on_constant`: dispatch on the value of `A1`.
    fn switch_on_constant(&mut self, table: &[(WamConst, CodeAddr)]) -> Flow;
    /// `switch_on_structure`: dispatch on the functor of `A1`.
    fn switch_on_structure(&mut self, table: &[(Functor, CodeAddr)]) -> Flow;
}

/// Bind `heap[addr] = cell`, trailing the overwrite through the
/// interpretation's trail policy.
pub fn bind<I: Interpretation>(m: &mut I, addr: usize, cell: I::Cell) {
    let f = m.frame_mut();
    let entry = I::trail_entry(addr, f.heap[addr]);
    f.trail.push(entry);
    f.heap[addr] = cell;
}

/// Pop and undo trail records down to `mark`.
pub fn unwind_trail<I: Interpretation>(m: &mut I, mark: usize) {
    let f = m.frame_mut();
    while f.trail.len() > mark {
        let entry = f.trail.pop().expect("non-empty trail");
        I::undo_entry(&mut f.heap, entry);
    }
}

/// Fetch, count, and dispatch one instruction — the single `match` over
/// [`wam::Instr`] on the execution path of the whole workspace.
///
/// # Errors
///
/// Propagates the interpretation's own [`Interpretation::Error`] from the
/// control hooks ([`Interpretation::call`], [`Interpretation::builtin`],
/// …); the shared data-movement arms never fail with an error, only with
/// [`Flow::Fail`].
#[allow(clippy::too_many_lines)]
pub fn step<I: Interpretation>(m: &mut I, program: &CompiledProgram) -> Result<Flow, I::Error> {
    let pc = m.frame().pc;
    let instr = &program.code[pc];
    {
        let f = m.frame_mut();
        let idx = instr.opcode_index();
        // Fused superinstructions count their own constituents inside
        // their arms; a generic hit here would put superinstruction
        // opcodes into every histogram and break fused/unfused parity.
        if idx < FIRST_FUSED_OPCODE {
            f.opcodes.hit(idx);
            f.executed += 1;
        }
        f.pc = pc + 1;
    }
    use Instr::*;
    let ok = match instr {
        // ----- get: head-argument matching -----
        &GetVariable(slot, a) => {
            let v = m.frame().x[a as usize];
            m.frame_mut().write_slot(slot, v);
            true
        }
        &GetValue(slot, a) => {
            let v = m.frame().read_slot(slot);
            let arg = m.frame().x[a as usize];
            m.unify(v, arg)
        }
        &GetConstant(c, a) => {
            let arg = m.frame().x[a as usize];
            m.get_constant(c, arg)
        }
        &GetList(a) => {
            let arg = m.frame().x[a as usize];
            m.get_list(arg)
        }
        &GetStructure(f, a) => {
            let arg = m.frame().x[a as usize];
            m.get_structure(f, arg)
        }
        // ----- put: goal-argument construction -----
        &PutVariable(slot, a) => {
            let f = m.frame_mut();
            let addr = f.push_unbound();
            f.write_slot(slot, I::Cell::mk_ref(addr));
            f.x[a as usize] = I::Cell::mk_ref(addr);
            true
        }
        &PutValue(slot, a) => {
            let f = m.frame_mut();
            let v = f.read_slot(slot);
            f.x[a as usize] = v;
            true
        }
        &PutConstant(c, a) => {
            m.frame_mut().x[a as usize] = I::Cell::mk_const(c);
            true
        }
        &PutList(a) => {
            let f = m.frame_mut();
            f.x[a as usize] = I::Cell::mk_lis(f.heap.len());
            f.mode = Mode::Write;
            true
        }
        &PutStructure(fu, a) => {
            let f = m.frame_mut();
            let h = f.heap.len();
            f.heap.push(I::Cell::mk_fun(fu.name, fu.arity));
            f.x[a as usize] = I::Cell::mk_str(h);
            f.mode = Mode::Write;
            true
        }
        // ----- unify: subterm traffic, split by mode -----
        &UnifyVariable(slot) => {
            match m.frame().mode {
                Mode::Read => {
                    let s = m.frame().s;
                    let cell = m.read_subterm(s);
                    let f = m.frame_mut();
                    f.write_slot(slot, cell);
                    f.s += 1;
                }
                Mode::Write => {
                    let f = m.frame_mut();
                    let addr = f.push_unbound();
                    f.write_slot(slot, I::Cell::mk_ref(addr));
                }
            }
            true
        }
        &UnifyValue(slot) => match m.frame().mode {
            Mode::Read => {
                let f = m.frame_mut();
                let v = f.read_slot(slot);
                let s = f.s;
                f.s += 1;
                m.unify(v, I::Cell::mk_ref(s))
            }
            Mode::Write => {
                let f = m.frame_mut();
                let v = f.read_slot(slot);
                f.heap.push(v);
                true
            }
        },
        &UnifyConstant(c) => match m.frame().mode {
            Mode::Read => {
                let f = m.frame_mut();
                let s = f.s;
                f.s += 1;
                m.get_constant(c, I::Cell::mk_ref(s))
            }
            Mode::Write => {
                m.frame_mut().heap.push(I::Cell::mk_const(c));
                true
            }
        },
        &UnifyVoid(n) => {
            let f = m.frame_mut();
            match f.mode {
                Mode::Read => f.s += n as usize,
                Mode::Write => {
                    for _ in 0..n {
                        f.push_unbound();
                    }
                }
            }
            true
        }
        // ----- environments -----
        &Allocate(n) => {
            let f = m.frame_mut();
            let cut = f.b0;
            f.push_env(n, cut);
            true
        }
        &Deallocate => {
            let f = m.frame_mut();
            let e = f.e.expect("deallocate with no environment");
            f.cont = f.envs[e].cont;
            f.e = f.envs[e].prev;
            true
        }
        // ----- control: per-interpretation -----
        &Call(p) => return m.call(p),
        &Execute(p) => return m.execute(p),
        &Proceed => return m.proceed(),
        &CallBuiltin(b) => return m.builtin(b),
        &NeckCut => m.neck_cut(),
        &GetLevel(y) => m.get_level(y),
        &CutLevel(y) => m.cut_level(y),
        // ----- clause chaining and indexing: per-interpretation -----
        &TryMeElse(l) => return Ok(m.try_me_else(l)),
        &RetryMeElse(l) => return Ok(m.retry_me_else(l)),
        &TrustMe => return Ok(m.trust_me()),
        &Try(l) => return Ok(m.try_(l)),
        &Retry(l) => return Ok(m.retry(l)),
        &Trust(l) => return Ok(m.trust(l)),
        &SwitchOnTerm {
            var,
            con,
            lis,
            str_,
        } => {
            return Ok(m.switch_on_term(var, con, lis, str_));
        }
        SwitchOnConstant(table) => return Ok(m.switch_on_constant(table)),
        SwitchOnStructure(table) => return Ok(m.switch_on_structure(table)),
        &Fail => false,
        // ----- fused superinstructions: one fetch/decode per run -----
        //
        // Each arm replicates its constituents' effects exactly and
        // attributes the executions back to the plain opcodes, so opcode
        // histograms, `executed`, and failure accounting are
        // byte-identical to the unfused stream (a failing constituent is
        // counted — unfused code counts at fetch — and everything after
        // it is not).
        GetStructureSeq(fu, a, ops) => {
            {
                let f = m.frame_mut();
                f.opcodes.hit(GetStructure(*fu, *a).opcode_index());
                f.executed += 1;
            }
            let arg = m.frame().x[*a as usize];
            if m.get_structure(*fu, arg) {
                return run_unify_seq(m, ops);
            }
            false
        }
        GetListSeq(a, ops) => {
            {
                let f = m.frame_mut();
                f.opcodes.hit(GetList(*a).opcode_index());
                f.executed += 1;
            }
            let arg = m.frame().x[*a as usize];
            if m.get_list(arg) {
                return run_unify_seq(m, ops);
            }
            false
        }
        PutValueSeq(moves) => {
            let f = m.frame_mut();
            f.opcodes.hit_n(
                PutValue(moves[0].0, moves[0].1).opcode_index(),
                moves.len() as u64,
            );
            f.executed += moves.len() as u64;
            for &(slot, a) in moves {
                let v = f.read_slot(slot);
                f.x[a as usize] = v;
            }
            true
        }
    };
    Ok(if ok { Flow::Continue } else { Flow::Fail })
}

/// Execute the fused `unify_*` run of a [`Instr::GetStructureSeq`] /
/// [`Instr::GetListSeq`] superinstruction: the constituents' exact
/// semantics with no per-op fetch/decode, each attributed to its plain
/// opcode in the histogram.
fn run_unify_seq<I: Interpretation>(m: &mut I, ops: &[UnifyOp]) -> Result<Flow, I::Error> {
    for &op in ops {
        {
            let f = m.frame_mut();
            f.opcodes.hit(op.opcode_index());
            f.executed += 1;
        }
        let ok = match op {
            UnifyOp::Variable(slot) => {
                match m.frame().mode {
                    Mode::Read => {
                        let s = m.frame().s;
                        let cell = m.read_subterm(s);
                        let f = m.frame_mut();
                        f.write_slot(slot, cell);
                        f.s += 1;
                    }
                    Mode::Write => {
                        let f = m.frame_mut();
                        let addr = f.push_unbound();
                        f.write_slot(slot, I::Cell::mk_ref(addr));
                    }
                }
                true
            }
            UnifyOp::Value(slot) => match m.frame().mode {
                Mode::Read => {
                    let f = m.frame_mut();
                    let v = f.read_slot(slot);
                    let s = f.s;
                    f.s += 1;
                    m.unify(v, I::Cell::mk_ref(s))
                }
                Mode::Write => {
                    let f = m.frame_mut();
                    let v = f.read_slot(slot);
                    f.heap.push(v);
                    true
                }
            },
            UnifyOp::Constant(c) => match m.frame().mode {
                Mode::Read => {
                    let f = m.frame_mut();
                    let s = f.s;
                    f.s += 1;
                    m.get_constant(c, I::Cell::mk_ref(s))
                }
                Mode::Write => {
                    m.frame_mut().heap.push(I::Cell::mk_const(c));
                    true
                }
            },
            UnifyOp::Void(n) => {
                let f = m.frame_mut();
                match f.mode {
                    Mode::Read => f.s += n as usize,
                    Mode::Write => {
                        for _ in 0..n {
                            f.push_unbound();
                        }
                    }
                }
                true
            }
        };
        if !ok {
            return Ok(Flow::Fail);
        }
    }
    Ok(Flow::Continue)
}
