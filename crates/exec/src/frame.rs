//! The mutable state every interpretation shares: heap, registers,
//! environments, trail, and the fetch/mode/structure cursors.

use crate::cell::CellRepr;
use awam_obs::OpcodeCounts;
use wam::Slot;

/// Read/write mode of the `unify_*` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Walking an existing term at [`Frame::s`].
    Read,
    /// Building a new term at the heap top.
    Write,
}

/// An environment frame (`allocate`/`deallocate`).
///
/// The abstract machine never reads `cont` or `cut` (calls return
/// deterministically and cut is `true`), but keeping the concrete layout
/// costs nothing and keeps `allocate` domain-independent.
///
/// Permanent registers live in the frame-wide [`Frame::ybank`] arena, not
/// in a per-environment `Vec`: `allocate` bump-extends the bank and
/// records only `[y_base, y_base + y_len)` here, so pushing an environment
/// never calls the allocator once the bank is warm. `y_base` is monotonic
/// in environment index, which is what lets [`Frame::truncate_envs`]
/// reclaim both stacks in lockstep.
#[derive(Debug, Clone, Copy)]
pub struct Env {
    /// Previous environment (dynamic chain).
    pub prev: Option<usize>,
    /// Saved continuation pointer.
    pub cont: Option<usize>,
    /// First slot of this environment's permanent registers in
    /// [`Frame::ybank`].
    pub y_base: usize,
    /// Number of permanent registers `Y1..Yn`.
    pub y_len: u16,
    /// Choice-stack height saved by `get_level` (the cut barrier).
    pub cut: usize,
}

/// The WAM register file and memory areas, generic over the cell type `C`
/// and the trail-entry type `E`.
///
/// The concrete machine trails bare addresses (`E = usize`, undo resets to
/// an unbound ref); the abstract machine value-trails `(address, old
/// cell)` pairs because instantiation overwrites variable-*like* cells
/// whose previous value must be restorable. The choice stack is *not*
/// here: only the concrete interpretation backtracks.
#[derive(Debug)]
pub struct Frame<C, E> {
    /// The global term store.
    pub heap: Vec<C>,
    /// Argument/temporary registers `X1..Xn` (grown on demand).
    pub x: Vec<C>,
    /// Environment stack.
    pub envs: Vec<Env>,
    /// Bump arena backing every environment's permanent registers; see
    /// [`Env::y_base`]. Reset (not freed) with the environment stack.
    pub ybank: Vec<C>,
    /// Current environment.
    pub e: Option<usize>,
    /// The trail (entries interpreted by the owning interpretation).
    pub trail: Vec<E>,
    /// Program counter into the shared code area.
    pub pc: usize,
    /// Continuation code pointer; `None` returns to the driver.
    pub cont: Option<usize>,
    /// Cut barrier: choice-stack height at the last call.
    pub b0: usize,
    /// Arity of the predicate currently being entered.
    pub num_args: usize,
    /// Mode of the `unify_*` instructions.
    pub mode: Mode,
    /// Structure cursor (read mode).
    pub s: usize,
    /// Instructions dispatched over this frame's life.
    pub executed: u64,
    /// Per-opcode dispatch counts over this frame's life.
    pub opcodes: OpcodeCounts,
}

impl<C: CellRepr, E> Frame<C, E> {
    /// A fresh frame with the standard initial register file. Every
    /// memory area is pre-sized to its typical high-water mark (the
    /// benchmark suite peaks under these bounds), so a run only touches
    /// the allocator when a program genuinely outgrows them.
    pub fn new() -> Self {
        Frame {
            heap: Vec::with_capacity(1024),
            x: vec![C::null(); 256],
            envs: Vec::with_capacity(64),
            ybank: Vec::with_capacity(256),
            e: None,
            trail: Vec::with_capacity(1024),
            pc: 0,
            cont: None,
            b0: 0,
            num_args: 0,
            mode: Mode::Read,
            s: 0,
            executed: 0,
            opcodes: OpcodeCounts::new(wam::NUM_OPCODES),
        }
    }

    /// Read an X or Y register.
    pub fn read_slot(&self, slot: Slot) -> C {
        match slot {
            Slot::X(n) => self.x[n as usize],
            Slot::Y(n) => {
                let e = self.e.expect("Y access with no environment");
                let env = &self.envs[e];
                debug_assert!(n < env.y_len, "Y{} out of environment", n + 1);
                self.ybank[env.y_base + n as usize]
            }
        }
    }

    /// Write an X or Y register (X grows on demand).
    pub fn write_slot(&mut self, slot: Slot, cell: C) {
        match slot {
            Slot::X(n) => {
                let n = n as usize;
                if n >= self.x.len() {
                    self.x.resize(n + 1, C::null());
                }
                self.x[n] = cell;
            }
            Slot::Y(n) => {
                let e = self.e.expect("Y access with no environment");
                let env = &self.envs[e];
                debug_assert!(n < env.y_len, "Y{} out of environment", n + 1);
                self.ybank[env.y_base + n as usize] = cell;
            }
        }
    }

    /// Push a fresh environment with `n` permanent registers, bump-carving
    /// its Y slots out of [`Frame::ybank`], and make it current.
    pub fn push_env(&mut self, n: u16, cut: usize) {
        let y_base = self.ybank.len();
        self.ybank.resize(y_base + n as usize, C::null());
        self.envs.push(Env {
            prev: self.e,
            cont: self.cont,
            y_base,
            y_len: n,
            cut,
        });
        self.e = Some(self.envs.len() - 1);
    }

    /// Truncate the environment stack to `env_len`, reclaiming the Y-bank
    /// suffix in lockstep (valid because `y_base` is monotonic in
    /// environment index). Used by concrete backtracking and by abstract
    /// per-clause rollback.
    pub fn truncate_envs(&mut self, env_len: usize) {
        let bank_len = self
            .envs
            .get(env_len)
            .map_or(self.ybank.len(), |env| env.y_base);
        self.envs.truncate(env_len);
        self.ybank.truncate(bank_len);
    }

    /// Drop every environment, keeping both stacks' capacity
    /// (reset-not-free, for reuse across fixpoint rounds).
    pub fn clear_envs(&mut self) {
        self.envs.clear();
        self.ybank.clear();
    }

    /// Push a fresh unbound variable onto the heap; returns its address.
    pub fn push_unbound(&mut self) -> usize {
        let addr = self.heap.len();
        self.heap.push(C::mk_ref(addr));
        addr
    }

    /// Instructions dispatched since an earlier [`Frame::executed`]
    /// snapshot — the delta profilers attribute to a region of work
    /// (e.g. per-predicate instruction heat).
    pub fn executed_since(&self, mark: u64) -> u64 {
        self.executed - mark
    }
}

impl<C: CellRepr, E> Default for Frame<C, E> {
    fn default() -> Self {
        Frame::new()
    }
}
