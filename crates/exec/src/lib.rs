//! The shared WAM execution substrate.
//!
//! The paper's central claim (§4–§5) is that dataflow analysis *is* the
//! standard WAM code reinterpreted over an abstract domain. This crate
//! makes the architecture literally mirror that claim: the tagged-cell
//! heap, the register file, the trail discipline, `deref`, and the single
//! instruction-dispatch `match` live here, **once**, generic over an
//! [`Interpretation`]. The two machines of the workspace are thin
//! instances:
//!
//! * `wam-machine` — the concrete interpretation: syntactic unification,
//!   `call`/backtracking control, indexing instructions followed;
//! * `awam-core` — the abstract interpretation of §4–§5: `s_unify` over
//!   abstract cells, extension-table consult/insert on `call`, forced
//!   failure between clauses, indexing bypassed.
//!
//! The split of one instruction into "data movement" (shared) and
//! "semantics" (per-interpretation) follows the paper's Figure 4: an
//! instruction like `get_list A1` derefs its argument and switches on the
//! tag identically in both machines; only what happens on a variable-like
//! cell differs. Correspondingly [`step`] handles every `get_*`/`put_*`/
//! `unify_*`/`allocate`/`deallocate` inline and delegates the divergence
//! points — unification, call/return, cut, indexing — to trait methods.
//!
//! No instruction dispatch exists anywhere else in the workspace: this is
//! the "reused without any modification" part of the paper, as code
//! structure rather than as a comment.

#![warn(missing_docs)]

pub mod cell;
pub mod frame;
pub mod interp;
pub mod trail;

pub use cell::{deref, Cell, CellRepr};
pub use frame::{Env, Frame, Mode};
pub use interp::{bind, step, unwind_trail, Flow, Interpretation};
pub use trail::{TrailMark, ValueTrail};
