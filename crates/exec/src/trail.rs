//! A standalone value trail for arena-style stores.
//!
//! The generic machines trail through [`Frame::trail`] (with the entry
//! type chosen by the interpretation); the `baseline` meta-interpreter
//! keeps a node arena instead of a WAM heap but needs the identical
//! save/undo discipline. [`ValueTrail`] is that discipline factored out:
//! record the old value on every overwrite, undo by replaying the records
//! in reverse and truncating the arena to its saved length.
//!
//! [`Frame::trail`]: crate::frame::Frame::trail

/// A trail of `(address, previous value)` records plus the paired arena
/// high-water mark, for stores whose slots hold non-`Copy` values.
#[derive(Debug, Clone)]
pub struct ValueTrail<T> {
    entries: Vec<(usize, T)>,
}

// Manual impl: the derive would needlessly require `T: Default`.
impl<T> Default for ValueTrail<T> {
    fn default() -> Self {
        ValueTrail::new()
    }
}

/// A point to undo back to: `(trail length, arena length)`.
pub type TrailMark = (usize, usize);

impl<T> ValueTrail<T> {
    /// An empty trail.
    pub fn new() -> Self {
        ValueTrail {
            entries: Vec::new(),
        }
    }

    /// Number of records on the trail.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trail has no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The mark to later [`ValueTrail::undo_to`], given the current arena
    /// length.
    pub fn mark(&self, arena_len: usize) -> TrailMark {
        (self.entries.len(), arena_len)
    }

    /// Record that `slot` held `old` before an overwrite.
    pub fn record(&mut self, slot: usize, old: T) {
        self.entries.push((slot, old));
    }

    /// Undo every overwrite past `mark` (restoring old values into
    /// `arena`) and truncate the arena to the marked length.
    pub fn undo_to(&mut self, mark: TrailMark, arena: &mut Vec<T>) {
        while self.entries.len() > mark.0 {
            let (slot, old) = self.entries.pop().expect("non-empty trail");
            arena[slot] = old;
        }
        arena.truncate(mark.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undo_restores_values_and_length() {
        let mut arena = vec!["a".to_string(), "b".to_string()];
        let mut trail = ValueTrail::new();
        let mark = trail.mark(arena.len());
        trail.record(0, std::mem::replace(&mut arena[0], "x".into()));
        arena.push("c".into());
        assert_eq!(arena, ["x", "b", "c"]);
        trail.undo_to(mark, &mut arena);
        assert_eq!(arena, ["a", "b"]);
        assert!(trail.is_empty());
    }
}
