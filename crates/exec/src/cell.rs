//! The cell-representation contract, the concrete cell type, and `deref`.
//!
//! Every interpretation runs over a heap of tagged words. The concrete
//! machine uses exactly the standard WAM tags ([`Cell`]); the abstract
//! machine extends them with instantiable abstract cells. [`CellRepr`]
//! captures what the shared dispatch loop needs from either: how to build
//! each tag, and which cells are references (so [`deref()`] can chase them).

use prolog_syntax::Symbol;
use wam::WamConst;

/// The tagged-word interface of one interpretation's heap cells.
///
/// The shared dispatch loop builds cells only through these constructors,
/// so the write-mode halves of the `put_*`/`unify_*` instructions — which
/// construct terms rather than inspect them — are domain-independent.
/// Inspection (the read-mode halves) goes through [`Interpretation`]
/// methods instead, because tags beyond the standard six may exist.
///
/// [`Interpretation`]: crate::interp::Interpretation
pub trait CellRepr: Copy + PartialEq + std::fmt::Debug {
    /// A reference to heap address `addr` (unbound iff self-referential).
    fn mk_ref(addr: usize) -> Self;
    /// A pointer to a functor cell followed by argument cells.
    fn mk_str(addr: usize) -> Self;
    /// A pointer to two consecutive cells (car, cdr).
    fn mk_lis(addr: usize) -> Self;
    /// An atom.
    fn mk_con(name: Symbol) -> Self;
    /// An integer.
    fn mk_int(value: i64) -> Self;
    /// A functor cell (only ever pointed to by `str` cells).
    fn mk_fun(name: Symbol, arity: u16) -> Self;

    /// The heap address this cell references, if it is a reference.
    ///
    /// Only plain `ref` cells return `Some`; variable-*like* cells of
    /// richer domains (abstract leaves) return `None` so that [`deref()`]
    /// stops on them and reports their address to the caller.
    fn as_ref_addr(self) -> Option<usize>;

    /// The cell for a compiled constant operand.
    fn mk_const(c: WamConst) -> Self {
        match c {
            WamConst::Atom(a) => Self::mk_con(a),
            WamConst::Int(i) => Self::mk_int(i),
        }
    }

    /// Filler for uninitialized registers (never observed by a correct
    /// program; any cell works).
    fn null() -> Self {
        Self::mk_int(0)
    }
}

/// One tagged word, exactly as in the standard WAM.
///
/// An unbound variable is a `Ref` pointing at its own heap address. This
/// is the concrete machine's cell type; the abstract machine's `ACell`
/// extends the same six tags with abstract cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cell {
    /// Reference (possibly unbound: a self-reference).
    Ref(usize),
    /// Pointer to a `Fun` cell followed by the argument cells.
    Str(usize),
    /// Pointer to two consecutive cells (car, cdr).
    Lis(usize),
    /// An atom.
    Con(Symbol),
    /// An integer.
    Int(i64),
    /// A functor cell (only ever pointed to by `Str`).
    Fun(Symbol, u16),
}

impl Cell {
    /// Whether this cell is an unbound variable at address `addr`.
    pub fn is_unbound_at(self, addr: usize) -> bool {
        matches!(self, Cell::Ref(a) if a == addr)
    }
}

impl CellRepr for Cell {
    fn mk_ref(addr: usize) -> Self {
        Cell::Ref(addr)
    }
    fn mk_str(addr: usize) -> Self {
        Cell::Str(addr)
    }
    fn mk_lis(addr: usize) -> Self {
        Cell::Lis(addr)
    }
    fn mk_con(name: Symbol) -> Self {
        Cell::Con(name)
    }
    fn mk_int(value: i64) -> Self {
        Cell::Int(value)
    }
    fn mk_fun(name: Symbol, arity: u16) -> Self {
        Cell::Fun(name, arity)
    }
    fn as_ref_addr(self) -> Option<usize> {
        match self {
            Cell::Ref(a) => Some(a),
            _ => None,
        }
    }
}

/// Follow reference chains to the representative cell.
///
/// Returns the final cell and the heap address it lives at, if any: a
/// bound chain ends in `(value, Some(address of the last ref))`, an
/// unbound variable in `(ref-to-self, Some(its address))`, and a cell
/// that was never a reference (e.g. a register-resident constant) in
/// `(cell, None)`. Variable-like non-`ref` cells (abstract leaves) stop
/// the chase exactly like values do, with their address reported — which
/// is what instantiation needs.
pub fn deref<C: CellRepr>(heap: &[C], mut cell: C) -> (C, Option<usize>) {
    let mut addr = None;
    while let Some(a) = cell.as_ref_addr() {
        let next = heap[a];
        if next == cell {
            // Unbound: a self-reference.
            return (cell, Some(a));
        }
        addr = Some(a);
        cell = next;
    }
    (cell, addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_detection() {
        assert!(Cell::Ref(3).is_unbound_at(3));
        assert!(!Cell::Ref(3).is_unbound_at(4));
        assert!(!Cell::Int(3).is_unbound_at(3));
    }

    #[test]
    fn deref_chases_chains() {
        // heap: 0 -> 1 -> Int(7); 2 unbound; Int in a register.
        let heap = vec![Cell::Ref(1), Cell::Int(7), Cell::Ref(2)];
        assert_eq!(deref(&heap, Cell::Ref(0)), (Cell::Int(7), Some(1)));
        assert_eq!(deref(&heap, Cell::Ref(2)), (Cell::Ref(2), Some(2)));
        assert_eq!(deref(&heap, Cell::Int(5)), (Cell::Int(5), None));
    }
}
