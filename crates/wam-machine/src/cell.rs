//! Tagged heap cells — the shared representation from [`awam_exec`].
//!
//! The cell type lives in the execution substrate so that both machines
//! (and the dispatch loop) agree on it; this module keeps the historical
//! `wam_machine::cell::Cell` path working.

pub use awam_exec::cell::Cell;
