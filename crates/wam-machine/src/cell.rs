//! Tagged heap cells.

use prolog_syntax::Symbol;

/// One tagged word, exactly as in the standard WAM.
///
/// An unbound variable is a `Ref` pointing at its own heap address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cell {
    /// Reference (possibly unbound: a self-reference).
    Ref(usize),
    /// Pointer to a `Fun` cell followed by the argument cells.
    Str(usize),
    /// Pointer to two consecutive cells (car, cdr).
    Lis(usize),
    /// An atom.
    Con(Symbol),
    /// An integer.
    Int(i64),
    /// A functor cell (only ever pointed to by `Str`).
    Fun(Symbol, u16),
}

impl Cell {
    /// Whether this cell is an unbound variable at address `addr`.
    pub fn is_unbound_at(self, addr: usize) -> bool {
        matches!(self, Cell::Ref(a) if a == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_detection() {
        assert!(Cell::Ref(3).is_unbound_at(3));
        assert!(!Cell::Ref(3).is_unbound_at(4));
        assert!(!Cell::Int(3).is_unbound_at(3));
    }
}
