//! Arithmetic evaluation and the standard order of terms.

use crate::cell::Cell;
use prolog_syntax::Interner;
use std::cmp::Ordering;
use std::fmt;

/// Follow reference chains to the representative cell (the shared
/// [`awam_exec::deref`], discarding the address).
pub fn deref(heap: &[Cell], cell: Cell) -> Cell {
    awam_exec::deref(heap, cell).0
}

/// An arithmetic evaluation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArithError {
    /// The expression contains an unbound variable.
    Unbound,
    /// The expression contains a non-evaluable term.
    NotEvaluable(String),
    /// Division (or modulus) by zero.
    DivisionByZero,
    /// The result does not fit in `i64`.
    Overflow,
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::Unbound => write!(f, "arithmetic on an unbound variable"),
            ArithError::NotEvaluable(what) => write!(f, "term {what} is not evaluable"),
            ArithError::DivisionByZero => write!(f, "division by zero"),
            ArithError::Overflow => write!(f, "integer overflow in arithmetic"),
        }
    }
}

impl std::error::Error for ArithError {}

/// Evaluate an arithmetic expression over the heap.
///
/// Supports the integer operators used by the classic benchmark suite:
/// `+`, `-`, `*`, `//`, `/` (integer division when exact-divisible,
/// truncating otherwise, as in the original PLM setting), `mod`, `rem`,
/// `min`, `max`, `abs`, unary `-`/`+`, `<<`, `>>`, `/\`, `\/`, `xor`.
///
/// # Errors
///
/// Returns [`ArithError`] on unbound variables, unknown functors,
/// division by zero or overflow.
pub fn eval_arith(heap: &[Cell], interner: &Interner, cell: Cell) -> Result<i64, ArithError> {
    match deref(heap, cell) {
        Cell::Int(i) => Ok(i),
        Cell::Ref(_) => Err(ArithError::Unbound),
        Cell::Con(sym) => Err(ArithError::NotEvaluable(interner.resolve(sym).to_owned())),
        Cell::Lis(_) => Err(ArithError::NotEvaluable("a list".into())),
        Cell::Str(p) => {
            let Cell::Fun(f, n) = heap[p] else {
                unreachable!("Str points at Fun");
            };
            let name = interner.resolve(f);
            let arg = |i: usize| eval_arith(heap, interner, Cell::Ref(p + 1 + i));
            match (name, n) {
                ("+", 2) => arg(0)?.checked_add(arg(1)?).ok_or(ArithError::Overflow),
                ("-", 2) => arg(0)?.checked_sub(arg(1)?).ok_or(ArithError::Overflow),
                ("*", 2) => arg(0)?.checked_mul(arg(1)?).ok_or(ArithError::Overflow),
                ("//", 2) | ("div", 2) | ("/", 2) => {
                    let (a, b) = (arg(0)?, arg(1)?);
                    if b == 0 {
                        Err(ArithError::DivisionByZero)
                    } else {
                        a.checked_div(b).ok_or(ArithError::Overflow)
                    }
                }
                ("mod", 2) => {
                    let (a, b) = (arg(0)?, arg(1)?);
                    if b == 0 {
                        Err(ArithError::DivisionByZero)
                    } else {
                        Ok(a.rem_euclid(b))
                    }
                }
                ("rem", 2) => {
                    let (a, b) = (arg(0)?, arg(1)?);
                    if b == 0 {
                        Err(ArithError::DivisionByZero)
                    } else {
                        Ok(a % b)
                    }
                }
                ("min", 2) => Ok(arg(0)?.min(arg(1)?)),
                ("max", 2) => Ok(arg(0)?.max(arg(1)?)),
                ("<<", 2) => Ok(arg(0)? << (arg(1)? & 63)),
                (">>", 2) => Ok(arg(0)? >> (arg(1)? & 63)),
                ("/\\", 2) => Ok(arg(0)? & arg(1)?),
                ("\\/", 2) => Ok(arg(0)? | arg(1)?),
                ("xor", 2) => Ok(arg(0)? ^ arg(1)?),
                ("-", 1) => arg(0)?.checked_neg().ok_or(ArithError::Overflow),
                ("+", 1) => arg(0),
                ("abs", 1) => arg(0)?.checked_abs().ok_or(ArithError::Overflow),
                ("\\", 1) => Ok(!arg(0)?),
                _ => Err(ArithError::NotEvaluable(format!("{name}/{n}"))),
            }
        }
        Cell::Fun(..) => unreachable!("bare functor cell in expression"),
    }
}

/// Compare two terms in the standard order of terms:
/// `Var < Number < Atom < Compound`, variables by heap address, atoms
/// alphabetically, compounds by arity then name then arguments.
pub fn compare_terms(heap: &[Cell], interner: &Interner, a: Cell, b: Cell) -> Ordering {
    let a = deref(heap, a);
    let b = deref(heap, b);
    let rank = |c: Cell| match c {
        Cell::Ref(_) => 0,
        Cell::Int(_) => 1,
        Cell::Con(_) => 2,
        Cell::Lis(_) | Cell::Str(_) => 3,
        Cell::Fun(..) => unreachable!("bare functor cell"),
    };
    match rank(a).cmp(&rank(b)) {
        Ordering::Equal => {}
        other => return other,
    }
    match (a, b) {
        (Cell::Ref(x), Cell::Ref(y)) => x.cmp(&y),
        (Cell::Int(x), Cell::Int(y)) => x.cmp(&y),
        (Cell::Con(x), Cell::Con(y)) => interner.resolve(x).cmp(interner.resolve(y)),
        (Cell::Lis(_) | Cell::Str(_), Cell::Lis(_) | Cell::Str(_)) => {
            let (fa, na, argsa) = decompose(heap, interner, a);
            let (fb, nb, argsb) = decompose(heap, interner, b);
            na.cmp(&nb).then_with(|| fa.cmp(fb)).then_with(|| {
                for (x, y) in argsa.iter().zip(argsb.iter()) {
                    match compare_terms(heap, interner, *x, *y) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            })
        }
        _ => unreachable!("same rank implies same shape"),
    }
}

fn decompose<'a>(heap: &[Cell], interner: &'a Interner, c: Cell) -> (&'a str, usize, Vec<Cell>) {
    match c {
        Cell::Lis(p) => (".", 2, vec![Cell::Ref(p), Cell::Ref(p + 1)]),
        Cell::Str(p) => {
            let Cell::Fun(f, n) = heap[p] else {
                unreachable!()
            };
            (
                interner.resolve(f),
                n as usize,
                (0..n as usize).map(|i| Cell::Ref(p + 1 + i)).collect(),
            )
        }
        _ => unreachable!(),
    }
}

/// Structural equality without binding (`==`/2).
pub fn struct_eq(heap: &[Cell], a: Cell, b: Cell) -> bool {
    let a = deref(heap, a);
    let b = deref(heap, b);
    match (a, b) {
        (Cell::Ref(x), Cell::Ref(y)) => x == y,
        (Cell::Int(x), Cell::Int(y)) => x == y,
        (Cell::Con(x), Cell::Con(y)) => x == y,
        (Cell::Lis(x), Cell::Lis(y)) => {
            struct_eq(heap, Cell::Ref(x), Cell::Ref(y))
                && struct_eq(heap, Cell::Ref(x + 1), Cell::Ref(y + 1))
        }
        (Cell::Str(x), Cell::Str(y)) => {
            let (Cell::Fun(fx, nx), Cell::Fun(fy, ny)) = (heap[x], heap[y]) else {
                unreachable!()
            };
            fx == fy
                && nx == ny
                && (0..nx as usize)
                    .all(|i| struct_eq(heap, Cell::Ref(x + 1 + i), Cell::Ref(y + 1 + i)))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with_expr(interner: &mut Interner) -> (Vec<Cell>, Cell) {
        // 3 + 4 * 2
        let plus = interner.intern("+");
        let times = interner.intern("*");
        let heap = vec![
            Cell::Fun(times, 2), // 0
            Cell::Int(4),        // 1
            Cell::Int(2),        // 2
            Cell::Fun(plus, 2),  // 3
            Cell::Int(3),        // 4
            Cell::Str(0),        // 5
        ];
        (heap, Cell::Str(3))
    }

    #[test]
    fn nested_arith() {
        let mut i = Interner::new();
        let (heap, expr) = heap_with_expr(&mut i);
        assert_eq!(eval_arith(&heap, &i, expr), Ok(11));
    }

    #[test]
    fn unbound_is_an_error() {
        let i = Interner::new();
        let heap = vec![Cell::Ref(0)];
        assert_eq!(
            eval_arith(&heap, &i, Cell::Ref(0)),
            Err(ArithError::Unbound)
        );
    }

    #[test]
    fn division_by_zero() {
        let mut i = Interner::new();
        let slash = i.intern("//");
        let heap = vec![Cell::Fun(slash, 2), Cell::Int(1), Cell::Int(0)];
        assert_eq!(
            eval_arith(&heap, &i, Cell::Str(0)),
            Err(ArithError::DivisionByZero)
        );
    }

    #[test]
    fn mod_is_euclidean() {
        let mut i = Interner::new();
        let m = i.intern("mod");
        let heap = vec![Cell::Fun(m, 2), Cell::Int(-7), Cell::Int(3)];
        assert_eq!(eval_arith(&heap, &i, Cell::Str(0)), Ok(2));
    }

    #[test]
    fn standard_order_ranks() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let heap = vec![Cell::Ref(0)];
        assert_eq!(
            compare_terms(&heap, &i, Cell::Ref(0), Cell::Int(5)),
            Ordering::Less
        );
        assert_eq!(
            compare_terms(&heap, &i, Cell::Int(5), Cell::Con(a)),
            Ordering::Less
        );
        assert_eq!(
            compare_terms(&heap, &i, Cell::Con(a), Cell::Lis(0)),
            Ordering::Less
        );
    }

    #[test]
    fn atoms_compare_alphabetically() {
        let mut i = Interner::new();
        let a = i.intern("apple");
        let b = i.intern("banana");
        let heap: Vec<Cell> = vec![];
        assert_eq!(
            compare_terms(&heap, &i, Cell::Con(a), Cell::Con(b)),
            Ordering::Less
        );
    }

    #[test]
    fn struct_eq_distinguishes_unbound() {
        let heap = vec![Cell::Ref(0), Cell::Ref(1)];
        assert!(!struct_eq(&heap, Cell::Ref(0), Cell::Ref(1)));
        assert!(struct_eq(&heap, Cell::Ref(0), Cell::Ref(0)));
    }
}
