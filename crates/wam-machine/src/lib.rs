//! The concrete WAM runtime: standard Prolog execution of compiled code.
//!
//! This crate is the "standard WAM" of the paper's Figure 1. It executes
//! the [`wam::CompiledProgram`] produced by the `wam` compiler over the
//! concrete domain: a tagged-cell heap, a trail, environments and choice
//! points, full backtracking, and the inline builtins (arithmetic,
//! comparison, unification, type tests, cut support).
//!
//! Its role in the reproduction is twofold:
//!
//! * it validates that the compiler's output is real, runnable WAM code
//!   (every benchmark program runs concretely in the test suite);
//! * it provides the concrete-execution oracle for the end-to-end
//!   soundness tests: every call/success pattern observed concretely must
//!   be covered by the abstract analyzer's extension-table entries.
//!
//! # Examples
//!
//! ```
//! use prolog_syntax::parse_program;
//! use wam::compile_program;
//! use wam_machine::Machine;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let compiled = compile_program(&program)?;
//! let mut machine = Machine::new(&compiled);
//! let solution = machine.query_str("app([1, 2], [3], X)")?.expect("succeeds");
//! assert_eq!(solution.binding_str("X").unwrap(), "[1, 2, 3]");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod eval;
pub mod machine;
pub mod reify;

pub use cell::Cell;
pub use machine::{Machine, Outcome, RunError, Solution};
