//! Conversion between syntax [`Term`]s and heap cells.

use crate::cell::Cell;
use crate::eval::deref;
use prolog_syntax::{Interner, Term, VarId};
use std::collections::HashMap;
use wam::CompiledProgram;

/// Build `term` on the heap and return the cell referring to it.
///
/// `var_addrs` maps each [`VarId`] in the term to its heap address, shared
/// across multiple `build` calls so that variables repeated between
/// arguments alias correctly. Symbols are resolved through `interner`
/// (which may be an extension of the program's interner) and re-interned
/// into the program's symbol space via text when necessary — in practice
/// the two interners share prefixes, so symbols pass through unchanged.
pub fn build(
    heap: &mut Vec<Cell>,
    term: &Term,
    var_addrs: &mut Vec<Option<usize>>,
    interner: &Interner,
    program: &CompiledProgram,
) -> Cell {
    match term {
        Term::Var(v) => {
            let idx = v.index();
            if idx >= var_addrs.len() {
                var_addrs.resize(idx + 1, None);
            }
            match var_addrs[idx] {
                Some(addr) => Cell::Ref(addr),
                None => {
                    let addr = heap.len();
                    heap.push(Cell::Ref(addr));
                    var_addrs[idx] = Some(addr);
                    Cell::Ref(addr)
                }
            }
        }
        Term::Int(i) => Cell::Int(*i),
        Term::Atom(a) => Cell::Con(translate(*a, interner, program)),
        Term::Struct(f, args) => {
            let is_cons = interner.resolve(*f) == "." && args.len() == 2;
            // Children first (they may allocate), then the spine.
            let child_cells: Vec<Cell> = args
                .iter()
                .map(|a| build(heap, a, var_addrs, interner, program))
                .collect();
            if is_cons {
                let p = heap.len();
                heap.push(child_cells[0]);
                heap.push(child_cells[1]);
                Cell::Lis(p)
            } else {
                let p = heap.len();
                heap.push(Cell::Fun(
                    translate(*f, interner, program),
                    args.len() as u16,
                ));
                for c in child_cells {
                    heap.push(c);
                }
                Cell::Str(p)
            }
        }
    }
}

/// Map a symbol from a (possibly extended) interner into the program's
/// symbol space. Because extensions share the program interner's prefix,
/// symbols that exist in both resolve to themselves.
fn translate(
    sym: prolog_syntax::Symbol,
    interner: &Interner,
    program: &CompiledProgram,
) -> prolog_syntax::Symbol {
    if sym.index() < program.interner.len() {
        sym
    } else {
        // A genuinely new symbol: it cannot match anything in the program,
        // but it must still render. Fall back to looking it up by text (it
        // will be absent, so keep the foreign symbol — comparisons against
        // program symbols will simply fail, which is the right semantics).
        program
            .interner
            .lookup(interner.resolve(sym))
            .unwrap_or(sym)
    }
}

/// Names fresh variables `_G0`, `_G1`, … during reification.
#[derive(Debug, Default)]
pub struct Namer {
    names: Vec<String>,
    by_addr: HashMap<usize, VarId>,
}

impl Namer {
    /// Create an empty namer.
    pub fn new() -> Self {
        Namer::default()
    }

    /// The generated names, indexed by [`VarId`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn var_for(&mut self, addr: usize) -> VarId {
        if let Some(&v) = self.by_addr.get(&addr) {
            return v;
        }
        let v = VarId(self.names.len() as u32);
        self.names.push(format!("_G{}", self.names.len()));
        self.by_addr.insert(addr, v);
        v
    }
}

/// Convert the heap term rooted at `cell` back into a syntax [`Term`].
///
/// Unbound variables become fresh [`Term::Var`]s named by `namer`, with
/// aliasing preserved (two occurrences of the same unbound cell map to the
/// same variable). Occurs-check-free unification can leave cyclic terms on
/// the heap; a back-edge to a compound already on the current path is cut
/// to the atom `'...'` (the way toplevels conventionally print cycles).
pub fn reify(heap: &[Cell], cell: Cell, namer: &mut Namer) -> Term {
    reify_acyclic(heap, cell, namer, &mut Vec::new())
}

fn reify_acyclic(heap: &[Cell], cell: Cell, namer: &mut Namer, path: &mut Vec<usize>) -> Term {
    match deref(heap, cell) {
        Cell::Ref(addr) => Term::Var(namer.var_for(addr)),
        Cell::Int(i) => Term::Int(i),
        Cell::Con(s) => Term::Atom(s),
        Cell::Lis(p) => {
            if path.contains(&p) {
                return Term::Atom(ellipsis_symbol());
            }
            path.push(p);
            let head = reify_acyclic(heap, Cell::Ref(p), namer, path);
            let tail = reify_acyclic(heap, Cell::Ref(p + 1), namer, path);
            path.pop();
            // `.`/2 — rebuild structurally; the dot symbol is well-known.
            Term::Struct(dot_symbol(), vec![head, tail])
        }
        Cell::Str(p) => {
            if path.contains(&p) {
                return Term::Atom(ellipsis_symbol());
            }
            path.push(p);
            let Cell::Fun(f, n) = heap[p] else {
                unreachable!("Str points at Fun")
            };
            let args = (0..n as usize)
                .map(|i| reify_acyclic(heap, Cell::Ref(p + 1 + i), namer, path))
                .collect();
            path.pop();
            Term::Struct(f, args)
        }
        Cell::Fun(..) => unreachable!("bare functor cell"),
    }
}

/// The well-known `'.'` symbol (pre-interned at a fixed index by
/// [`Interner::new`]).
fn dot_symbol() -> prolog_syntax::Symbol {
    Interner::new().dot()
}

/// The well-known `'...'` cyclic-cut atom.
fn ellipsis_symbol() -> prolog_syntax::Symbol {
    Interner::new().ellipsis()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;
    use wam::compile_program;

    fn setup() -> CompiledProgram {
        compile_program(&parse_program("p(a).").unwrap()).unwrap()
    }

    #[test]
    fn build_reify_roundtrip() {
        let program = setup();
        let (term, interner, names) = prolog_syntax::parse_term("f(X, [a, 2], g(X))").unwrap();
        let mut heap = Vec::new();
        let mut vars = vec![None; names.len()];
        let cell = build(&mut heap, &term, &mut vars, &interner, &program);
        let mut namer = Namer::new();
        let back = reify(&heap, cell, &mut namer);
        let rendered = prolog_syntax::term_to_string(&back, &interner, namer.names());
        assert_eq!(rendered, "f(_G0, [a, 2], g(_G0))");
    }

    #[test]
    fn shared_variables_alias() {
        let program = setup();
        let (term, interner, names) = prolog_syntax::parse_term("pair(X, X)").unwrap();
        let mut heap = Vec::new();
        let mut vars = vec![None; names.len()];
        let cell = build(&mut heap, &term, &mut vars, &interner, &program);
        let Cell::Str(p) = cell else { panic!() };
        let a = deref(&heap, Cell::Ref(p + 1));
        let b = deref(&heap, Cell::Ref(p + 2));
        assert_eq!(a, b, "both args deref to the same unbound cell");
    }

    #[test]
    fn lists_are_lis_cells() {
        let program = setup();
        let (term, interner, _) = prolog_syntax::parse_term("[1, 2]").unwrap();
        let mut heap = Vec::new();
        let mut vars = Vec::new();
        let cell = build(&mut heap, &term, &mut vars, &interner, &program);
        assert!(matches!(cell, Cell::Lis(_)));
        let mut namer = Namer::new();
        let back = reify(&heap, cell, &mut namer);
        let rendered = prolog_syntax::term_to_string(&back, &interner, &[]);
        assert_eq!(rendered, "[1, 2]");
        let _ = back;
    }
}
