//! The concrete WAM, as an instance of the shared execution substrate.
//!
//! Instruction dispatch, the heap/register/trail plumbing, and `deref`
//! live in [`awam_exec`]; this module supplies the *concrete*
//! interpretation — syntactic unification, `call`/`proceed` through a
//! continuation pointer, backtracking through a choice-point stack, and
//! the indexing instructions followed as compiled.

use crate::eval::{self, deref, eval_arith, ArithError};
use crate::reify;
use awam_exec::{Cell, CellRepr, Flow, Frame, Interpretation, Mode};
use awam_obs::{MachineStats, OpcodeCounts, TraceEvent, Tracer};
use prolog_syntax::Term;
use std::fmt;
use wam::{Builtin, CodeAddr, CompiledProgram, Functor, PredIdx, WamConst};

/// Result of driving the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The query succeeded (bindings can be extracted).
    Success,
    /// The query (or the remaining alternatives) failed.
    Failure,
}

/// A runtime error (distinct from goal failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The queried predicate does not exist in the program.
    UnknownPredicate {
        /// `name/arity` of the missing predicate.
        pred: String,
    },
    /// An arithmetic builtin was applied to a bad expression.
    Arith(ArithError),
    /// `functor/3` or `arg/3` received insufficiently instantiated
    /// arguments.
    Instantiation {
        /// The builtin that failed.
        builtin: &'static str,
    },
    /// The step budget was exhausted (runaway recursion guard).
    StepLimit,
    /// The query string failed to parse.
    Parse(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownPredicate { pred } => write!(f, "unknown predicate {pred}"),
            RunError::Arith(e) => write!(f, "{e}"),
            RunError::Instantiation { builtin } => {
                write!(f, "insufficiently instantiated arguments to {builtin}")
            }
            RunError::StepLimit => write!(f, "step limit exceeded"),
            RunError::Parse(e) => write!(f, "query parse error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ArithError> for RunError {
    fn from(e: ArithError) -> Self {
        RunError::Arith(e)
    }
}

/// One solution to a query: bindings for the query's variables.
#[derive(Clone, Debug)]
pub struct Solution {
    /// `(variable name, bound term)` pairs in query order, with the
    /// interner-independent rendering alongside.
    pub bindings: Vec<(String, Term, String)>,
}

impl Solution {
    /// The rendered binding of variable `name`, if present in the query.
    pub fn binding_str(&self, name: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, s)| s.as_str())
    }
}

#[derive(Debug, Clone)]
struct ChoicePoint {
    args: Vec<Cell>,
    e: Option<usize>,
    cont: Option<usize>,
    b0: usize,
    next_alt: usize,
    trail_len: usize,
    heap_len: usize,
    env_len: usize,
}

/// The concrete WAM.
///
/// See the [crate documentation](crate) for an overview and example.
pub struct Machine<'p> {
    program: &'p CompiledProgram,
    /// Shared substrate state: heap, registers, environments, trail, pc.
    frame: Frame<Cell, usize>,
    choices: Vec<ChoicePoint>,
    max_steps: u64,
    /// Names of the current query's variables, indexed by [`VarId`].
    query_vars: Vec<(String, usize)>,
    /// Event sink; predicate entries are reified into
    /// [`awam_obs::TraceEvent::Call`] events when attached.
    tracer: Option<&'p mut dyn Tracer>,
    /// Backtracks, choice points, and high-water marks; instruction and
    /// call totals are folded in by [`Self::machine_stats`].
    stats: MachineStats,
    /// Predicate calls entered (`call`/`execute` dispatches).
    calls: u64,
    /// The program interner, possibly extended with query-only symbols.
    interner: prolog_syntax::Interner,
    /// Text written by `write/1` and friends.
    pub output: String,
}

impl fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.frame.pc)
            .field("steps", &self.frame.executed)
            .field("heap_len", &self.frame.heap.len())
            .field("choices", &self.choices.len())
            .field("envs", &self.frame.envs.len())
            .field("traced", &self.tracer.is_some())
            .finish_non_exhaustive()
    }
}

/// The concrete interpretation: every divergence point of the shared
/// dispatch loop gets its standard-WAM semantics.
impl Interpretation for Machine<'_> {
    type Cell = Cell;
    /// Address-only trail: undo resets the slot to an unbound ref.
    type TrailEntry = usize;
    type Error = RunError;

    fn frame(&self) -> &Frame<Cell, usize> {
        &self.frame
    }

    fn frame_mut(&mut self) -> &mut Frame<Cell, usize> {
        &mut self.frame
    }

    fn trail_entry(addr: usize, _old: Cell) -> usize {
        addr
    }

    fn undo_entry(heap: &mut [Cell], addr: usize) {
        heap[addr] = Cell::Ref(addr);
    }

    /// Full syntactic unification with trailing.
    fn unify(&mut self, a: Cell, b: Cell) -> bool {
        let mut stack = vec![(a, b)];
        while let Some((a, b)) = stack.pop() {
            let a = deref(&self.frame.heap, a);
            let b = deref(&self.frame.heap, b);
            if a == b {
                continue;
            }
            match (a, b) {
                (Cell::Ref(x), Cell::Ref(y)) => {
                    // Bind the younger to the older for safe truncation.
                    if x > y {
                        self.bind(x, Cell::Ref(y));
                    } else {
                        self.bind(y, Cell::Ref(x));
                    }
                }
                (Cell::Ref(x), other) => self.bind(x, other),
                (other, Cell::Ref(y)) => self.bind(y, other),
                (Cell::Int(x), Cell::Int(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Cell::Con(x), Cell::Con(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (Cell::Lis(x), Cell::Lis(y)) => {
                    stack.push((Cell::Ref(x), Cell::Ref(y)));
                    stack.push((Cell::Ref(x + 1), Cell::Ref(y + 1)));
                }
                (Cell::Str(x), Cell::Str(y)) => {
                    let (Cell::Fun(fx, nx), Cell::Fun(fy, ny)) =
                        (self.frame.heap[x], self.frame.heap[y])
                    else {
                        unreachable!("Str points at Fun");
                    };
                    if fx != fy || nx != ny {
                        return false;
                    }
                    for i in 0..nx as usize {
                        stack.push((Cell::Ref(x + 1 + i), Cell::Ref(y + 1 + i)));
                    }
                }
                _ => return false,
            }
        }
        true
    }

    fn get_constant(&mut self, c: WamConst, arg: Cell) -> bool {
        let d = deref(&self.frame.heap, arg);
        match (d, c) {
            (Cell::Ref(addr), _) => {
                self.bind(addr, Cell::mk_const(c));
                true
            }
            (Cell::Con(s), WamConst::Atom(a)) => s == a,
            (Cell::Int(i), WamConst::Int(j)) => i == j,
            _ => false,
        }
    }

    fn get_list(&mut self, arg: Cell) -> bool {
        let arg = deref(&self.frame.heap, arg);
        match arg {
            Cell::Ref(addr) => {
                // The two cells the following unify_* instructions
                // write (in write mode) become the car and cdr.
                let h = self.frame.heap.len();
                self.bind(addr, Cell::Lis(h));
                self.frame.mode = Mode::Write;
                true
            }
            Cell::Lis(p) => {
                self.frame.mode = Mode::Read;
                self.frame.s = p;
                true
            }
            _ => false,
        }
    }

    fn get_structure(&mut self, f: Functor, arg: Cell) -> bool {
        let arg = deref(&self.frame.heap, arg);
        match arg {
            Cell::Ref(addr) => {
                let h = self.frame.heap.len();
                self.frame.heap.push(Cell::Fun(f.name, f.arity));
                self.bind(addr, Cell::Str(h));
                self.frame.mode = Mode::Write;
                true
            }
            Cell::Str(p) if self.frame.heap[p] == Cell::Fun(f.name, f.arity) => {
                self.frame.mode = Mode::Read;
                self.frame.s = p + 1;
                true
            }
            _ => false,
        }
    }

    fn call(&mut self, pred: PredIdx) -> Result<Flow, RunError> {
        self.frame.cont = Some(self.frame.pc);
        self.enter(pred);
        Ok(Flow::Continue)
    }

    fn execute(&mut self, pred: PredIdx) -> Result<Flow, RunError> {
        self.enter(pred);
        Ok(Flow::Continue)
    }

    fn proceed(&mut self) -> Result<Flow, RunError> {
        match self.frame.cont {
            Some(addr) => {
                self.frame.pc = addr;
                Ok(Flow::Continue)
            }
            None => Ok(Flow::Done),
        }
    }

    fn builtin(&mut self, b: Builtin) -> Result<Flow, RunError> {
        Ok(match self.call_builtin(b)? {
            BuiltinResult::Ok => Flow::Continue,
            BuiltinResult::Fail => Flow::Fail,
            BuiltinResult::Halt => Flow::Done,
        })
    }

    fn neck_cut(&mut self) -> bool {
        self.choices.truncate(self.frame.b0);
        true
    }

    fn get_level(&mut self, _y: u16) -> bool {
        // The barrier lives in the environment, not the Y register.
        let e = self.frame.e.expect("get_level with no environment");
        self.frame.envs[e].cut = self.frame.b0;
        true
    }

    fn cut_level(&mut self, _y: u16) -> bool {
        let e = self.frame.e.expect("cut with no environment");
        let barrier = self.frame.envs[e].cut;
        self.choices.truncate(barrier);
        true
    }

    fn try_me_else(&mut self, alt: CodeAddr) -> Flow {
        self.push_choice(alt);
        Flow::Continue
    }

    fn retry_me_else(&mut self, alt: CodeAddr) -> Flow {
        self.choices
            .last_mut()
            .expect("retry_me_else with no choice point")
            .next_alt = alt;
        Flow::Continue
    }

    fn trust_me(&mut self) -> Flow {
        self.choices.pop().expect("trust_me with no choice point");
        Flow::Continue
    }

    fn try_(&mut self, clause: CodeAddr) -> Flow {
        let next = self.frame.pc;
        self.push_choice(next);
        self.frame.pc = clause;
        Flow::Continue
    }

    fn retry(&mut self, clause: CodeAddr) -> Flow {
        let next = self.frame.pc;
        self.choices
            .last_mut()
            .expect("retry with no choice point")
            .next_alt = next;
        self.frame.pc = clause;
        Flow::Continue
    }

    fn trust(&mut self, clause: CodeAddr) -> Flow {
        self.choices.pop().expect("trust with no choice point");
        self.frame.pc = clause;
        Flow::Continue
    }

    fn switch_on_term(
        &mut self,
        var: CodeAddr,
        con: CodeAddr,
        lis: CodeAddr,
        str_: CodeAddr,
    ) -> Flow {
        let d = deref(&self.frame.heap, self.frame.x[0]);
        self.frame.pc = match d {
            Cell::Ref(_) => var,
            Cell::Con(_) | Cell::Int(_) => con,
            Cell::Lis(_) => lis,
            Cell::Str(_) => str_,
            Cell::Fun(..) => unreachable!("bare functor in A1"),
        };
        Flow::Continue
    }

    fn switch_on_constant(&mut self, table: &[(WamConst, CodeAddr)]) -> Flow {
        let d = deref(&self.frame.heap, self.frame.x[0]);
        let key = match d {
            Cell::Con(s) => Some(WamConst::Atom(s)),
            Cell::Int(i) => Some(WamConst::Int(i)),
            _ => None,
        };
        match key.and_then(|k| table.iter().find(|(c, _)| *c == k)) {
            Some((_, addr)) => {
                self.frame.pc = *addr;
                Flow::Continue
            }
            None => Flow::Fail,
        }
    }

    fn switch_on_structure(&mut self, table: &[(Functor, CodeAddr)]) -> Flow {
        let d = deref(&self.frame.heap, self.frame.x[0]);
        let key = match d {
            Cell::Str(p) => match self.frame.heap[p] {
                Cell::Fun(f, n) => Some((f, n)),
                _ => None,
            },
            _ => None,
        };
        match key.and_then(|(f, n)| {
            table
                .iter()
                .find(|(func, _)| func.name == f && func.arity == n)
        }) {
            Some((_, addr)) => {
                self.frame.pc = *addr;
                Flow::Continue
            }
            None => Flow::Fail,
        }
    }
}

impl<'p> Machine<'p> {
    /// Create a machine for `program`.
    pub fn new(program: &'p CompiledProgram) -> Self {
        Machine {
            program,
            frame: Frame::new(),
            choices: Vec::new(),
            max_steps: 500_000_000,
            query_vars: Vec::new(),
            tracer: None,
            stats: MachineStats::default(),
            calls: 0,
            interner: program.interner.clone(),
            output: String::new(),
        }
    }

    /// Attach an event tracer; every predicate entry is then reported as
    /// a [`TraceEvent::Call`] with reified arguments (the old
    /// `trace_calls`/`call_trace` mechanism, now through the shared
    /// [`Tracer`] interface).
    pub fn set_tracer(&mut self, tracer: &'p mut dyn Tracer) {
        self.tracer = Some(tracer);
    }

    /// Work counters and high-water marks for the run so far.
    pub fn machine_stats(&self) -> MachineStats {
        let mut stats = self.stats;
        stats.instructions = self.frame.executed;
        stats.calls = self.calls;
        stats.note_heap(self.frame.heap.len());
        stats.note_trail(self.frame.trail.len());
        stats
    }

    /// Per-opcode dispatch counts over this machine's life.
    pub fn opcodes(&self) -> &OpcodeCounts {
        &self.frame.opcodes
    }

    /// Set the runaway-recursion step budget (default 5·10⁸).
    pub fn set_max_steps(&mut self, max_steps: u64) {
        self.max_steps = max_steps;
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.frame.executed
    }

    /// Parse `query` (e.g. `"app([1], [2], X)"`) and run it, returning the
    /// first solution.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on parse errors, unknown predicates, or
    /// runtime errors. Goal failure is `Ok(None)`.
    pub fn query_str(&mut self, query: &str) -> Result<Option<Solution>, RunError> {
        let tokens = prolog_syntax::Lexer::new(query)
            .tokenize()
            .map_err(|e| RunError::Parse(e.to_string()))?;
        // Parse against a scratch interner that shares the program's
        // symbols (names must resolve to the same ids).
        let mut interner = self.program.interner.clone();
        let mut parser = prolog_syntax::Parser::new(&tokens, &mut interner);
        let (term, _) = parser
            .parse(1200)
            .map_err(|e| RunError::Parse(e.to_string()))?;
        let var_names = parser.take_var_names();
        // Any *new* symbols cannot exist in the program, so a lookup miss
        // during execution is simply failure; but the goal's own functor
        // must be known.
        let (name, args) = match &term {
            Term::Atom(a) => (interner.resolve(*a).to_owned(), Vec::new()),
            Term::Struct(f, args) => (interner.resolve(*f).to_owned(), args.clone()),
            _ => {
                return Err(RunError::Parse("query must be a callable term".into()));
            }
        };
        self.run_query_terms(&name, &args, &var_names, &interner)
    }

    /// Run a query given a predicate name and pre-built argument terms.
    ///
    /// `var_names` maps the [`prolog_syntax::VarId`]s in `args` to display names;
    /// `interner` must resolve every symbol in `args` (typically the
    /// program's interner, possibly extended).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::UnknownPredicate`] if the predicate is not
    /// defined, or other [`RunError`]s during execution.
    pub fn run_query_terms(
        &mut self,
        name: &str,
        args: &[Term],
        var_names: &[String],
        interner: &prolog_syntax::Interner,
    ) -> Result<Option<Solution>, RunError> {
        let pred =
            self.program
                .predicate(name, args.len())
                .ok_or_else(|| RunError::UnknownPredicate {
                    pred: format!("{name}/{}", args.len()),
                })?;
        self.reset();
        self.interner = interner.clone();
        // Build argument terms on the heap.
        let mut var_addrs: Vec<Option<usize>> = vec![None; var_names.len()];
        for (i, arg) in args.iter().enumerate() {
            let cell = reify::build(
                &mut self.frame.heap,
                arg,
                &mut var_addrs,
                interner,
                self.program,
            );
            self.frame.x[i] = cell;
        }
        self.query_vars = var_names
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let addr = var_addrs[i]?;
                if n == "_" {
                    None
                } else {
                    Some((n.clone(), addr))
                }
            })
            .collect();
        self.frame.num_args = args.len();
        self.frame.b0 = 0;
        self.frame.cont = None;
        self.frame.pc = self.program.predicates[pred].entry;
        match self.run()? {
            Outcome::Success => Ok(Some(self.extract_solution())),
            Outcome::Failure => Ok(None),
        }
    }

    /// After a successful query, backtrack into the remaining alternatives
    /// and find the next solution.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::query_str`].
    pub fn next_solution(&mut self) -> Result<Option<Solution>, RunError> {
        if !self.backtrack() {
            return Ok(None);
        }
        match self.run()? {
            Outcome::Success => Ok(Some(self.extract_solution())),
            Outcome::Failure => Ok(None),
        }
    }

    /// Collect up to `limit` solutions of `query`.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::query_str`].
    pub fn solve_all(&mut self, query: &str, limit: usize) -> Result<Vec<Solution>, RunError> {
        let mut out = Vec::new();
        if limit == 0 {
            return Ok(out);
        }
        if let Some(s) = self.query_str(query)? {
            out.push(s);
            while out.len() < limit {
                match self.next_solution()? {
                    Some(s) => out.push(s),
                    None => break,
                }
            }
        }
        Ok(out)
    }

    fn reset(&mut self) {
        let f = &mut self.frame;
        f.heap.clear();
        f.clear_envs();
        f.trail.clear();
        f.e = None;
        f.cont = None;
        f.b0 = 0;
        f.mode = Mode::Read;
        f.s = 0;
        self.choices.clear();
        self.output.clear();
        self.query_vars.clear();
    }

    fn extract_solution(&self) -> Solution {
        let mut bindings = Vec::new();
        let mut namer = reify::Namer::new();
        for (name, addr) in &self.query_vars {
            let term = reify::reify(&self.frame.heap, Cell::Ref(*addr), &mut namer);
            let rendered = prolog_syntax::term_to_string(&term, &self.interner, namer.names());
            bindings.push((name.clone(), term, rendered));
        }
        Solution { bindings }
    }

    // ----- the driver loop -----

    fn run(&mut self) -> Result<Outcome, RunError> {
        let program = self.program;
        loop {
            if self.frame.executed >= self.max_steps {
                return Err(RunError::StepLimit);
            }
            match awam_exec::step(self, program)? {
                Flow::Continue => {}
                Flow::Fail => {
                    if !self.backtrack() {
                        return Ok(Outcome::Failure);
                    }
                }
                Flow::Done => return Ok(Outcome::Success),
            }
        }
    }

    fn enter(&mut self, pred: usize) {
        let entry = self.program.predicates[pred].entry;
        self.frame.num_args = self.program.predicates[pred].key.arity;
        self.frame.b0 = self.choices.len();
        self.frame.pc = entry;
        self.calls += 1;
        if self.tracer.is_some() {
            let mut namer = reify::Namer::new();
            let args: Vec<Term> = (0..self.frame.num_args)
                .map(|i| reify::reify(&self.frame.heap, self.frame.x[i], &mut namer))
                .collect();
            let name = self.program.predicates[pred].key.display(&self.interner);
            if let Some(tracer) = self.tracer.as_deref_mut() {
                tracer.event(&TraceEvent::Call { pred, name, args });
            }
        }
    }

    fn push_choice(&mut self, next_alt: usize) {
        self.stats.choice_points += 1;
        self.choices.push(ChoicePoint {
            args: self.frame.x[..self.frame.num_args].to_vec(),
            e: self.frame.e,
            cont: self.frame.cont,
            b0: self.frame.b0,
            next_alt,
            trail_len: self.frame.trail.len(),
            heap_len: self.frame.heap.len(),
            env_len: self.frame.envs.len(),
        });
    }

    fn backtrack(&mut self) -> bool {
        let Some(cp) = self.choices.last() else {
            return false;
        };
        // Backtracking unwinds heap and trail, so this is exactly a local
        // maximum of both — the right moment to sample high-water marks.
        self.stats.backtracks += 1;
        self.stats.note_heap(self.frame.heap.len());
        self.stats.note_trail(self.frame.trail.len());
        let cp = cp.clone();
        self.frame.x[..cp.args.len()].copy_from_slice(&cp.args);
        self.frame.num_args = cp.args.len();
        self.frame.e = cp.e;
        self.frame.cont = cp.cont;
        self.frame.b0 = cp.b0;
        awam_exec::unwind_trail(self, cp.trail_len);
        self.frame.heap.truncate(cp.heap_len);
        self.frame.truncate_envs(cp.env_len);
        self.frame.pc = cp.next_alt;
        true
    }

    fn bind(&mut self, addr: usize, cell: Cell) {
        awam_exec::bind(self, addr, cell);
    }

    // ----- builtins -----

    fn call_builtin(&mut self, b: Builtin) -> Result<BuiltinResult, RunError> {
        use Builtin::*;
        let interner = &self.interner;
        let ok = match b {
            True => true,
            Fail => false,
            Halt => return Ok(BuiltinResult::Halt),
            Is => {
                let value = eval_arith(&self.frame.heap, interner, self.frame.x[1])?;
                self.unify(self.frame.x[0], Cell::Int(value))
            }
            Lt | Gt | Le | Ge | ArithEq | ArithNe => {
                let l = eval_arith(&self.frame.heap, interner, self.frame.x[0])?;
                let r = eval_arith(&self.frame.heap, interner, self.frame.x[1])?;
                match b {
                    Lt => l < r,
                    Gt => l > r,
                    Le => l <= r,
                    Ge => l >= r,
                    ArithEq => l == r,
                    ArithNe => l != r,
                    _ => unreachable!(),
                }
            }
            Unify => self.unify(self.frame.x[0], self.frame.x[1]),
            NotUnify => {
                // Unify in a sandbox: trail and undo.
                let mark = self.frame.trail.len();
                let heap_mark = self.frame.heap.len();
                let unified = self.unify(self.frame.x[0], self.frame.x[1]);
                awam_exec::unwind_trail(self, mark);
                self.frame.heap.truncate(heap_mark);
                !unified
            }
            StructEq => eval::struct_eq(&self.frame.heap, self.frame.x[0], self.frame.x[1]),
            StructNe => !eval::struct_eq(&self.frame.heap, self.frame.x[0], self.frame.x[1]),
            TermLt => {
                eval::compare_terms(&self.frame.heap, interner, self.frame.x[0], self.frame.x[1])
                    == std::cmp::Ordering::Less
            }
            TermGt => {
                eval::compare_terms(&self.frame.heap, interner, self.frame.x[0], self.frame.x[1])
                    == std::cmp::Ordering::Greater
            }
            TermLe => {
                eval::compare_terms(&self.frame.heap, interner, self.frame.x[0], self.frame.x[1])
                    != std::cmp::Ordering::Greater
            }
            TermGe => {
                eval::compare_terms(&self.frame.heap, interner, self.frame.x[0], self.frame.x[1])
                    != std::cmp::Ordering::Less
            }
            Var => matches!(deref(&self.frame.heap, self.frame.x[0]), Cell::Ref(_)),
            Nonvar => !matches!(deref(&self.frame.heap, self.frame.x[0]), Cell::Ref(_)),
            Atom => matches!(deref(&self.frame.heap, self.frame.x[0]), Cell::Con(_)),
            Integer | Number => matches!(deref(&self.frame.heap, self.frame.x[0]), Cell::Int(_)),
            Atomic => matches!(
                deref(&self.frame.heap, self.frame.x[0]),
                Cell::Con(_) | Cell::Int(_)
            ),
            Compound => matches!(
                deref(&self.frame.heap, self.frame.x[0]),
                Cell::Lis(_) | Cell::Str(_)
            ),
            FunctorOf => self.builtin_functor()?,
            Arg => self.builtin_arg()?,
            Write => {
                let mut namer = reify::Namer::new();
                let term = reify::reify(&self.frame.heap, self.frame.x[0], &mut namer);
                let text = prolog_syntax::term_to_string(&term, &self.interner, namer.names());
                self.output.push_str(&text);
                true
            }
            Nl => {
                self.output.push('\n');
                true
            }
            Tab => {
                let n = eval_arith(&self.frame.heap, interner, self.frame.x[0])?;
                for _ in 0..n.max(0) {
                    self.output.push(' ');
                }
                true
            }
        };
        Ok(if ok {
            BuiltinResult::Ok
        } else {
            BuiltinResult::Fail
        })
    }

    fn builtin_functor(&mut self) -> Result<bool, RunError> {
        let t = deref(&self.frame.heap, self.frame.x[0]);
        match t {
            Cell::Con(s) => Ok(self.unify(self.frame.x[1], Cell::Con(s))
                && self.unify(self.frame.x[2], Cell::Int(0))),
            Cell::Int(i) => Ok(self.unify(self.frame.x[1], Cell::Int(i))
                && self.unify(self.frame.x[2], Cell::Int(0))),
            Cell::Lis(_) => {
                let dot = self.interner.lookup(".").expect("well-known");
                Ok(self.unify(self.frame.x[1], Cell::Con(dot))
                    && self.unify(self.frame.x[2], Cell::Int(2)))
            }
            Cell::Str(p) => {
                let Cell::Fun(f, n) = self.frame.heap[p] else {
                    unreachable!()
                };
                Ok(self.unify(self.frame.x[1], Cell::Con(f))
                    && self.unify(self.frame.x[2], Cell::Int(n as i64)))
            }
            Cell::Ref(_) => {
                // Construction mode: name and arity must be bound.
                let name = deref(&self.frame.heap, self.frame.x[1]);
                let arity = deref(&self.frame.heap, self.frame.x[2]);
                match (name, arity) {
                    (Cell::Con(_) | Cell::Int(_), Cell::Int(0)) => {
                        Ok(self.unify(self.frame.x[0], name))
                    }
                    (Cell::Con(f), Cell::Int(n)) if n > 0 => {
                        let h = self.frame.heap.len();
                        self.frame.heap.push(Cell::Fun(f, n as u16));
                        for _ in 0..n {
                            self.frame.push_unbound();
                        }
                        Ok(self.unify(self.frame.x[0], Cell::Str(h)))
                    }
                    (Cell::Ref(_), _) | (_, Cell::Ref(_)) => Err(RunError::Instantiation {
                        builtin: "functor/3",
                    }),
                    _ => Ok(false),
                }
            }
            Cell::Fun(..) => unreachable!(),
        }
    }

    fn builtin_arg(&mut self) -> Result<bool, RunError> {
        let n = deref(&self.frame.heap, self.frame.x[0]);
        let t = deref(&self.frame.heap, self.frame.x[1]);
        let Cell::Int(n) = n else {
            return Err(RunError::Instantiation { builtin: "arg/3" });
        };
        match t {
            Cell::Str(p) => {
                let Cell::Fun(_, arity) = self.frame.heap[p] else {
                    unreachable!()
                };
                if n >= 1 && n <= arity as i64 {
                    Ok(self.unify(self.frame.x[2], Cell::Ref(p + n as usize)))
                } else {
                    Ok(false)
                }
            }
            Cell::Lis(p) => match n {
                1 => Ok(self.unify(self.frame.x[2], Cell::Ref(p))),
                2 => Ok(self.unify(self.frame.x[2], Cell::Ref(p + 1))),
                _ => Ok(false),
            },
            Cell::Ref(_) => Err(RunError::Instantiation { builtin: "arg/3" }),
            _ => Ok(false),
        }
    }
}

enum BuiltinResult {
    Ok,
    Fail,
    Halt,
}
