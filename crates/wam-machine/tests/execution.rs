//! End-to-end concrete execution tests: compile Prolog source, run
//! queries, check solutions and backtracking behaviour.

use prolog_syntax::parse_program;
use wam::compile_program;
use wam_machine::{Machine, RunError};

fn machine_for(src: &str) -> (wam::CompiledProgram, ()) {
    let program = parse_program(src).expect("parse");
    (compile_program(&program).expect("compile"), ())
}

/// Run `query` against `src` and return the rendered binding of `var` in
/// the first solution, or `None` if the query fails.
fn first_binding(src: &str, query: &str, var: &str) -> Option<String> {
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    let sol = m.query_str(query).expect("no runtime error")?;
    Some(sol.binding_str(var).expect("variable in query").to_owned())
}

fn succeeds(src: &str, query: &str) -> bool {
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    m.query_str(query).expect("no runtime error").is_some()
}

fn all_bindings(src: &str, query: &str, var: &str, limit: usize) -> Vec<String> {
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    m.solve_all(query, limit)
        .expect("no runtime error")
        .into_iter()
        .map(|s| s.binding_str(var).expect("variable in query").to_owned())
        .collect()
}

const APPEND: &str = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

#[test]
fn append_forward() {
    assert_eq!(
        first_binding(APPEND, "app([1, 2], [3, 4], X)", "X").as_deref(),
        Some("[1, 2, 3, 4]")
    );
}

#[test]
fn append_backward_enumerates_splits() {
    let splits = all_bindings(APPEND, "app(X, Y, [1, 2])", "X", 10);
    assert_eq!(splits, vec!["[]", "[1]", "[1, 2]"]);
}

#[test]
fn append_fails_on_mismatch() {
    assert!(!succeeds(APPEND, "app([1], [2], [3])"));
}

#[test]
fn naive_reverse() {
    let src = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ";
    assert_eq!(
        first_binding(src, "nrev([1, 2, 3, 4, 5], X)", "X").as_deref(),
        Some("[5, 4, 3, 2, 1]")
    );
}

#[test]
fn member_enumerates() {
    let src = "mem(X, [X|_]). mem(X, [_|T]) :- mem(X, T).";
    assert_eq!(
        all_bindings(src, "mem(X, [a, b, c])", "X", 10),
        vec!["a", "b", "c"]
    );
}

#[test]
fn arithmetic_is() {
    let src = "double(X, Y) :- Y is X * 2.";
    assert_eq!(
        first_binding(src, "double(21, X)", "X").as_deref(),
        Some("42")
    );
}

#[test]
fn arithmetic_comparisons() {
    let src = "max(X, Y, X) :- X >= Y. max(X, Y, Y) :- X < Y.";
    assert_eq!(
        first_binding(src, "max(3, 7, M)", "M").as_deref(),
        Some("7")
    );
    assert_eq!(
        first_binding(src, "max(9, 2, M)", "M").as_deref(),
        Some("9")
    );
}

#[test]
fn factorial_with_cut() {
    let src = "
        fact(0, 1) :- !.
        fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
    ";
    assert_eq!(
        first_binding(src, "fact(10, F)", "F").as_deref(),
        Some("3628800")
    );
}

#[test]
fn tak_small() {
    let src = "
        tak(X, Y, Z, A) :- X =< Y, !, Z = A.
        tak(X, Y, Z, A) :-
            X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
            tak(X1, Y, Z, A1), tak(Y1, Z, X, A2), tak(Z1, X, Y, A3),
            tak(A1, A2, A3, A).
    ";
    assert_eq!(
        first_binding(src, "tak(8, 4, 0, A)", "A").as_deref(),
        Some("1")
    );
}

#[test]
fn qsort_with_partition() {
    let src = "
        qsort([], R, R).
        qsort([X|L], R, R0) :-
            partition(L, X, L1, L2),
            qsort(L2, R1, R0),
            qsort(L1, R, [X|R1]).
        partition([], _, [], []).
        partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
        partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
    ";
    assert_eq!(
        first_binding(
            src,
            "qsort([27, 74, 17, 33, 94, 18, 46, 83, 65, 2], S, [])",
            "S"
        )
        .as_deref(),
        Some("[2, 17, 18, 27, 33, 46, 65, 74, 83, 94]")
    );
}

#[test]
fn cut_prunes_alternatives() {
    let src = "
        first(X, [X|_]) :- !.
        first(X, [_|T]) :- first(X, T).
    ";
    // Without the cut this would enumerate all members; with it only one.
    let solutions = all_bindings(src, "first(X, [a, b, c])", "X", 10);
    assert_eq!(solutions, vec!["a"]);
}

#[test]
fn deep_cut_discards_clause_alternatives() {
    let src = "
        p(X) :- q(X), !, r(X).
        p(always).
        q(1). q(2).
        r(1).
    ";
    // q(1) succeeds, cut commits to q's first solution AND p's first
    // clause; r(1) succeeds.
    let solutions = all_bindings(src, "p(X)", "X", 10);
    assert_eq!(solutions, vec!["1"]);
}

#[test]
fn neck_cut_keeps_outer_choices() {
    let src = "
        s(X) :- t(X).
        s(99).
        t(X) :- !, u(X).
        u(1). u(2).
    ";
    // The neck cut in t/1 cuts t's alternatives only, not s's.
    let solutions = all_bindings(src, "s(X)", "X", 10);
    assert_eq!(solutions, vec!["1", "2", "99"]);
}

#[test]
fn if_then_else() {
    let src = "
        sign(X, pos) :- (X > 0 -> true ; fail).
        sign(X, neg) :- (X > 0 -> fail ; true).
    ";
    assert_eq!(
        first_binding(src, "sign(5, S)", "S").as_deref(),
        Some("pos")
    );
    assert_eq!(
        first_binding(src, "sign(-5, S)", "S").as_deref(),
        Some("neg")
    );
}

#[test]
fn disjunction_both_branches() {
    let src = "color(X) :- (X = red ; X = blue).";
    assert_eq!(all_bindings(src, "color(X)", "X", 10), vec!["red", "blue"]);
}

#[test]
fn negation_as_failure() {
    let src = "
        single(X, L) :- mem(X, L), \\+ dup(X, L).
        mem(X, [X|_]). mem(X, [_|T]) :- mem(X, T).
        dup(X, [X|T]) :- mem(X, T).
        dup(X, [_|T]) :- dup(X, T).
    ";
    let solutions = all_bindings(src, "single(X, [a, b, a, c])", "X", 10);
    assert_eq!(solutions, vec!["b", "c"]);
}

#[test]
fn structures_unify_deeply() {
    let src = "eq(X, X).";
    assert!(succeeds(src, "eq(f(g(1), [a|T]), f(g(1), [a, b]))"));
    assert!(!succeeds(src, "eq(f(g(1)), f(g(2)))"));
}

#[test]
fn unify_and_notunify_builtins() {
    let src = "yes. test1(X, Y) :- X = Y. test2(X, Y) :- X \\= Y.";
    assert!(succeeds(src, "test1(f(X), f(1))"));
    assert!(succeeds(src, "test2(a, b)"));
    assert!(!succeeds(src, "test2(X, 1)"));
}

#[test]
fn struct_equality_does_not_bind() {
    let src = "yes. same(X, Y) :- X == Y. diff(X, Y) :- X \\== Y.";
    assert!(succeeds(src, "same(f(1), f(1))"));
    assert!(!succeeds(src, "same(X, 1)"));
    assert!(succeeds(src, "diff(X, Y)"));
}

#[test]
fn type_tests() {
    let src = "yes.
        isvar(X) :- var(X).
        isatom(X) :- atom(X).
        isint(X) :- integer(X).
        isnv(X) :- nonvar(X).
    ";
    assert!(succeeds(src, "isvar(X)"));
    assert!(!succeeds(src, "isvar(a)"));
    assert!(succeeds(src, "isatom(foo)"));
    assert!(!succeeds(src, "isatom(1)"));
    assert!(succeeds(src, "isint(42)"));
    assert!(succeeds(src, "isnv(f(X))"));
}

#[test]
fn standard_order_comparison() {
    let src = "yes. lt(X, Y) :- X @< Y.";
    assert!(succeeds(src, "lt(1, a)"));
    assert!(succeeds(src, "lt(a, b)"));
    assert!(succeeds(src, "lt(a, f(1))"));
    assert!(!succeeds(src, "lt(b, a)"));
}

#[test]
fn functor_and_arg() {
    let src = "yes.
        fun(T, F, N) :- functor(T, F, N).
        nth(N, T, A) :- arg(N, T, A).
    ";
    assert_eq!(
        first_binding(src, "fun(foo(a, b), F, N)", "F").as_deref(),
        Some("foo")
    );
    assert_eq!(
        first_binding(src, "fun(T, foo, 2)", "T").as_deref(),
        Some("foo(_G0, _G1)")
    );
    assert_eq!(
        first_binding(src, "nth(2, point(3, 4), A)", "A").as_deref(),
        Some("4")
    );
}

#[test]
fn first_arg_indexing_avoids_choicepoints() {
    // With perfect indexing, a deterministic call leaves no choice points,
    // so only one solution exists even with backtracking requested.
    let solutions = all_bindings(APPEND, "app([1], [2], X)", "X", 10);
    assert_eq!(solutions, vec!["[1, 2]"]);
}

#[test]
fn queens_four() {
    let src = "
        queens(N, Qs) :- range(1, N, Ns), queens(Ns, [], Qs).
        queens([], Qs, Qs).
        queens(UnplacedQs, SafeQs, Qs) :-
            sel(UnplacedQs, UnplacedQs1, Q),
            \\+ attack(Q, SafeQs),
            queens(UnplacedQs1, [Q|SafeQs], Qs).
        attack(X, Xs) :- attack(X, 1, Xs).
        attack(X, N, [Y|_]) :- X is Y + N.
        attack(X, N, [Y|_]) :- X is Y - N.
        attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
        range(N, N, [N]) :- !.
        range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
        sel([X|Xs], Xs, X).
        sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).
    ";
    let solutions = all_bindings(src, "queens(4, Qs)", "Qs", 10);
    assert_eq!(solutions.len(), 2);
    assert!(solutions.contains(&"[3, 1, 4, 2]".to_string()));
    assert!(solutions.contains(&"[2, 4, 1, 3]".to_string()));
}

#[test]
fn write_collects_output() {
    let src = "greet :- write(hello), nl, write([1, 2]).";
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    m.query_str("greet").unwrap().expect("succeeds");
    assert_eq!(m.output, "hello\n[1, 2]");
}

#[test]
fn unknown_predicate_is_an_error() {
    let (compiled, ()) = machine_for("p.");
    let mut m = Machine::new(&compiled);
    assert!(matches!(
        m.query_str("q"),
        Err(RunError::UnknownPredicate { .. })
    ));
}

#[test]
fn arithmetic_on_unbound_is_an_error() {
    let src = "bad(X, Y) :- Y is X + 1.";
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    assert!(matches!(m.query_str("bad(Z, Y)"), Err(RunError::Arith(_))));
}

#[test]
fn step_limit_stops_runaway_recursion() {
    let src = "loop :- loop.";
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    m.set_max_steps(10_000);
    assert!(matches!(m.query_str("loop"), Err(RunError::StepLimit)));
}

#[test]
fn deriv_times10_shape() {
    // The symbolic differentiation benchmark core.
    let src = "
        d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
        d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
        d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
        d(X, X, 1) :- !.
        d(_, _, 0).
    ";
    assert_eq!(
        first_binding(src, "d(x * x, x, D)", "D").as_deref(),
        Some("1 * x + x * 1")
    );
}

#[test]
fn strings_as_code_lists() {
    let src = "len([], 0). len([_|T], N) :- len(T, M), N is M + 1.";
    assert_eq!(
        first_binding(src, "len(\"ABLE\", N)", "N").as_deref(),
        Some("4")
    );
}

#[test]
fn repeated_query_reuses_machine() {
    let (compiled, ()) = machine_for(APPEND);
    let mut m = Machine::new(&compiled);
    for _ in 0..3 {
        let s = m.query_str("app([1], [2], X)").unwrap().unwrap();
        assert_eq!(s.binding_str("X").unwrap(), "[1, 2]");
    }
}

#[test]
fn zero_arity_predicates() {
    let src = "go :- helper. helper.";
    assert!(succeeds(src, "go"));
}

#[test]
fn variable_aliasing_in_query() {
    let src = "eq(X, X).";
    let (compiled, ()) = machine_for(src);
    let mut m = Machine::new(&compiled);
    let sol = m.query_str("eq(f(A, B), f(B, 1))").unwrap().unwrap();
    assert_eq!(sol.binding_str("A").unwrap(), "1");
    assert_eq!(sol.binding_str("B").unwrap(), "1");
}
