//! Derivation reports: the resolved, self-contained view of a
//! provenance-tracked extension table.
//!
//! The table itself records derivations as interned [`PatternId`]s (see
//! [`crate::table::Derivation`]); this module projects them into
//! [`Pattern`]s and display strings at collection time, so a
//! [`DerivationReport`] can outlive the machine, render itself, and be
//! checked without an interner in hand.
//!
//! The report answers two questions per extension-table entry:
//!
//! * **where did it come from** — the clause whose body issued the call,
//!   the fixpoint iteration, and the calling pattern of the parent table
//!   entry;
//! * **why does its success summary hold** — the ordered chain of
//!   clause-solution patterns whose least upper bound the summary is.
//!
//! [`DerivationReport::refold_violation`] replays each chain through the
//! structural [`Pattern::lub`] and confirms it re-derives the stored
//! summary exactly — the invariant testkit oracle #7 enforces.

use crate::table::ExtensionTable;
use absdom::{Pattern, PatternId, SessionInterner};
use awam_obs::Json;
use wam::CompiledProgram;

/// One step of a success-summary derivation, fully resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStep {
    /// Clause index (within the entry's predicate) whose solution
    /// produced the input pattern.
    pub clause: usize,
    /// Fixpoint iteration of the widening.
    pub iter: u64,
    /// The success pattern folded in.
    pub input: Pattern,
    /// The summary after the fold.
    pub result: Pattern,
    /// `input` rendered for display.
    pub input_display: String,
    /// `result` rendered for display.
    pub result_display: String,
}

/// The derivation of one extension-table entry, fully resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryDerivation {
    /// The calling pattern, rendered.
    pub call: String,
    /// The summarized success pattern, rendered (`None`: always fails).
    pub success: Option<String>,
    /// `(caller name/arity, clause index)` of the call that created this
    /// entry; `None` for the entry goal.
    pub origin: Option<(String, usize)>,
    /// Fixpoint iteration in which the entry was created.
    pub created_iter: u64,
    /// Calling pattern of the parent table entry, rendered.
    pub parent_call: Option<String>,
    /// The widening chain, in order.
    pub chain: Vec<ChainStep>,
    /// The stored success pattern (for refolding).
    success_pattern: Option<Pattern>,
}

/// All derivations of one predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredDerivations {
    /// `name/arity`.
    pub name: String,
    /// Predicate id in the compiled program.
    pub pred: usize,
    /// One derivation per extension-table entry, in entry order.
    pub entries: Vec<EntryDerivation>,
}

/// The derivation report of a whole analysis run: every predicate that
/// acquired table entries, with the provenance of each entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationReport {
    /// Per-predicate derivations, in predicate-table order, restricted
    /// to predicates with at least one entry.
    pub predicates: Vec<PredDerivations>,
}

fn display_id(id: PatternId, interner: &SessionInterner, program: &CompiledProgram) -> String {
    interner.resolve(id).display(&program.interner)
}

/// Project a provenance-tracked table into a self-contained report.
/// Entries of a table without provenance get blank derivations; callers
/// gate on [`ExtensionTable::provenance_enabled`] first.
pub(crate) fn collect(
    program: &CompiledProgram,
    table: &ExtensionTable,
    interner: &SessionInterner,
) -> DerivationReport {
    let pred_name =
        |pred: usize| -> String { program.predicates[pred].key.display(&program.interner) };
    let mut predicates = Vec::new();
    for (pred, p) in program.predicates.iter().enumerate() {
        let entries: Vec<EntryDerivation> = table
            .entries(pred)
            .iter()
            .enumerate()
            .map(|(idx, entry)| {
                let d = table.derivation(pred, idx).cloned().unwrap_or_default();
                EntryDerivation {
                    call: display_id(entry.call, interner, program),
                    success: entry.success.map(|s| display_id(s, interner, program)),
                    origin: d.origin.map(|o| (pred_name(o.pred), o.clause)),
                    created_iter: d.created_iter,
                    parent_call: d.parent_call.map(|c| display_id(c, interner, program)),
                    chain: d
                        .lub_steps
                        .iter()
                        .map(|s| ChainStep {
                            clause: s.clause,
                            iter: s.iter,
                            input: interner.resolve(s.input).clone(),
                            result: interner.resolve(s.result).clone(),
                            input_display: display_id(s.input, interner, program),
                            result_display: display_id(s.result, interner, program),
                        })
                        .collect(),
                    success_pattern: entry.success.map(|s| interner.resolve(s).clone()),
                }
            })
            .collect();
        if !entries.is_empty() {
            predicates.push(PredDerivations {
                name: p.key.display(&program.interner),
                pred,
                entries,
            });
        }
    }
    DerivationReport { predicates }
}

impl DerivationReport {
    /// The derivations of predicate `name/arity`, if it was reached.
    pub fn predicate(&self, name: &str, arity: usize) -> Option<&PredDerivations> {
        let key = format!("{name}/{arity}");
        self.predicates.iter().find(|p| p.name == key)
    }

    /// Render every predicate's derivation tree (see
    /// [`PredDerivations::render`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.predicates {
            out.push_str(&p.render());
        }
        out
    }

    /// Check that every entry's recorded chain re-folds, via the
    /// structural [`Pattern::lub`], to the stored success summary.
    /// Returns a description of the first violation, or `None` if all
    /// derivations are consistent.
    pub fn refold_violation(&self) -> Option<String> {
        for p in &self.predicates {
            for (idx, e) in p.entries.iter().enumerate() {
                let Some(expected) = &e.success_pattern else {
                    if !e.chain.is_empty() {
                        return Some(format!(
                            "{} entry {idx}: {} recorded lub steps but no success summary",
                            p.name,
                            e.chain.len()
                        ));
                    }
                    continue;
                };
                if e.chain.is_empty() {
                    return Some(format!(
                        "{} entry {idx}: success summary with an empty lub chain",
                        p.name
                    ));
                }
                let mut acc = e.chain[0].input.clone();
                for (step_no, step) in e.chain.iter().enumerate() {
                    if step_no > 0 {
                        acc = acc.lub(&step.input);
                    }
                    if acc != step.result {
                        return Some(format!(
                            "{} entry {idx} step {step_no}: fold disagrees with recorded result {}",
                            p.name, step.result_display
                        ));
                    }
                }
                if &acc != expected {
                    return Some(format!(
                        "{} entry {idx}: chain does not re-fold to the stored summary {}",
                        p.name,
                        e.success.as_deref().unwrap_or("-")
                    ));
                }
            }
        }
        None
    }

    /// Encode the report as stable JSON (predicate order, entry order,
    /// and chain order all match the table; no map types involved).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "predicates",
            Json::Arr(
                self.predicates
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::Str(p.name.clone())),
                            (
                                "entries",
                                Json::Arr(p.entries.iter().map(entry_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

fn entry_json(e: &EntryDerivation) -> Json {
    Json::obj(vec![
        ("call", Json::Str(e.call.clone())),
        (
            "success",
            e.success
                .as_ref()
                .map_or(Json::Null, |s| Json::Str(s.clone())),
        ),
        (
            "origin",
            e.origin.as_ref().map_or(Json::Null, |(name, clause)| {
                Json::obj(vec![
                    ("pred", Json::Str(name.clone())),
                    ("clause", Json::Int(*clause as i64)),
                ])
            }),
        ),
        ("created_iter", Json::Int(e.created_iter as i64)),
        (
            "parent_call",
            e.parent_call
                .as_ref()
                .map_or(Json::Null, |s| Json::Str(s.clone())),
        ),
        (
            "lub_chain",
            Json::Arr(
                e.chain
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("clause", Json::Int(s.clause as i64)),
                            ("iter", Json::Int(s.iter as i64)),
                            ("input", Json::Str(s.input_display.clone())),
                            ("result", Json::Str(s.result_display.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl PredDerivations {
    /// Render this predicate's derivation tree:
    ///
    /// ```text
    /// app/3
    ///   call (glist, glist, var) -> (glist, glist, glist)
    ///     created: iteration 1, clause 1 of nrev/2, parent call (glist, var)
    ///     lub chain:
    ///       [1] clause 0, iteration 1: (g, g, g) => (g, g, g)
    ///       [2] clause 1, iteration 1: (glist, glist, glist) => (glist, glist, glist)
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.name);
        for e in &self.entries {
            out.push_str(&format!(
                "  call {} -> {}\n",
                e.call,
                e.success.as_deref().unwrap_or("fails")
            ));
            let origin = match &e.origin {
                Some((name, clause)) => format!("clause {clause} of {name}"),
                None => "entry goal".to_owned(),
            };
            out.push_str(&format!(
                "    created: iteration {}, {origin}",
                e.created_iter
            ));
            if let Some(parent) = &e.parent_call {
                out.push_str(&format!(", parent call {parent}"));
            }
            out.push('\n');
            if !e.chain.is_empty() {
                out.push_str("    lub chain:\n");
                for (i, s) in e.chain.iter().enumerate() {
                    out.push_str(&format!(
                        "      [{}] clause {}, iteration {}: {} => {}\n",
                        i + 1,
                        s.clause,
                        s.iter,
                        s.input_display,
                        s.result_display
                    ));
                }
            }
        }
        out
    }
}
