//! Analysis sessions: a persistent extension table shared across queries.
//!
//! The paper's speed story (§6, Table 1) rests on the extension table
//! memoizing `(calling pattern, success pattern)` pairs. A one-shot
//! [`Analyzer::analyze`] call discards that table when it returns; a
//! [`Session`] keeps it, so that
//!
//! * a query whose entry pattern is **subsumed** by an already-memoized
//!   calling pattern is answered straight from the table — zero fixpoint
//!   iterations, zero abstract instructions (a *warm hit*);
//! * any other query runs the fixpoint **seeded** with the accumulated
//!   entries, re-deriving nothing that is already converged (a *cold
//!   run* that still reuses every memoized callee).
//!
//! # Why reuse is sound
//!
//! Every entry in a session's table at rest is part of a converged
//! fixpoint: its success summary over-approximates every concrete
//! execution of its calling pattern. A new entry goal can only *add*
//! entries or grow summaries (the table evolves monotonically upward), so
//! seeded entries never need revisiting — goal-dependent analyses are
//! precisely reusable across entry goals. For a warm hit with entry
//! pattern `e ⊑ c` for a memoized calling pattern `c`, the table is a
//! sound (if possibly less precise) analysis for `e`, because the
//! concretization of `e` is contained in that of `c`. See DESIGN.md for
//! the full argument.
//!
//! # Examples
//!
//! ```
//! use awam_core::Analyzer;
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let analyzer = Analyzer::compile(&program)?;
//! let mut session = analyzer.session();
//! let cold = session.analyze_query("app", &["glist", "glist", "var"])?;
//! let warm = session.analyze_query("app", &["glist", "glist", "var"])?;
//! assert!(cold.iterations > 0);
//! assert_eq!(warm.iterations, 0, "answered from the memo table");
//! assert_eq!(warm.predicates, cold.predicates);
//! assert_eq!(session.stats().session_warm_hits, 1);
//! assert_eq!(session.stats().session_cold_runs, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::analyzer::{Analysis, Analyzer};
use crate::machine::AnalysisError;
use crate::table::ExtensionTable;
use absdom::{Pattern, SessionInterner};
use awam_obs::{Json, SessionStats, Tracer};

/// A query session over one compiled [`Analyzer`]: owns the extension
/// table that persists across queries.
///
/// Sessions are cheap to create ([`Analyzer::session`]) and single-
/// threaded by design; for parallelism, give each worker its own session
/// over the same shared analyzer (that is exactly what
/// [`Analyzer::analyze_batch`] does).
#[derive(Debug)]
pub struct Session<'a> {
    analyzer: &'a Analyzer,
    table: ExtensionTable,
    /// Interner the table's pattern ids resolve through. Persists with
    /// the table (ids are only meaningful alongside it) — its lub/leq
    /// memo caches stay warm across queries, like the table's entries.
    interner: SessionInterner,
    stats: SessionStats,
    /// Effective abstract-instruction budget for this session's cold
    /// runs; inherited from the analyzer, overridable per query
    /// ([`Session::set_step_budget`]).
    step_budget: Option<u64>,
}

/// The owned state of a suspended [`Session`]: the persistent extension
/// table, the interner its ids resolve through, and the accumulated
/// counters — everything except the `&Analyzer` borrow.
///
/// This is what makes warm-session *pooling* possible: a serving layer
/// keeps `SessionParts` (which are `'static` and `Send`) in a pool keyed
/// by tenant and program, and rehydrates a [`Session`] around them with
/// [`Session::resume`] for the duration of one request. The struct is
/// opaque on purpose — its table and interner are only meaningful
/// together, and only against the analyzer they were grown on
/// ([`Session::resume`] asserts nothing, so pairing parts with a
/// different program's analyzer is a logic error the caller must
/// prevent, e.g. by keying the pool on the program hash).
#[derive(Debug)]
pub struct SessionParts {
    table: ExtensionTable,
    interner: SessionInterner,
    stats: SessionStats,
}

impl SessionParts {
    /// The accumulated warm/cold counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of memo entries currently held (across all predicates).
    pub fn memo_len(&self) -> usize {
        self.table.len()
    }

    /// Rough heap footprint estimate in bytes (memo entries plus
    /// session-local interned patterns), used by pool byte budgets.
    pub fn approx_bytes(&self) -> usize {
        let overlay = self.interner.len() - self.interner.base().len();
        self.table.len() * 64 + overlay * 128
    }

    /// Split into the raw table/interner/stats triple (incremental
    /// migration rebuilds the parts against a new analyzer).
    pub(crate) fn into_inner(self) -> (ExtensionTable, SessionInterner, SessionStats) {
        (self.table, self.interner, self.stats)
    }

    /// The persistent extension table (read-only view for the
    /// incremental layer's reachable-core projection).
    pub(crate) fn table(&self) -> &ExtensionTable {
        &self.table
    }

    /// The session interner the table's pattern ids resolve through.
    pub(crate) fn interner(&self) -> &SessionInterner {
        &self.interner
    }

    /// Mutable interner access (interning a probe pattern).
    pub(crate) fn interner_mut(&mut self) -> &mut SessionInterner {
        &mut self.interner
    }

    /// Session-level subsumption probe against the parked table (needs
    /// the interner's leq cache, hence `&mut self`).
    pub(crate) fn find_subsuming(&mut self, pred: usize, call: absdom::PatternId) -> Option<usize> {
        self.table.find_subsuming(pred, call, &mut self.interner)
    }

    /// Reassemble parts from a raw triple (inverse of
    /// [`SessionParts::into_inner`]).
    pub(crate) fn from_inner(
        table: ExtensionTable,
        interner: SessionInterner,
        stats: SessionStats,
    ) -> SessionParts {
        SessionParts {
            table,
            interner,
            stats,
        }
    }
}

impl<'a> Session<'a> {
    /// Open a session with an empty memo table.
    pub fn new(analyzer: &'a Analyzer) -> Session<'a> {
        Session {
            table: fresh_table(analyzer),
            interner: analyzer.new_session_interner(),
            stats: SessionStats::default(),
            step_budget: analyzer.configured_step_budget(),
            analyzer,
        }
    }

    /// Rehydrate a session from [`SessionParts`] previously suspended
    /// with [`Session::into_parts`]. The parts must have been grown on
    /// an analyzer for the *same compiled program* (same configuration),
    /// or the resolved results will be meaningless.
    pub fn resume(analyzer: &'a Analyzer, parts: SessionParts) -> Session<'a> {
        Session {
            table: parts.table,
            interner: parts.interner,
            stats: parts.stats,
            step_budget: analyzer.configured_step_budget(),
            analyzer,
        }
    }

    /// Suspend this session into its owned parts (dropping the analyzer
    /// borrow) so it can be parked in a pool and later rehydrated with
    /// [`Session::resume`].
    pub fn into_parts(self) -> SessionParts {
        SessionParts {
            table: self.table,
            interner: self.interner,
            stats: self.stats,
        }
    }

    /// Override the abstract-instruction budget for this session's
    /// subsequent cold runs (`None` = unbounded). Warm hits never spend
    /// instructions, so the budget only gates fixpoint work.
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        self.step_budget = budget;
    }

    /// The analyzer this session queries.
    pub fn analyzer(&self) -> &'a Analyzer {
        self.analyzer
    }

    /// Warm/cold counters accumulated by this session.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of memo entries currently held (across all predicates).
    pub fn memo_len(&self) -> usize {
        self.table.len()
    }

    /// Pattern-interner counters accumulated by this session (dedup
    /// hits/misses, lub/leq memo-cache behavior, bytes saved).
    pub fn intern_stats(&self) -> &awam_obs::InternStats {
        self.interner.stats()
    }

    /// The session counters as one JSON document (the `SessionStats`
    /// fields plus the current memo-table size and interner counters).
    pub fn stats_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.stats.to_json() else {
            unreachable!("SessionStats::to_json returns an object");
        };
        pairs.push(("memo_entries".to_owned(), Json::Int(self.memo_len() as i64)));
        pairs.push(("interner".to_owned(), self.interner.stats().to_json()));
        Json::Obj(pairs)
    }

    /// Drop all memoized entries, interned patterns, and counters, as if
    /// freshly created.
    pub fn reset(&mut self) {
        self.table = fresh_table(self.analyzer);
        self.interner = self.analyzer.new_session_interner();
        self.stats = SessionStats::default();
    }

    /// Analyze from `name` with the given entry calling pattern,
    /// consulting and extending the persistent table.
    ///
    /// A warm hit returns an [`Analysis`] with `iterations == 0` whose
    /// `predicates` reflect the session's whole accumulated table (a
    /// sound over-approximation for the queried goal). A cold run seeds
    /// the fixpoint with the accumulated table and persists the grown
    /// table for the next query.
    ///
    /// # Errors
    ///
    /// Same as [`Analyzer::analyze`]. After a resource-bound error the
    /// memo table is discarded (a partially-explored table must not serve
    /// later queries).
    pub fn analyze(&mut self, name: &str, entry: &Pattern) -> Result<Analysis, AnalysisError> {
        self.analyze_with(name, entry, None)
    }

    /// Like [`Session::analyze`], but streaming machine events into
    /// `tracer` (warm hits emit no events: no machine runs).
    ///
    /// # Errors
    ///
    /// Same as [`Session::analyze`].
    pub fn analyze_traced(
        &mut self,
        name: &str,
        entry: &Pattern,
        tracer: &mut dyn Tracer,
    ) -> Result<Analysis, AnalysisError> {
        self.analyze_with(name, entry, Some(tracer))
    }

    /// Analyze with an entry pattern given as spec strings (see
    /// [`Pattern::from_spec`]).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BadSpec`] for unknown specs, plus everything
    /// [`Session::analyze`] returns.
    pub fn analyze_query(&mut self, name: &str, specs: &[&str]) -> Result<Analysis, AnalysisError> {
        let entry =
            Pattern::from_spec(specs).ok_or_else(|| AnalysisError::BadSpec(specs.join(", ")))?;
        self.analyze(name, &entry)
    }

    /// Apply a clause-level edit to this session's program and carry the
    /// memo table across: entries that transitively depend on a changed
    /// predicate are invalidated and re-derived by a seeded re-fixpoint,
    /// everything else survives untouched. Consumes the session (the new
    /// program needs a new compiled analyzer, which the borrowed `'a`
    /// analyzer cannot become) and returns an owning
    /// [`crate::incremental::Workspace`] positioned on the edited
    /// program.
    ///
    /// `source` must be the source text this session's analyzer was
    /// compiled from — the same pairing contract as [`Session::resume`].
    ///
    /// # Errors
    ///
    /// [`crate::incremental::UpdateError`] when the edit does not apply,
    /// the edited program fails to parse or compile, or the re-fixpoint
    /// hits a resource bound.
    pub fn update_program(
        self,
        source: &str,
        edit: &crate::incremental::ProgramEdit,
    ) -> Result<crate::incremental::Workspace, crate::incremental::UpdateError> {
        let builder = self.analyzer.config_builder();
        let budget = self.step_budget;
        let parts = self.into_parts();
        let mut workspace =
            crate::incremental::Workspace::resume(builder, source, parts, budget)?;
        workspace.apply_edit(edit)?;
        Ok(workspace)
    }

    fn analyze_with(
        &mut self,
        name: &str,
        entry: &Pattern,
        tracer: Option<&mut dyn Tracer>,
    ) -> Result<Analysis, AnalysisError> {
        let (pred, entry) = self.analyzer.resolve_entry(name, entry)?;
        let entry_id = self.interner.intern(entry.clone());
        if self
            .table
            .find_subsuming(pred, entry_id, &mut self.interner)
            .is_some()
        {
            self.stats.session_warm_hits += 1;
            return Ok(self
                .analyzer
                .analysis_from_table(&self.table, &self.interner));
        }
        self.stats.session_cold_runs += 1;
        let before = self.table.len() as u64;
        self.stats.entries_reused += before;
        let seed_table = std::mem::replace(&mut self.table, fresh_table(self.analyzer));
        let seed_interner =
            std::mem::replace(&mut self.interner, self.analyzer.new_session_interner());
        match self.analyzer.run_fixpoint(
            pred,
            &entry,
            Some((seed_table, seed_interner)),
            tracer,
            self.step_budget,
        ) {
            Ok((analysis, table, interner)) => {
                self.stats.entries_created += (table.len() as u64).saturating_sub(before);
                self.table = table;
                self.interner = interner;
                Ok(analysis)
            }
            // The replacement table/interner installed above are already
            // fresh, so the partially-explored seed is dropped with the
            // error.
            Err(e) => Err(e),
        }
    }
}

fn fresh_table(analyzer: &Analyzer) -> ExtensionTable {
    let mut table = ExtensionTable::new(analyzer.program().predicates.len(), analyzer.et_impl());
    if analyzer.provenance_enabled() {
        table.enable_provenance();
    }
    table
}
