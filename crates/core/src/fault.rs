//! Fault injection for the correctness harness.
//!
//! The fuzz harness (`awam-testkit`, `awam fuzz`) needs to demonstrate
//! that its oracle matrix actually catches analyzer bugs, not just that
//! healthy code passes. This module provides process-global switches
//! that plant a known bug in a hot invariant; the harness turns one on,
//! runs a campaign, and asserts the oracles fail and shrink the
//! counterexample.
//!
//! Faults are **off** by default and exist only for the harness — never
//! enable one outside a dedicated fuzz/test process. They are globals
//! (not per-analyzer knobs) on purpose: the point is to corrupt the
//! analyzer *as deployed*, behind its public API, exactly the way a real
//! regression would.

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`crate::ExtensionTable::update_success`] never widens an
/// existing success summary: the first success pattern recorded for a
/// calling pattern is frozen and later lubs are skipped. This breaks the
/// monotone-accumulation invariant of §6's extension table and yields
/// unsound (too narrow) summaries.
static SKIP_LUB: AtomicBool = AtomicBool::new(false);

/// Enable or disable the skip-lub fault (see [`skip_lub`]).
pub fn set_skip_lub(on: bool) {
    SKIP_LUB.store(on, Ordering::Relaxed);
}

/// Whether the skip-lub fault is active.
pub fn skip_lub() -> bool {
    SKIP_LUB.load(Ordering::Relaxed)
}

/// Parse a fault name from the CLI surface and enable it.
///
/// # Errors
///
/// Returns the unknown name back for error reporting.
pub fn enable(name: &str) -> Result<(), String> {
    match name {
        "skip-lub" => {
            set_skip_lub(true);
            Ok(())
        }
        other => Err(format!("unknown fault `{other}` (available: skip-lub)")),
    }
}
