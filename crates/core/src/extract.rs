//! Pattern extraction (heap → [`Pattern`]) and materialization
//! (pattern → heap).
//!
//! Extraction is the `abstract(X, Xα)` step of the transformed program in
//! §5: the argument registers are abstracted, to the term-depth limit `k`,
//! into a canonical calling pattern. Aliasing among the arguments is
//! captured by mapping each *open* (instantiable) or non-ground compound
//! heap cell to a single pattern node.
//!
//! Materialization is the inverse: a fresh set of heap cells whose shape
//! and sharing mirror the pattern — used both to analyze a callee
//! independently of its caller and to apply a memoized success pattern at
//! a call site.

use crate::acell::ACell;
use absdom::{AbsLeaf, NodeId, PNode, Pattern, PatternId, SessionInterner};

/// Follow reference chains; returns the representative cell and its heap
/// address when it has one (open cells and compounds always do). This is
/// the shared [`awam_exec::deref`]: `Abs`/`AbsList` cells are not
/// references, so the chase stops on them with their address reported.
pub fn deref(heap: &[ACell], cell: ACell) -> (ACell, Option<usize>) {
    awam_exec::deref(heap, cell)
}

/// Extract the calling/success pattern of `args`, limited to `depth_k`.
pub fn extract(heap: &[ACell], args: &[ACell], depth_k: usize) -> Pattern {
    let mut scratch = ExtractScratch::default();
    extract_with(heap, args, depth_k, &mut scratch);
    scratch.out
}

/// Reusable buffers for [`extract_with`]: every vector an extraction
/// walks through, including the output pattern itself. The abstract
/// machine extracts a pattern per consult and per summary update; holding
/// one scratch per machine keeps that path off the allocator entirely
/// (pair with [`SessionInterner::intern_ref`], which clones the output
/// only when the arena has never seen it).
#[derive(Debug, Default)]
pub struct ExtractScratch {
    map: AddrMap,
    pair_map: AddrMap,
    open: Vec<usize>,
    open_lists: Vec<usize>,
    visiting: Vec<usize>,
    /// Retired `Struct` argument vectors, harvested from the previous
    /// output before it is cleared and reissued to new struct/cons nodes.
    /// List-heavy programs build one such vector per cons cell per
    /// extraction; recycling them is the difference between one
    /// malloc/free pair per cons and none.
    args_pool: Vec<Vec<NodeId>>,
    out: Pattern,
}

/// Upper bound on pooled argument vectors (a backstop so one huge
/// pattern cannot pin memory forever; typical patterns stay far below).
const ARGS_POOL_CAP: usize = 4096;

/// A generation-stamped dense heap-address → node map: O(1) probe and
/// insert, O(1) reset (bumping the generation invalidates every stale
/// entry at once). The linear pair-vector it replaced was quadratic in
/// pattern size, which showed up on struct-heavy benchmarks.
#[derive(Debug, Default)]
pub(crate) struct AddrMap {
    /// `slots[addr] = (generation, node)`; a stale generation means empty.
    slots: Vec<(u32, NodeId)>,
    gen: u32,
}

impl AddrMap {
    /// Start a new extraction over a heap of `len` cells.
    pub(crate) fn begin(&mut self, len: usize) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation counter wrapped: stamps from the previous epoch
            // could alias, so wipe and restart.
            self.slots.clear();
            self.gen = 1;
        }
        if self.slots.len() < len {
            self.slots.resize(len, (0, 0));
        }
    }

    pub(crate) fn get(&self, addr: usize) -> Option<NodeId> {
        match self.slots.get(addr) {
            Some(&(gen, id)) if gen == self.gen => Some(id),
            _ => None,
        }
    }

    pub(crate) fn insert(&mut self, addr: usize, id: NodeId) {
        self.slots[addr] = (self.gen, id);
    }
}

/// [`extract`] through caller-provided scratch buffers; the canonical
/// pattern is left in the scratch and returned by reference.
pub fn extract_with<'s>(
    heap: &[ACell],
    args: &[ACell],
    depth_k: usize,
    scratch: &'s mut ExtractScratch,
) -> &'s Pattern {
    let (mut nodes, mut roots) = std::mem::take(&mut scratch.out).into_parts();
    for node in nodes.drain(..) {
        if scratch.args_pool.len() == ARGS_POOL_CAP {
            break;
        }
        if let PNode::Struct(_, mut args) = node {
            args.clear();
            scratch.args_pool.push(args);
        }
    }
    nodes.clear();
    roots.clear();
    scratch.map.begin(heap.len());
    scratch.pair_map.begin(heap.len());
    scratch.open.clear();
    scratch.open_lists.clear();
    let mut ex = Extractor {
        heap,
        depth_k,
        nodes,
        map: std::mem::take(&mut scratch.map),
        pair_map: std::mem::take(&mut scratch.pair_map),
        open: std::mem::take(&mut scratch.open),
        open_lists: std::mem::take(&mut scratch.open_lists),
        visiting: std::mem::take(&mut scratch.visiting),
        args_pool: std::mem::take(&mut scratch.args_pool),
    };
    roots.extend(args.iter().map(|&a| ex.node(a, 0)));
    scratch.map = ex.map;
    scratch.pair_map = ex.pair_map;
    scratch.open = ex.open;
    scratch.open_lists = ex.open_lists;
    scratch.visiting = ex.visiting;
    scratch.args_pool = ex.args_pool;
    // The extractor emits canonical form directly (pre-order numbering,
    // ground subgraphs unshared), so the canonicalization pass is skipped.
    scratch.out = Pattern::from_canonical(ex.nodes, roots);
    &scratch.out
}

/// Extract the pattern of `args` and intern it in one step — the
/// hash-consed construction path the abstract machine uses: the pattern
/// graph is built once and deduplicated against the arena immediately,
/// so every later comparison is an integer compare on the returned id.
pub fn extract_interned(
    heap: &[ACell],
    args: &[ACell],
    depth_k: usize,
    interner: &mut SessionInterner,
) -> PatternId {
    interner.intern(extract(heap, args, depth_k))
}

struct Extractor<'h> {
    heap: &'h [ACell],
    depth_k: usize,
    nodes: Vec<PNode>,
    /// Open-cell heap address → node, for sharing-preserving extraction.
    map: AddrMap,
    /// Compound payload address → node (cons pairs and structs).
    pair_map: AddrMap,
    /// Payload addresses of `Lis`/`Str` compounds currently being
    /// extracted (the path from the roots to here). A sharing hit on one
    /// of these is a back-edge — a cyclic heap term (occurs-check-free
    /// unification can build them) — and must be summarized, not shared:
    /// patterns are acyclic by construction. Kept separate from
    /// [`Self::open_lists`] because payload addresses and cell addresses
    /// are different namespaces (a var can live in-place in a car slot).
    open: Vec<usize>,
    /// Cell addresses of `AbsList`s currently being extracted.
    open_lists: Vec<usize>,
    /// Scratch cycle-guard for [`Self::summarize`] walks (summaries run
    /// on every sharing check and depth cut; reallocating the guard per
    /// walk showed up in profiles).
    visiting: Vec<usize>,
    /// Retired `Struct` argument vectors; see [`ExtractScratch::args_pool`].
    args_pool: Vec<Vec<NodeId>>,
}

impl Extractor<'_> {
    fn push(&mut self, node: PNode) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// An empty argument vector, recycled from the pool when available.
    fn take_args(&mut self) -> Vec<NodeId> {
        self.args_pool.pop().unwrap_or_default()
    }

    /// [`Self::summarize`] through the reusable scratch guard.
    fn summarize_scratch(&mut self, cell: ACell) -> AbsLeaf {
        let mut visiting = std::mem::take(&mut self.visiting);
        visiting.clear();
        let leaf = self.summarize(cell, &mut visiting);
        self.visiting = visiting;
        leaf
    }

    /// Emit `cell`'s summary leaf — the depth cut, also used to break
    /// back-edges of cyclic heap terms.
    fn summary_node(&mut self, cell: ACell) -> NodeId {
        let leaf = self.summarize_scratch(cell);
        // A summarized subterm loses its aliasing links, so it may not
        // claim definite freeness (see DESIGN.md §3.4).
        let leaf = if leaf == AbsLeaf::Var {
            AbsLeaf::Any
        } else {
            leaf
        };
        self.push(PNode::Leaf(leaf))
    }

    fn node(&mut self, cell: ACell, depth: usize) -> NodeId {
        let (cell, addr) = deref(self.heap, cell);
        // Sharing identity: open cells by their own address, compounds by
        // their payload address. Ground subgraphs are never shared (their
        // sharing carries no dataflow information), which keeps the output
        // canonical.
        match cell {
            ACell::Ref(_) | ACell::Abs(_) | ACell::AbsList(_) => {
                if let Some(a) = addr {
                    if let Some(n) = self.map.get(a) {
                        // A `Ref`/`Abs` hit is always a cross-edge (leaves
                        // have no descendants); only an `AbsList` can be
                        // an in-progress ancestor.
                        if matches!(cell, ACell::AbsList(_)) && self.open_lists.contains(&a) {
                            return self.summary_node(cell);
                        }
                        // Ground cells are never shared (checked lazily:
                        // hits are rare, groundness walks are not free).
                        if !self.summarize_scratch(cell).is_ground() {
                            return n;
                        }
                    }
                }
            }
            ACell::Lis(p) | ACell::Str(p) => {
                if let Some(n) = self.pair_map.get(p) {
                    if self.open.contains(&p) {
                        return self.summary_node(cell);
                    }
                    if !self.summarize_scratch(cell).is_ground() {
                        return n;
                    }
                }
            }
            _ => {}
        }
        if depth >= self.depth_k {
            return self.summary_node(cell);
        }
        match cell {
            ACell::Ref(a) => {
                let id = self.push(PNode::Leaf(AbsLeaf::Var));
                self.map.insert(a, id);
                id
            }
            ACell::Abs(l) => {
                let id = self.push(PNode::Leaf(l));
                if let Some(a) = addr {
                    if !l.is_ground() {
                        self.map.insert(a, id);
                    }
                }
                id
            }
            ACell::AbsList(e) => {
                let id = self.push(PNode::Leaf(AbsLeaf::Any)); // placeholder
                if let Some(a) = addr {
                    self.map.insert(a, id);
                }
                // Element subgraphs are unaliased type descriptions;
                // extract them fresh below the list node.
                if let Some(a) = addr {
                    self.open_lists.push(a);
                }
                let elem = self.node(ACell::Ref(e), depth + 1);
                if addr.is_some() {
                    self.open_lists.pop();
                }
                self.nodes[id] = PNode::List(elem);
                id
            }
            ACell::Con(s) => self.push(PNode::Atom(s)),
            ACell::Int(i) => self.push(PNode::Int(i)),
            ACell::Lis(p) => {
                let id = self.push(PNode::Leaf(AbsLeaf::Any)); // placeholder
                self.pair_map.insert(p, id);
                self.open.push(p);
                let car = self.node(ACell::Ref(p), depth + 1);
                let cdr = self.node(ACell::Ref(p + 1), depth + 1);
                self.open.pop();
                let mut args = self.take_args();
                args.push(car);
                args.push(cdr);
                self.nodes[id] = PNode::Struct(absdom::dot_symbol(), args);
                id
            }
            ACell::Str(p) => {
                let id = self.push(PNode::Leaf(AbsLeaf::Any)); // placeholder
                self.pair_map.insert(p, id);
                self.open.push(p);
                let ACell::Fun(f, n) = self.heap[p] else {
                    unreachable!("Str points at Fun");
                };
                let mut args = self.take_args();
                for i in 0..n as usize {
                    let child = self.node(ACell::Ref(p + 1 + i), depth + 1);
                    args.push(child);
                }
                self.open.pop();
                self.nodes[id] = PNode::Struct(f, args);
                id
            }
            ACell::Fun(..) => unreachable!("bare functor cell"),
        }
    }

    /// Primary approximation of a heap term (used at the depth cut).
    fn summarize(&self, cell: ACell, visiting: &mut Vec<usize>) -> AbsLeaf {
        let (cell, _) = deref(self.heap, cell);
        match cell {
            ACell::Ref(_) => AbsLeaf::Var,
            ACell::Abs(l) => l,
            ACell::AbsList(e) => {
                if visiting.contains(&e) {
                    return AbsLeaf::NonVar;
                }
                visiting.push(e);
                let ground = self.summarize(ACell::Ref(e), visiting).is_ground();
                visiting.pop();
                if ground {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::NonVar
                }
            }
            ACell::Con(_) | ACell::Int(_) => AbsLeaf::Ground,
            ACell::Lis(p) => self.summarize_compound(p, 2, p, visiting),
            ACell::Str(p) => {
                let ACell::Fun(_, n) = self.heap[p] else {
                    unreachable!()
                };
                self.summarize_compound(p + 1, n as usize, p, visiting)
            }
            ACell::Fun(..) => unreachable!(),
        }
    }

    /// Summarize a compound whose children live in the contiguous cell
    /// range `start..start + count` (cons pairs and struct argument
    /// blocks both do — which is what keeps this walk allocation-free).
    fn summarize_compound(
        &self,
        start: usize,
        count: usize,
        mark: usize,
        visiting: &mut Vec<usize>,
    ) -> AbsLeaf {
        if visiting.contains(&mark) {
            // Cyclic term: certainly nonvar; groundness undecidable here,
            // so answer conservatively.
            return AbsLeaf::NonVar;
        }
        visiting.push(mark);
        let all_ground =
            (start..start + count).all(|a| self.summarize(ACell::Ref(a), visiting).is_ground());
        visiting.pop();
        if all_ground {
            AbsLeaf::Ground
        } else {
            AbsLeaf::NonVar
        }
    }
}

/// Materialize `pattern` as fresh heap cells; returns one cell per root.
/// Sharing in the pattern becomes sharing on the heap.
pub fn materialize(heap: &mut Vec<ACell>, pattern: &Pattern) -> Vec<ACell> {
    materialize_with(heap, pattern, &mut Vec::new())
}

/// [`materialize`] with a caller-provided memo scratch, so hot callers
/// (one materialization per clause exploration and per consult hit)
/// reuse one allocation instead of building a fresh memo each time.
pub fn materialize_with(
    heap: &mut Vec<ACell>,
    pattern: &Pattern,
    done: &mut Vec<Option<ACell>>,
) -> Vec<ACell> {
    let mut out = Vec::new();
    materialize_into(heap, pattern, done, &mut out);
    out
}

/// [`materialize_with`] writing the root cells into `out` (cleared
/// first) — the fully scratch-backed form the abstract machine uses, so
/// applying a memoized success pattern allocates nothing.
pub fn materialize_into(
    heap: &mut Vec<ACell>,
    pattern: &Pattern,
    done: &mut Vec<Option<ACell>>,
    out: &mut Vec<ACell>,
) {
    done.clear();
    done.resize(pattern.nodes().len(), None);
    out.clear();
    for i in 0..pattern.arity() {
        let cell = materialize_node(heap, pattern, pattern.root(i), done);
        out.push(cell);
    }
}

/// Materialize a single node subgraph (fresh cells, memoized sharing).
pub fn materialize_node(
    heap: &mut Vec<ACell>,
    pattern: &Pattern,
    id: NodeId,
    done: &mut Vec<Option<ACell>>,
) -> ACell {
    if let Some(c) = done[id] {
        return c;
    }
    let cell = match pattern.node(id) {
        PNode::Leaf(AbsLeaf::Var) => {
            let a = heap.len();
            heap.push(ACell::Ref(a));
            ACell::Ref(a)
        }
        PNode::Leaf(l) => {
            let a = heap.len();
            heap.push(ACell::Abs(*l));
            ACell::Ref(a)
        }
        PNode::Int(i) => ACell::Int(*i),
        PNode::Atom(s) => ACell::Con(*s),
        PNode::List(e) => {
            // Memoize the list cell BEFORE the element to cut cycles.
            let a = heap.len();
            heap.push(ACell::AbsList(usize::MAX)); // patched below
            done[id] = Some(ACell::Ref(a));
            let elem = materialize_node(heap, pattern, *e, done);
            let elem_addr = match elem {
                ACell::Ref(ea) => ea,
                other => {
                    let ea = heap.len();
                    heap.push(other);
                    ea
                }
            };
            heap[a] = ACell::AbsList(elem_addr);
            return ACell::Ref(a);
        }
        PNode::Struct(f, args) => {
            if absdom::is_dot_symbol(*f) && args.len() == 2 {
                let p = heap.len();
                heap.push(ACell::Ref(p));
                heap.push(ACell::Ref(p + 1));
                done[id] = Some(ACell::Lis(p));
                let car = materialize_node(heap, pattern, args[0], done);
                let cdr = materialize_node(heap, pattern, args[1], done);
                heap[p] = normalize_store(heap, p, car);
                heap[p + 1] = normalize_store(heap, p + 1, cdr);
                return ACell::Lis(p);
            }
            let p = heap.len();
            heap.push(ACell::Fun(*f, args.len() as u16));
            for i in 0..args.len() {
                let a = p + 1 + i;
                heap.push(ACell::Ref(a));
            }
            done[id] = Some(ACell::Str(p));
            for (i, &argid) in args.iter().enumerate() {
                let c = materialize_node(heap, pattern, argid, done);
                heap[p + 1 + i] = normalize_store(heap, p + 1 + i, c);
            }
            return ACell::Str(p);
        }
    };
    done[id] = Some(cell);
    cell
}

/// Storing a cell into a slot must not create a self-reference.
fn normalize_store(_heap: &[ACell], _slot: usize, cell: ACell) -> ACell {
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(heap: &mut Vec<ACell>, l: AbsLeaf) -> ACell {
        let a = heap.len();
        heap.push(ACell::Abs(l));
        ACell::Ref(a)
    }

    #[test]
    fn extract_simple_leaves() {
        let mut heap = Vec::new();
        let g = leaf(&mut heap, AbsLeaf::Ground);
        let a = heap.len();
        heap.push(ACell::Ref(a));
        let p = extract(&heap, &[g, ACell::Ref(a), ACell::Int(3)], 4);
        assert_eq!(p, Pattern::from_spec(&["g", "var", "3"]).unwrap());
    }

    #[test]
    fn extract_preserves_aliasing() {
        let mut heap = Vec::new();
        let a = heap.len();
        heap.push(ACell::Ref(a));
        let p = extract(&heap, &[ACell::Ref(a), ACell::Ref(a)], 4);
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        assert_eq!(p, shared);
    }

    #[test]
    fn extract_lists() {
        let mut heap = Vec::new();
        let e = heap.len();
        heap.push(ACell::Abs(AbsLeaf::Ground));
        let l = heap.len();
        heap.push(ACell::AbsList(e));
        let p = extract(&heap, &[ACell::Ref(l)], 4);
        assert_eq!(p, Pattern::from_spec(&["glist"]).unwrap());
    }

    #[test]
    fn extract_cuts_at_depth() {
        // f(f(f(f(a)))) with k=2 → struct(f, struct-summarized).
        let mut heap = Vec::new();
        let mut inner = ACell::Con(absdom::nil_symbol());
        let f = prolog_syntax::Interner::new().intern("f");
        for _ in 0..4 {
            let p = heap.len();
            heap.push(ACell::Fun(f, 1));
            heap.push(inner);
            inner = ACell::Str(p);
        }
        let p2 = extract(&heap, &[inner], 2);
        // Depth 0: f(·); depth 1: its arg; depth 2: cut → ground leaf.
        let expected_nodes = vec![
            PNode::Struct(f, vec![1]),
            PNode::Struct(f, vec![2]),
            PNode::Leaf(AbsLeaf::Ground),
        ];
        assert_eq!(p2, Pattern::new(expected_nodes, vec![0]));
    }

    #[test]
    fn summarized_var_weakens_to_any() {
        // [X] (a one-element list holding a var) cut at depth 1 keeps the
        // cons at depth 0 and summarizes X (depth 1) to any, not var.
        let mut heap = Vec::new();
        let x = heap.len();
        heap.push(ACell::Ref(x));
        let p = heap.len();
        heap.push(ACell::Ref(x));
        heap.push(ACell::Con(absdom::nil_symbol()));
        let pat = extract(&heap, &[ACell::Lis(p)], 1);
        let dot = absdom::dot_symbol();
        let expected = Pattern::new(
            vec![
                PNode::Struct(dot, vec![1, 2]),
                PNode::Leaf(AbsLeaf::Any),
                PNode::Leaf(AbsLeaf::Ground),
            ],
            vec![0],
        );
        assert_eq!(pat, expected);
    }

    #[test]
    fn cyclic_term_extracts_to_summary() {
        // f(X) = X without an occurs check leaves heap[x] = Str(p) with
        // the struct's argument pointing back at x. The back-edge must be
        // summarized (patterns are acyclic), not turned into a cyclic
        // pattern graph — that used to overflow every recursive pattern
        // walk downstream.
        let f = prolog_syntax::Interner::new().intern("f");
        let mut heap = Vec::new();
        let p = heap.len();
        heap.push(ACell::Fun(f, 1));
        heap.push(ACell::Ref(2));
        let x = heap.len();
        heap.push(ACell::Str(p));
        heap[p + 1] = ACell::Ref(x);
        let pat = extract(&heap, &[ACell::Ref(x)], 4);
        let expected = Pattern::new(
            vec![PNode::Struct(f, vec![1]), PNode::Leaf(AbsLeaf::NonVar)],
            vec![0],
        );
        assert_eq!(pat, expected);
        // The allocation-free matcher stays in lockstep on the same heap.
        assert!(crate::matcher::matches(&heap, &[ACell::Ref(x)], 4, &pat));
    }

    #[test]
    fn in_place_var_shares_across_compounds() {
        // A cons whose car slot *is* the unbound variable (heap[p] =
        // Ref(p)) makes the var's cell address collide with the pair's
        // payload address. A second occurrence of the var under another
        // compound must still share — the back-edge cut only applies to
        // compound ancestry, not to leaf cells that happen to reuse the
        // address.
        let mut heap = Vec::new();
        let p = heap.len();
        heap.push(ACell::Ref(p)); // car: unbound var, in place
        heap.push(ACell::Con(absdom::nil_symbol())); // cdr: []
        let q = heap.len();
        heap.push(ACell::Lis(p)); // car: the inner cons
        heap.push(ACell::Con(absdom::nil_symbol())); // cdr: []
        let pat = extract(&heap, &[ACell::Lis(p), ACell::Lis(q)], 4);
        let dot = absdom::dot_symbol();
        let expected = Pattern::new(
            vec![
                PNode::Struct(dot, vec![1, 2]),
                PNode::Leaf(AbsLeaf::Var),
                PNode::Atom(absdom::nil_symbol()),
                PNode::Struct(dot, vec![0, 4]),
                PNode::Atom(absdom::nil_symbol()),
            ],
            vec![0, 3],
        );
        assert_eq!(pat, expected);
        assert!(crate::matcher::matches(
            &heap,
            &[ACell::Lis(p), ACell::Lis(q)],
            4,
            &pat
        ));
    }

    #[test]
    fn materialize_round_trips() {
        for spec in [
            vec!["any", "var"],
            vec!["glist", "g"],
            vec!["atom", "int", "list(list(any))"],
            vec!["5", "nil"],
        ] {
            let p = Pattern::from_spec(&spec).unwrap();
            let mut heap = Vec::new();
            let cells = materialize(&mut heap, &p);
            let back = extract(&heap, &cells, 6);
            assert_eq!(back, p, "round-trip failed for {spec:?}");
        }
    }

    #[test]
    fn materialize_preserves_sharing() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Any)], vec![0, 0]);
        let mut heap = Vec::new();
        let cells = materialize(&mut heap, &shared);
        let (_, a0) = deref(&heap, cells[0]);
        let (_, a1) = deref(&heap, cells[1]);
        assert_eq!(a0, a1, "shared node materializes to one cell");
        let back = extract(&heap, &cells, 4);
        assert_eq!(back, shared);
    }

    #[test]
    fn materialize_concrete_structures() {
        let f = prolog_syntax::Interner::new().intern("f");
        let p = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Struct(f, vec![0])],
            vec![1, 0],
        );
        let mut heap = Vec::new();
        let cells = materialize(&mut heap, &p);
        // arg0 = f(X), arg1 = X with the same X.
        let (c0, _) = deref(&heap, cells[0]);
        let ACell::Str(sp) = c0 else {
            panic!("expected struct")
        };
        let (_, inner_addr) = deref(&heap, ACell::Ref(sp + 1));
        let (_, arg1_addr) = deref(&heap, cells[1]);
        assert_eq!(inner_addr, arg1_addr);
    }
}
