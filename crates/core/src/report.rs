//! Human-readable reports: modes, types, and aliasing derived from the
//! extension table.

use crate::analyzer::{Analysis, PredAnalysis};
use absdom::{AbsLeaf, PNode, Pattern};
use prolog_syntax::Interner;
use std::fmt;

/// The derived mode of one argument position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgMode {
    /// Ground at every call (`+` in classic mode syntax).
    In,
    /// Free at every call, ground at every successful return (`-` with
    /// ground output).
    OutGround,
    /// Free at every call, possibly non-ground at return.
    Out,
    /// Non-variable (but not necessarily ground) at every call.
    NonVarIn,
    /// Anything else.
    Unknown,
}

impl fmt::Display for ArgMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArgMode::In => "+",
            ArgMode::OutGround => "-g",
            ArgMode::Out => "-",
            ArgMode::NonVarIn => "+nv",
            ArgMode::Unknown => "?",
        };
        f.write_str(s)
    }
}

/// Derive per-argument modes from all (call, success) entries of a
/// predicate.
pub fn derive_modes(pred: &PredAnalysis) -> Vec<ArgMode> {
    (0..pred.arity)
        .map(|i| {
            let mut call_ground = true;
            let mut call_nonvar = true;
            let mut call_var = true;
            let mut succ_ground = true;
            for (call, success) in &pred.entries {
                let c = call.leaf_approx(call.root(i));
                call_ground &= call.node_is_ground(call.root(i));
                call_nonvar &= c != AbsLeaf::Var && c != AbsLeaf::Any;
                call_var &= c == AbsLeaf::Var;
                if let Some(s) = success {
                    succ_ground &= s.node_is_ground(s.root(i))
                }
            }
            if call_ground {
                ArgMode::In
            } else if call_var && succ_ground {
                ArgMode::OutGround
            } else if call_var {
                ArgMode::Out
            } else if call_nonvar {
                ArgMode::NonVarIn
            } else {
                ArgMode::Unknown
            }
        })
        .collect()
}

/// Aliasing pairs (argument indices that are definitely aliased) in any
/// calling or success pattern of the predicate.
pub fn aliased_arg_pairs(pred: &PredAnalysis) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (call, success) in &pred.entries {
        collect_aliases(call, &mut pairs);
        if let Some(s) = success {
            collect_aliases(s, &mut pairs);
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn collect_aliases(p: &Pattern, pairs: &mut Vec<(usize, usize)>) {
    for i in 0..p.arity() {
        for j in i + 1..p.arity() {
            if p.root(i) == p.root(j) {
                pairs.push((i, j));
            }
        }
    }
}

/// Infers a one-line type description per argument from the success
/// summary (e.g. `glist`, `int`, `nv`).
pub fn success_types(pred: &PredAnalysis, interner: &Interner) -> Vec<String> {
    match pred.success_summary() {
        None => vec!["fails".to_owned(); pred.arity],
        Some(s) => (0..pred.arity)
            .map(|i| display_node_type(&s, s.root(i), interner))
            .collect(),
    }
}

fn display_node_type(p: &Pattern, id: usize, interner: &Interner) -> String {
    match p.node(id) {
        PNode::Leaf(l) => l.to_string(),
        PNode::Int(i) => i.to_string(),
        PNode::Atom(a) => interner.resolve(*a).to_owned(),
        PNode::Struct(f, args) => {
            let name = interner.resolve(*f);
            let args: Vec<String> = args
                .iter()
                .map(|&a| display_node_type(p, a, interner))
                .collect();
            if name == "." && args.len() == 2 {
                format!("[{}|{}]", args[0], args[1])
            } else {
                format!("{name}({})", args.join(", "))
            }
        }
        PNode::List(e) => {
            let e = display_node_type(p, *e, interner);
            if e == "g" {
                "glist".to_owned()
            } else {
                format!("list({e})")
            }
        }
    }
}

/// Render the full analysis report.
pub fn render(analysis: &Analysis, interner: &Interner) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fixpoint in {} iteration(s), {} abstract instructions\n",
        analysis.iterations, analysis.instructions_executed
    ));
    let t = &analysis.table_stats;
    out.push_str(&format!(
        "extension table: {} lookups ({} hits, {} misses, {} scan steps), \
         {} inserts, {} summary updates ({} widenings, {} version bumps)\n",
        t.lookups,
        t.hits,
        t.misses,
        t.scan_steps,
        t.inserts,
        t.summary_updates,
        t.lub_widenings,
        t.version_bumps
    ));
    for pred in &analysis.predicates {
        out.push_str(&format!("\n{}:\n", pred.name));
        for (call, success) in &pred.entries {
            let succ = match success {
                Some(s) => s.display(interner),
                None => "fails".to_owned(),
            };
            out.push_str(&format!(
                "  call {}  -->  {}\n",
                call.display(interner),
                succ
            ));
        }
        let modes: Vec<String> = derive_modes(pred).iter().map(ArgMode::to_string).collect();
        if pred.arity > 0 {
            out.push_str(&format!("  modes: ({})\n", modes.join(", ")));
            let types = success_types(pred, interner);
            out.push_str(&format!("  types: ({})\n", types.join(", ")));
        }
        let aliases = aliased_arg_pairs(pred);
        if !aliases.is_empty() {
            let aliases: Vec<String> = aliases
                .iter()
                .map(|(i, j)| format!("A{}~A{}", i + 1, j + 1))
                .collect();
            out.push_str(&format!("  aliasing: {}\n", aliases.join(", ")));
        }
    }
    out
}
