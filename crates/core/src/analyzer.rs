//! The public analysis API.

use crate::machine::{AbstractMachine, AnalysisError};
use crate::table::{Entry, EtImpl};
use crate::IterationStrategy;
use absdom::{AbsLeaf, DomainConfig, Pattern, DEFAULT_TERM_DEPTH};
use awam_obs::{Json, MachineStats, OpcodeCounts, Stopwatch, TableStats, Tracer};
use prolog_syntax::Program;
use wam::{compile_program, CompileError, CompiledProgram};

/// A compiled dataflow analyzer for one program.
///
/// See the crate documentation for the full story; in short, the analyzer
/// owns the WAM code (shared, unmodified, with the concrete machine) and
/// runs the abstract WAM over it.
///
/// # Examples
///
/// ```
/// use awam_core::Analyzer;
/// use prolog_syntax::parse_program;
///
/// let program = parse_program(
///     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
/// )?;
/// let mut analyzer = Analyzer::compile(&program)?;
/// let analysis = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
/// let entry = &analysis.predicates[0];
/// assert_eq!(entry.name, "app/3");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Analyzer {
    program: CompiledProgram,
    depth_k: usize,
    et_impl: EtImpl,
    config: DomainConfig,
    strategy: IterationStrategy,
    profile_timing: bool,
}

/// The analysis of one predicate: its calling patterns and summarized
/// success patterns.
#[derive(Debug, Clone)]
pub struct PredAnalysis {
    /// `name/arity`.
    pub name: String,
    /// Predicate id in the compiled program.
    pub pred: usize,
    /// Arity.
    pub arity: usize,
    /// `(calling pattern, success pattern or None if the call always
    /// fails)` pairs.
    pub entries: Vec<(Pattern, Option<Pattern>)>,
}

/// The result of one analysis run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-predicate results, in predicate-table order, restricted to
    /// predicates that were actually called.
    pub predicates: Vec<PredAnalysis>,
    /// Global fixpoint iterations performed.
    pub iterations: u64,
    /// Abstract WAM instructions executed (Table 1's `Exec` column).
    pub instructions_executed: u64,
    /// Extension-table counters (lookups, hit/miss split, scan cost,
    /// inserts, lub behavior).
    pub table_stats: TableStats,
    /// Abstract-machine work counters and high-water marks.
    pub machine_stats: MachineStats,
    /// Per-opcode dispatch counts (index with [`wam::OPCODE_NAMES`]).
    pub opcodes: OpcodeCounts,
    /// Wall time of the fixpoint run in nanoseconds (0 when the `timing`
    /// feature of `awam-obs` is off).
    pub analyze_ns: u64,
    /// Per-predicate self-time `(name, ns)`, descending; empty unless
    /// [`Analyzer::with_profiling`] was enabled.
    pub pred_times: Vec<(String, u64)>,
}

impl Analyzer {
    /// Compile `program` and wrap it in an analyzer with the paper's
    /// default term depth (4) and the paper's linear-list extension table.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the WAM compiler.
    pub fn compile(program: &Program) -> Result<Analyzer, CompileError> {
        Ok(Analyzer::from_compiled(compile_program(program)?))
    }

    /// Wrap an already-compiled program.
    pub fn from_compiled(program: CompiledProgram) -> Analyzer {
        Analyzer {
            program,
            depth_k: DEFAULT_TERM_DEPTH,
            et_impl: EtImpl::Linear,
            config: DomainConfig::FULL,
            strategy: IterationStrategy::GlobalRestart,
            profile_timing: false,
        }
    }

    /// Set the term-depth restriction `k` (ablation A).
    #[must_use]
    pub fn with_depth(mut self, depth_k: usize) -> Analyzer {
        self.depth_k = depth_k;
        self
    }

    /// Choose the extension-table implementation (ablation B).
    #[must_use]
    pub fn with_et_impl(mut self, et_impl: EtImpl) -> Analyzer {
        self.et_impl = et_impl;
        self
    }

    /// Restrict the abstract domain (ablation C: precision vs. time).
    #[must_use]
    pub fn with_domain_config(mut self, config: DomainConfig) -> Analyzer {
        self.config = config;
        self
    }

    /// Choose the fixpoint iteration strategy (ablation D).
    #[must_use]
    pub fn with_strategy(mut self, strategy: IterationStrategy) -> Analyzer {
        self.strategy = strategy;
        self
    }

    /// Enable fine-grained profiling: extraction/materialization/table
    /// nanosecond counters and the per-predicate time breakdown. Off by
    /// default because it reads the clock inside the analysis hot path.
    #[must_use]
    pub fn with_profiling(mut self, on: bool) -> Analyzer {
        self.profile_timing = on;
        self
    }

    /// The compiled program being analyzed.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The interner used by the compiled program (for display).
    pub fn interner(&self) -> &prolog_syntax::Interner {
        &self.program.interner
    }

    /// Analyze from `pred` with the given entry calling pattern.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::UnknownPredicate`], [`AnalysisError::ArityMismatch`],
    /// or resource-bound errors.
    pub fn analyze(&mut self, name: &str, entry: &Pattern) -> Result<Analysis, AnalysisError> {
        self.analyze_with(name, entry, None)
    }

    /// Like [`Analyzer::analyze`], but streaming events into `tracer`
    /// (fixpoint rounds, calling patterns, ET consults/inserts/updates,
    /// clause entries, forced failures).
    ///
    /// # Errors
    ///
    /// Same as [`Analyzer::analyze`].
    pub fn analyze_traced(
        &mut self,
        name: &str,
        entry: &Pattern,
        tracer: &mut dyn Tracer,
    ) -> Result<Analysis, AnalysisError> {
        self.analyze_with(name, entry, Some(tracer))
    }

    fn analyze_with(
        &mut self,
        name: &str,
        entry: &Pattern,
        tracer: Option<&mut dyn Tracer>,
    ) -> Result<Analysis, AnalysisError> {
        let pred = self.program.predicate(name, entry.arity()).ok_or_else(|| {
            AnalysisError::UnknownPredicate {
                pred: format!("{name}/{}", entry.arity()),
            }
        })?;
        let expected = self.program.predicates[pred].key.arity;
        if expected != entry.arity() {
            return Err(AnalysisError::ArityMismatch {
                expected,
                got: entry.arity(),
            });
        }
        let mut machine = AbstractMachine::new(&self.program, self.depth_k, self.et_impl);
        machine.set_domain_config(self.config);
        machine.set_strategy(self.strategy);
        machine.profile_timing = self.profile_timing;
        if let Some(tracer) = tracer {
            machine.set_tracer(tracer);
        }
        let entry = entry.weaken(self.config);
        let watch = Stopwatch::start();
        let iterations = machine.run_to_fixpoint(pred, &entry)?;
        let analyze_ns = watch.elapsed_ns();
        let mut predicates = Vec::new();
        for (id, p) in self.program.predicates.iter().enumerate() {
            let entries: Vec<(Pattern, Option<Pattern>)> = machine
                .table()
                .entries(id)
                .iter()
                .map(|Entry { call, success, .. }| (call.clone(), success.clone()))
                .collect();
            if !entries.is_empty() {
                predicates.push(PredAnalysis {
                    name: p.key.display(&self.program.interner),
                    pred: id,
                    arity: p.key.arity,
                    entries,
                });
            }
        }
        let mut pred_times: Vec<(String, u64)> = machine
            .pred_self_ns()
            .iter()
            .enumerate()
            .filter(|(_, &ns)| ns > 0)
            .map(|(id, &ns)| {
                (
                    self.program.predicates[id]
                        .key
                        .display(&self.program.interner),
                    ns,
                )
            })
            .collect();
        pred_times.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        Ok(Analysis {
            predicates,
            iterations,
            instructions_executed: machine.exec_count(),
            table_stats: *machine.table().stats(),
            machine_stats: machine.machine_stats(),
            opcodes: machine.opcodes().clone(),
            analyze_ns,
            pred_times,
        })
    }

    /// Analyze with an entry pattern given as spec strings (see
    /// [`Pattern::from_spec`]).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BadSpec`] for unknown specs, plus everything
    /// [`Analyzer::analyze`] returns.
    pub fn analyze_query(&mut self, name: &str, specs: &[&str]) -> Result<Analysis, AnalysisError> {
        let entry =
            Pattern::from_spec(specs).ok_or_else(|| AnalysisError::BadSpec(specs.join(", ")))?;
        self.analyze(name, &entry)
    }
}

impl Analysis {
    /// The analysis of predicate `name/arity`, if it was reached.
    pub fn predicate(&self, name: &str, arity: usize) -> Option<&PredAnalysis> {
        self.predicates
            .iter()
            .find(|p| p.name == format!("{name}/{arity}"))
    }

    /// A human-readable report of the whole table, plus derived modes.
    pub fn report(&self, analyzer: &Analyzer) -> String {
        crate::report::render(self, analyzer.interner())
    }

    /// The counters of this analysis as one JSON document: fixpoint
    /// rounds, instruction totals, opcode counts, [`TableStats`] fields,
    /// machine high-water marks, and timings.
    pub fn stats_json(&self) -> Json {
        let mut pairs = vec![
            ("iterations", Json::Int(self.iterations as i64)),
            (
                "instructions_executed",
                Json::Int(self.instructions_executed as i64),
            ),
            ("table", self.table_stats.to_json()),
            ("machine", self.machine_stats.to_json()),
            ("opcodes", self.opcodes.to_json(&wam::OPCODE_NAMES)),
            ("analyze_ns", Json::Int(self.analyze_ns as i64)),
        ];
        if !self.pred_times.is_empty() {
            pairs.push((
                "pred_self_ns",
                Json::Obj(
                    self.pred_times
                        .iter()
                        .map(|(name, ns)| (name.clone(), Json::Int(*ns as i64)))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

impl PredAnalysis {
    /// The lub of all success patterns of this predicate (over all calling
    /// patterns), if any call can succeed.
    pub fn success_summary(&self) -> Option<Pattern> {
        let mut acc: Option<Pattern> = None;
        for (_, s) in &self.entries {
            if let Some(s) = s {
                acc = Some(match acc {
                    Some(a) => a.lub(s),
                    None => s.clone(),
                });
            }
        }
        acc
    }

    /// Derived argument modes (see [`crate::report::ArgMode`]).
    pub fn modes(&self) -> Vec<crate::report::ArgMode> {
        crate::report::derive_modes(self)
    }
}

/// Convenience: leaf approximations of a pattern's arguments.
pub fn arg_leaves(p: &Pattern) -> Vec<AbsLeaf> {
    (0..p.arity()).map(|i| p.leaf_approx(p.root(i))).collect()
}
