//! The public analysis API: builder → immutable analyzer → session.
//!
//! The API has three layers:
//!
//! * [`AnalyzerBuilder`] holds the knobs (term depth, extension-table
//!   implementation, domain restriction, iteration strategy, profiling)
//!   and produces a compiled [`Analyzer`];
//! * [`Analyzer`] is **immutable**: [`Analyzer::analyze`] takes `&self`,
//!   so one compiled analyzer can serve many queries — and many threads
//!   ([`Analyzer::analyze_batch`]) — concurrently;
//! * [`crate::Session`] owns a persistent extension table that survives
//!   across queries, answering repeat queries from the memo table with
//!   zero fixpoint iterations.

use crate::machine::{AbstractMachine, AnalysisError};
use crate::provenance::DerivationReport;
use crate::table::{Entry, EtImpl, ExtensionTable};
use crate::{IterationStrategy, Session};
use absdom::{
    AbsLeaf, DomainConfig, Pattern, PatternInterner, SessionInterner, DEFAULT_TERM_DEPTH,
};
use awam_obs::{
    InternStats, Json, MachineStats, MetricsRegistry, OpcodeCounts, SpanProfiler, Stopwatch,
    TableStats, Tracer,
};
use prolog_syntax::Program;
use std::sync::Arc;
use wam::{compile_program, CompileError, CompiledProgram};

/// Configuration for building an [`Analyzer`]: the ablation knobs of the
/// reproduction, collected before compilation so the produced analyzer
/// can stay immutable (and therefore shareable across threads).
///
/// # Examples
///
/// ```
/// use awam_core::{Analyzer, EtImpl, IterationStrategy};
/// use prolog_syntax::parse_program;
///
/// let program = parse_program(
///     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
/// )?;
/// let analyzer = Analyzer::builder()
///     .depth(4)
///     .et_impl(EtImpl::Hashed)
///     .strategy(IterationStrategy::Dependency)
///     .compile(&program)?;
/// let analysis = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
/// assert_eq!(analysis.predicates[0].name, "app/3");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AnalyzerBuilder {
    depth_k: usize,
    et_impl: EtImpl,
    config: DomainConfig,
    strategy: IterationStrategy,
    profile_timing: bool,
    provenance: bool,
    fuse: bool,
    step_budget: Option<u64>,
}

impl Default for AnalyzerBuilder {
    /// The paper's settings: term depth 4, linear-list extension table,
    /// full domain, global-restart fixpoint, no profiling, no
    /// provenance.
    fn default() -> Self {
        AnalyzerBuilder {
            depth_k: DEFAULT_TERM_DEPTH,
            et_impl: EtImpl::Linear,
            config: DomainConfig::FULL,
            strategy: IterationStrategy::GlobalRestart,
            profile_timing: false,
            provenance: false,
            fuse: true,
            step_budget: None,
        }
    }
}

impl AnalyzerBuilder {
    /// A builder with the paper's default settings.
    pub fn new() -> AnalyzerBuilder {
        AnalyzerBuilder::default()
    }

    /// Set the term-depth restriction `k` (ablation A).
    #[must_use]
    pub fn depth(mut self, depth_k: usize) -> AnalyzerBuilder {
        self.depth_k = depth_k;
        self
    }

    /// Choose the extension-table implementation (ablation B).
    #[must_use]
    pub fn et_impl(mut self, et_impl: EtImpl) -> AnalyzerBuilder {
        self.et_impl = et_impl;
        self
    }

    /// Restrict the abstract domain (ablation C: precision vs. time).
    #[must_use]
    pub fn domain_config(mut self, config: DomainConfig) -> AnalyzerBuilder {
        self.config = config;
        self
    }

    /// Choose the fixpoint iteration strategy (ablation D).
    #[must_use]
    pub fn strategy(mut self, strategy: IterationStrategy) -> AnalyzerBuilder {
        self.strategy = strategy;
        self
    }

    /// Enable fine-grained profiling: extraction/materialization/table
    /// nanosecond counters and the per-predicate time breakdown. Off by
    /// default because it reads the clock inside the analysis hot path.
    #[must_use]
    pub fn profiling(mut self, on: bool) -> AnalyzerBuilder {
        self.profile_timing = on;
        self
    }

    /// Enable derivation tracking: every extension-table entry records
    /// the clause, iteration, and parent call that created it, plus the
    /// chain of lub inputs that widened its success summary (surfaced as
    /// [`Analysis::provenance`]). Zero cost when off: the table's
    /// derivation store is never allocated and the machine's recording
    /// hooks reduce to one predictable branch, so reports and traces are
    /// byte-identical with and without the flag (testkit oracle #7).
    #[must_use]
    pub fn provenance(mut self, on: bool) -> AnalyzerBuilder {
        self.provenance = on;
        self
    }

    /// Enable or disable superinstruction fusion of the code area (on by
    /// default). `fuse(false)` restores the plain one-instruction-per-op
    /// stream — analysis results, traces, reports, and opcode histograms
    /// are byte-identical either way (testkit oracle #8); only dispatch
    /// cost changes. Both states are normalized in [`AnalyzerBuilder::build`],
    /// so the flag is deterministic regardless of the input program's
    /// fusion state.
    #[must_use]
    pub fn fuse(mut self, on: bool) -> AnalyzerBuilder {
        self.fuse = on;
        self
    }

    /// Cap every analysis run at `budget` abstract instructions; a run
    /// that crosses the cap aborts with
    /// [`AnalysisError::BudgetExceeded`].
    /// `None` (the default) leaves only the fixed safety rails. The
    /// serving layer uses this as a per-request deadline: shed work that
    /// will not finish instead of letting it starve the queue. The
    /// budget is checked at call and fixpoint-round boundaries, so the
    /// dispatch loop pays nothing for it.
    #[must_use]
    pub fn step_budget(mut self, budget: Option<u64>) -> AnalyzerBuilder {
        self.step_budget = budget;
        self
    }

    /// Compile `program` into an analyzer with this configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the WAM compiler.
    pub fn compile(&self, program: &Program) -> Result<Analyzer, CompileError> {
        let watch = Stopwatch::start();
        let compiled = compile_program(program)?;
        let compile_ns = watch.elapsed_ns();
        let mut analyzer = self.build(compiled);
        analyzer.compile_ns = compile_ns;
        Ok(analyzer)
    }

    /// Wrap an already-compiled program with this configuration.
    pub fn build(&self, mut program: CompiledProgram) -> Analyzer {
        // Normalize the code area to the requested fusion state. Both
        // passes are idempotent, so this is deterministic whether the
        // caller hands us fused (`compile_program` default) or plain code.
        if self.fuse {
            wam::fuse::fuse_program(&mut program);
        } else {
            wam::fuse::unfuse_program(&mut program);
        }
        let base_interner = Arc::new(seed_interner(&program));
        Analyzer {
            program,
            depth_k: self.depth_k,
            et_impl: self.et_impl,
            config: self.config,
            strategy: self.strategy,
            profile_timing: self.profile_timing,
            provenance: self.provenance,
            fuse: self.fuse,
            step_budget: self.step_budget,
            compile_ns: 0,
            base_interner,
        }
    }
}

/// A compiled dataflow analyzer for one program.
///
/// The analyzer is immutable once built: it owns the WAM code (shared,
/// unmodified, with the concrete machine) and runs the abstract WAM over
/// it on every query. Because [`Analyzer::analyze`] takes `&self`, one
/// analyzer can serve queries from many threads at once — see
/// [`Analyzer::analyze_batch`] — and cross-query memo reuse lives in
/// [`Session`].
///
/// # Examples
///
/// ```
/// use awam_core::Analyzer;
/// use prolog_syntax::parse_program;
///
/// let program = parse_program(
///     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
/// )?;
/// let analyzer = Analyzer::compile(&program)?;
/// let analysis = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
/// let entry = &analysis.predicates[0];
/// assert_eq!(entry.name, "app/3");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Analyzer {
    program: CompiledProgram,
    depth_k: usize,
    et_impl: EtImpl,
    config: DomainConfig,
    strategy: IterationStrategy,
    profile_timing: bool,
    provenance: bool,
    fuse: bool,
    step_budget: Option<u64>,
    /// Wall time of WAM compilation in nanoseconds (0 when the analyzer
    /// was built from an already-compiled program); spliced into the
    /// span tree as the `compile` phase when profiling is on.
    compile_ns: u64,
    /// Shared read-only pattern arena, pre-seeded with the common
    /// all-`any`/all-`var` patterns per predicate arity. Every query gets
    /// a [`SessionInterner`] overlay over this `Arc`, so batch workers
    /// share the seed without any locking.
    base_interner: Arc<PatternInterner>,
}

/// Pre-intern the patterns every analysis is likely to touch: the empty
/// pattern and, for each distinct predicate arity in the program, the
/// all-`any` and all-`var` argument tuples.
fn seed_interner(program: &CompiledProgram) -> PatternInterner {
    let mut interner = PatternInterner::new();
    interner.intern(Pattern::empty());
    let mut arities: Vec<usize> = program.predicates.iter().map(|p| p.key.arity).collect();
    arities.sort_unstable();
    arities.dedup();
    for arity in arities {
        for spec in ["any", "var"] {
            let specs = vec![spec; arity];
            if let Some(p) = Pattern::from_spec(&specs) {
                interner.intern(p);
            }
        }
    }
    interner
}

/// One entry goal of a batch analysis: a predicate name plus its entry
/// calling pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchGoal {
    /// Entry predicate name.
    pub name: String,
    /// Entry calling pattern.
    pub entry: Pattern,
}

impl BatchGoal {
    /// A goal from a name and a pattern.
    pub fn new(name: impl Into<String>, entry: Pattern) -> BatchGoal {
        BatchGoal {
            name: name.into(),
            entry,
        }
    }

    /// A goal from a name and spec strings (see [`Pattern::from_spec`]).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BadSpec`] for unknown specs.
    pub fn from_spec(name: impl Into<String>, specs: &[&str]) -> Result<BatchGoal, AnalysisError> {
        let entry =
            Pattern::from_spec(specs).ok_or_else(|| AnalysisError::BadSpec(specs.join(", ")))?;
        Ok(BatchGoal::new(name, entry))
    }
}

/// The analysis of one predicate: its calling patterns and summarized
/// success patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredAnalysis {
    /// `name/arity`.
    pub name: String,
    /// Predicate id in the compiled program.
    pub pred: usize,
    /// Arity.
    pub arity: usize,
    /// `(calling pattern, success pattern or None if the call always
    /// fails)` pairs.
    pub entries: Vec<(Pattern, Option<Pattern>)>,
}

/// The result of one analysis run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-predicate results, in predicate-table order, restricted to
    /// predicates that were actually called.
    pub predicates: Vec<PredAnalysis>,
    /// Global fixpoint iterations performed by this query (zero when a
    /// session answered it from the memo table).
    pub iterations: u64,
    /// Abstract WAM instructions executed (Table 1's `Exec` column).
    pub instructions_executed: u64,
    /// Extension-table counters (lookups, hit/miss split, scan cost,
    /// inserts, lub behavior). For session queries these accumulate over
    /// the session's whole life, because the table itself does.
    pub table_stats: TableStats,
    /// Pattern-interner counters (dedup hits/misses, lub/leq memo-cache
    /// behavior, estimated bytes saved). For session queries these
    /// accumulate over the session's whole life, like the table stats.
    pub intern_stats: InternStats,
    /// Abstract-machine work counters and high-water marks.
    pub machine_stats: MachineStats,
    /// Per-opcode dispatch counts (index with [`wam::OPCODE_NAMES`]).
    pub opcodes: OpcodeCounts,
    /// Wall time of the fixpoint run in nanoseconds (0 when the `timing`
    /// feature of `awam-obs` is off).
    pub analyze_ns: u64,
    /// Per-predicate self-time `(name, ns)`, descending; empty unless
    /// profiling was enabled via [`AnalyzerBuilder::profiling`].
    pub pred_times: Vec<(String, u64)>,
    /// Per-predicate self-instructions `(name, count)`, descending;
    /// empty unless profiling was enabled.
    pub pred_instrs: Vec<(String, u64)>,
    /// Derivation report for every table entry; `None` unless
    /// [`AnalyzerBuilder::provenance`] was enabled.
    pub provenance: Option<DerivationReport>,
    /// Span tree and metrics registry of the run; `None` unless
    /// profiling was enabled via [`AnalyzerBuilder::profiling`] (warm
    /// session hits also return `None`: no machine ran).
    pub profile: Option<ProfileData>,
}

/// The self-profiling output of one analysis run: where fixpoint time
/// went (hierarchical spans) and the metrics registry a monitoring
/// surface would scrape.
#[derive(Clone, Debug)]
pub struct ProfileData {
    /// Hierarchical span tree: compile / iteration N / predicate /
    /// et-consult, with call counts, total and self time.
    pub spans: SpanProfiler,
    /// Named counters and histograms (consult latency, per-iteration
    /// widening/growth deltas, per-predicate instruction heat).
    pub metrics: MetricsRegistry,
}

impl Analyzer {
    /// A builder with the paper's default settings (term depth 4,
    /// linear-list extension table, full domain, global restart).
    pub fn builder() -> AnalyzerBuilder {
        AnalyzerBuilder::default()
    }

    /// Compile `program` and wrap it in an analyzer with the paper's
    /// default settings (shorthand for `Analyzer::builder().compile(..)`).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the WAM compiler.
    pub fn compile(program: &Program) -> Result<Analyzer, CompileError> {
        AnalyzerBuilder::default().compile(program)
    }

    /// Wrap an already-compiled program with the default settings.
    pub fn from_compiled(program: CompiledProgram) -> Analyzer {
        AnalyzerBuilder::default().build(program)
    }

    /// The compiled program being analyzed.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The interner used by the compiled program (for display).
    pub fn interner(&self) -> &prolog_syntax::Interner {
        &self.program.interner
    }

    /// The extension-table implementation this analyzer uses.
    pub fn et_impl(&self) -> EtImpl {
        self.et_impl
    }

    /// Whether derivation provenance tracking is on (see
    /// [`AnalyzerBuilder::provenance`]).
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    /// Open a [`Session`] on this analyzer: a persistent extension table
    /// that survives across queries (shorthand for [`Session::new`]).
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// The build-time configuration of this analyzer, as a builder that
    /// would recreate it. Incremental re-analysis uses this to compile
    /// the edited program with byte-identical settings, so a migrated
    /// session's results stay comparable to a cold run.
    pub fn config_builder(&self) -> AnalyzerBuilder {
        AnalyzerBuilder {
            depth_k: self.depth_k,
            et_impl: self.et_impl,
            config: self.config,
            strategy: self.strategy,
            profile_timing: self.profile_timing,
            provenance: self.provenance,
            fuse: self.fuse,
            step_budget: self.step_budget,
        }
    }

    /// The term-depth restriction `k` this analyzer extracts patterns at.
    pub(crate) fn depth_k(&self) -> usize {
        self.depth_k
    }

    /// The domain restriction this analyzer runs under.
    pub(crate) fn domain_config(&self) -> DomainConfig {
        self.config
    }

    /// The configured fixpoint iteration strategy.
    pub(crate) fn iteration_strategy(&self) -> IterationStrategy {
        self.strategy
    }

    /// Analyze from `pred` with the given entry calling pattern.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::UnknownPredicate`], [`AnalysisError::ArityMismatch`],
    /// or resource-bound errors.
    pub fn analyze(&self, name: &str, entry: &Pattern) -> Result<Analysis, AnalysisError> {
        self.analyze_with(name, entry, None)
    }

    /// Like [`Analyzer::analyze`], but streaming events into `tracer`
    /// (fixpoint rounds, calling patterns, ET consults/inserts/updates,
    /// clause entries, forced failures).
    ///
    /// # Errors
    ///
    /// Same as [`Analyzer::analyze`].
    pub fn analyze_traced(
        &self,
        name: &str,
        entry: &Pattern,
        tracer: &mut dyn Tracer,
    ) -> Result<Analysis, AnalysisError> {
        self.analyze_with(name, entry, Some(tracer))
    }

    fn analyze_with(
        &self,
        name: &str,
        entry: &Pattern,
        tracer: Option<&mut dyn Tracer>,
    ) -> Result<Analysis, AnalysisError> {
        let (pred, entry) = self.resolve_entry(name, entry)?;
        let (analysis, _table, _interner) =
            self.run_fixpoint(pred, &entry, None, tracer, self.step_budget)?;
        Ok(analysis)
    }

    /// Analyze with an entry pattern given as spec strings (see
    /// [`Pattern::from_spec`]).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BadSpec`] for unknown specs, plus everything
    /// [`Analyzer::analyze`] returns.
    pub fn analyze_query(&self, name: &str, specs: &[&str]) -> Result<Analysis, AnalysisError> {
        let entry =
            Pattern::from_spec(specs).ok_or_else(|| AnalysisError::BadSpec(specs.join(", ")))?;
        self.analyze(name, &entry)
    }

    /// Analyze several independent entry goals, fanned out across
    /// `workers` OS threads (std scoped threads; `workers` is clamped to
    /// `1..=goals.len()`).
    ///
    /// Each goal runs in its own [`Session`], so every result is
    /// byte-identical to a standalone [`Analyzer::analyze`] call for that
    /// goal — regardless of worker count or scheduling. Results come back
    /// in goal order.
    pub fn analyze_batch(
        &self,
        goals: &[BatchGoal],
        workers: usize,
    ) -> Vec<Result<Analysis, AnalysisError>> {
        crate::batch::par_map(goals, workers, |_, goal| {
            Session::new(self).analyze(&goal.name, &goal.entry)
        })
    }

    // ----- internals shared with Session -----

    /// Resolve an entry goal: look up the predicate, check the arity, and
    /// weaken the pattern to this analyzer's domain configuration.
    pub(crate) fn resolve_entry(
        &self,
        name: &str,
        entry: &Pattern,
    ) -> Result<(usize, Pattern), AnalysisError> {
        let pred = self.program.predicate(name, entry.arity()).ok_or_else(|| {
            AnalysisError::UnknownPredicate {
                pred: format!("{name}/{}", entry.arity()),
            }
        })?;
        let expected = self.program.predicates[pred].key.arity;
        if expected != entry.arity() {
            return Err(AnalysisError::ArityMismatch {
                expected,
                got: entry.arity(),
            });
        }
        Ok((pred, entry.weaken(self.config)))
    }

    /// A fresh per-query interner overlay over this analyzer's shared
    /// base arena (lock-free: the base is behind an `Arc`).
    pub(crate) fn new_session_interner(&self) -> SessionInterner {
        SessionInterner::new(Arc::clone(&self.base_interner))
    }

    /// The abstract-instruction budget configured at build time (`None`
    /// when unbounded); sessions inherit it and may override per query.
    pub fn configured_step_budget(&self) -> Option<u64> {
        self.step_budget
    }

    /// Run the fixpoint for `(pred, entry)`, optionally seeded with a
    /// session's table and the interner its ids resolve through, and
    /// return the analysis plus the final table/interner pair.
    /// `step_budget` is the effective cap for *this* run (sessions can
    /// override the analyzer-wide setting per query).
    pub(crate) fn run_fixpoint(
        &self,
        pred: usize,
        entry: &Pattern,
        seed: Option<(ExtensionTable, SessionInterner)>,
        tracer: Option<&mut dyn Tracer>,
        step_budget: Option<u64>,
    ) -> Result<(Analysis, ExtensionTable, SessionInterner), AnalysisError> {
        let (mut table, interner) = seed.unwrap_or_else(|| {
            (
                ExtensionTable::new(self.program.predicates.len(), self.et_impl),
                self.new_session_interner(),
            )
        });
        if self.provenance {
            // Seeded tables from a session created before the flag (or
            // from Session::new, which already enables it) get padded
            // with blank derivations; fresh tables track from entry 0.
            table.enable_provenance();
        }
        let mut machine =
            AbstractMachine::with_table(&self.program, self.depth_k, self.et_impl, table, interner);
        machine.set_domain_config(self.config);
        machine.set_strategy(self.strategy);
        machine.set_step_budget(step_budget);
        machine.profile_timing = self.profile_timing;
        if let Some(tracer) = tracer {
            machine.set_tracer(tracer);
        }
        let watch = Stopwatch::start();
        let iterations = machine.run_to_fixpoint(pred, entry)?;
        let analyze_ns = watch.elapsed_ns();
        let predicates = self.collect_predicates(machine.table(), machine.interner());
        let mut pred_times: Vec<(String, u64)> = machine
            .pred_self_ns()
            .iter()
            .enumerate()
            .filter(|(_, &ns)| ns > 0)
            .map(|(id, &ns)| {
                (
                    self.program.predicates[id]
                        .key
                        .display(&self.program.interner),
                    ns,
                )
            })
            .collect();
        pred_times.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
        let mut pred_instrs: Vec<(String, u64)> = machine
            .pred_instr_self()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(id, &n)| {
                (
                    self.program.predicates[id]
                        .key
                        .display(&self.program.interner),
                    n,
                )
            })
            .collect();
        pred_instrs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let provenance = self.provenance.then(|| {
            crate::provenance::collect(&self.program, machine.table(), machine.interner())
        });
        let profile = machine.take_profile().map(|(mut spans, mut metrics)| {
            spans.record_phase("compile", self.compile_ns);
            metrics.counter_add("compile_ns", self.compile_ns);
            metrics.counter_add("fixpoint.iterations", iterations);
            ProfileData { spans, metrics }
        });
        let analysis = Analysis {
            predicates,
            iterations,
            instructions_executed: machine.exec_count(),
            table_stats: *machine.table().stats(),
            // Interner counters are sampled here, *after* the fixpoint
            // returned — never at machine construction — so the lub/leq
            // memo-cache numbers reflect the whole run (the exact-counter
            // tripwires in tests/observability.rs pin this down).
            intern_stats: *machine.interner().stats(),
            machine_stats: machine.machine_stats(),
            opcodes: machine.opcodes().clone(),
            analyze_ns,
            pred_times,
            pred_instrs,
            provenance,
            profile,
        };
        let (table, interner) = machine.into_parts();
        Ok((analysis, table, interner))
    }

    /// Project the per-predicate results out of an extension table,
    /// resolving the interned ids back into patterns (the public API
    /// stays id-free).
    pub(crate) fn collect_predicates(
        &self,
        table: &ExtensionTable,
        interner: &SessionInterner,
    ) -> Vec<PredAnalysis> {
        let mut predicates = Vec::new();
        for (id, p) in self.program.predicates.iter().enumerate() {
            let entries: Vec<(Pattern, Option<Pattern>)> = table
                .entries(id)
                .iter()
                .map(|&Entry { call, success, .. }| {
                    (
                        interner.resolve(call).clone(),
                        success.map(|s| interner.resolve(s).clone()),
                    )
                })
                .collect();
            if !entries.is_empty() {
                predicates.push(PredAnalysis {
                    name: p.key.display(&self.program.interner),
                    pred: id,
                    arity: p.key.arity,
                    entries,
                });
            }
        }
        predicates
    }

    /// An [`Analysis`] answered entirely from a memo table: no fixpoint
    /// iterations, no instructions executed.
    pub(crate) fn analysis_from_table(
        &self,
        table: &ExtensionTable,
        interner: &SessionInterner,
    ) -> Analysis {
        Analysis {
            predicates: self.collect_predicates(table, interner),
            iterations: 0,
            instructions_executed: 0,
            table_stats: *table.stats(),
            // Sampled at answer time: a warm hit's consult went through
            // the leq memo cache just now, and that shows up here.
            intern_stats: *interner.stats(),
            machine_stats: MachineStats::default(),
            opcodes: OpcodeCounts::new(wam::OPCODE_NAMES.len()),
            analyze_ns: 0,
            pred_times: Vec::new(),
            pred_instrs: Vec::new(),
            provenance: (self.provenance && table.provenance_enabled())
                .then(|| crate::provenance::collect(&self.program, table, interner)),
            profile: None,
        }
    }
}

impl Analysis {
    /// The analysis of predicate `name/arity`, if it was reached.
    pub fn predicate(&self, name: &str, arity: usize) -> Option<&PredAnalysis> {
        self.predicates
            .iter()
            .find(|p| p.name == format!("{name}/{arity}"))
    }

    /// A human-readable report of the whole table, plus derived modes.
    pub fn report(&self, analyzer: &Analyzer) -> String {
        crate::report::render(self, analyzer.interner())
    }

    /// The counters of this analysis as one JSON document: fixpoint
    /// rounds, instruction totals, opcode counts, [`TableStats`] fields,
    /// machine high-water marks, and timings.
    pub fn stats_json(&self) -> Json {
        let mut pairs = vec![
            ("iterations", Json::Int(self.iterations as i64)),
            (
                "instructions_executed",
                Json::Int(self.instructions_executed as i64),
            ),
            ("table", self.table_stats.to_json()),
            ("interner", self.intern_stats.to_json()),
            ("machine", self.machine_stats.to_json()),
            ("opcodes", self.opcodes.to_json(&wam::OPCODE_NAMES)),
            ("analyze_ns", Json::Int(self.analyze_ns as i64)),
        ];
        if !self.pred_times.is_empty() {
            pairs.push((
                "pred_self_ns",
                Json::Obj(
                    self.pred_times
                        .iter()
                        .map(|(name, ns)| (name.clone(), Json::Int(*ns as i64)))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

impl PredAnalysis {
    /// The lub of all success patterns of this predicate (over all calling
    /// patterns), if any call can succeed.
    pub fn success_summary(&self) -> Option<Pattern> {
        let mut acc: Option<Pattern> = None;
        for (_, s) in &self.entries {
            if let Some(s) = s {
                acc = Some(match acc {
                    Some(a) => a.lub(s),
                    None => s.clone(),
                });
            }
        }
        acc
    }

    /// Derived argument modes (see [`crate::report::ArgMode`]).
    pub fn modes(&self) -> Vec<crate::report::ArgMode> {
        crate::report::derive_modes(self)
    }
}

/// Convenience: leaf approximations of a pattern's arguments.
pub fn arg_leaves(p: &Pattern) -> Vec<AbsLeaf> {
    (0..p.arity()).map(|i| p.leaf_approx(p.root(i))).collect()
}
