//! The abstract WAM: reinterpreted instructions plus the ET control
//! scheme.
//!
//! The machine executes the *same* [`wam::CompiledProgram`] as the
//! concrete runtime — through the *same* dispatch loop
//! ([`awam_exec::step`]) — with the reinterpretations of §4–§5 of the
//! paper supplied through the [`Interpretation`] trait:
//!
//! * `get`/`unify` instructions perform abstract unification; abstract
//!   leaves instantiate to complex-term instances on the heap
//!   (Figure 4's `get_list`), with the old cell value trailed;
//! * `call` computes the calling pattern, consults the extension table,
//!   and — on a miss — explores every clause of the callee on a fresh
//!   materialization of the pattern, summarizing success patterns by lub
//!   (Figure 5);
//! * `proceed` corresponds to `updateET … fail` (clause exploration is a
//!   loop here, not backtracking: calls return deterministically, so no
//!   choice points exist at all);
//! * cut is treated as `true` (a sound over-approximation) and the
//!   indexing instructions are bypassed entirely — the clause list is
//!   iterated directly, as §5 prescribes.

use crate::acell::ACell;
use crate::extract::{deref, extract, extract_with, materialize, materialize_into, ExtractScratch};
use crate::table::{DerivationOrigin, EtImpl, ExtensionTable};
use crate::IterationStrategy;
use absdom::{AbsLeaf, DomainConfig, Pattern, PatternId, SessionInterner};
use awam_exec::{Flow, Frame, Interpretation, Mode};
use awam_obs::{
    Histogram, MachineStats, MetricsRegistry, OpcodeCounts, SpanProfiler, Stopwatch, TraceEvent,
    Tracer,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wam::{Builtin, CodeAddr, CompiledProgram, Functor, PredIdx, WamConst};

/// An error produced during analysis (distinct from abstract failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The entry predicate does not exist.
    UnknownPredicate {
        /// `name/arity` of the missing predicate.
        pred: String,
    },
    /// The entry pattern's arity does not match the predicate.
    ArityMismatch {
        /// Expected (predicate) arity.
        expected: usize,
        /// Provided pattern arity.
        got: usize,
    },
    /// The exploration recursion exceeded its safety bound.
    DepthLimit,
    /// The global fixpoint iteration exceeded its safety bound.
    IterationLimit,
    /// An entry-pattern spec string was not understood.
    BadSpec(String),
    /// The run exceeded its configured abstract-instruction budget (see
    /// [`crate::AnalyzerBuilder::step_budget`]). Unlike the safety
    /// bounds above, this is a *caller-chosen* deadline: `awam serve`
    /// maps it to a load-shedding response.
    BudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// Abstract instructions executed when the budget tripped.
        executed: u64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownPredicate { pred } => {
                write!(f, "unknown entry predicate {pred}")
            }
            AnalysisError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "entry pattern has {got} arguments, predicate expects {expected}"
                )
            }
            AnalysisError::DepthLimit => write!(f, "exploration depth limit exceeded"),
            AnalysisError::IterationLimit => write!(f, "fixpoint iteration limit exceeded"),
            AnalysisError::BadSpec(s) => write!(f, "unrecognized pattern spec `{s}`"),
            AnalysisError::BudgetExceeded { budget, executed } => {
                write!(
                    f,
                    "abstract-instruction budget exceeded ({executed} executed, budget {budget})"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The abstract machine state.
pub struct AbstractMachine<'p> {
    program: &'p CompiledProgram,
    pub(crate) table: ExtensionTable,
    /// Hash-consing interner for every pattern this run touches: table
    /// entries hold [`PatternId`]s that resolve through it, and the
    /// summary-lub / subsumption paths go through its memo caches.
    interner: SessionInterner,
    /// Shared substrate state: heap, registers, environments, value
    /// trail, pc, mode/S, and the instruction/opcode counters.
    frame: Frame<ACell, (usize, ACell)>,
    /// Current `call` nesting (the old explicit depth parameter; a field
    /// now that recursion flows through the shared dispatch loop).
    depth: usize,
    depth_k: usize,
    config: DomainConfig,
    strategy: IterationStrategy,
    /// Dependency log of the entry currently being explored (stack of
    /// frames, one per nested exploration).
    dep_stack: Vec<Vec<(usize, usize, u64)>>,
    /// Entries currently being explored (worklist strategy re-entrancy
    /// guard).
    in_progress: std::collections::HashSet<(usize, usize)>,
    /// Reverse dependency edges: entry → entries that read it. Ordered
    /// maps, so worklist seeding (and therefore the whole analysis event
    /// stream) is deterministic across runs.
    rev_deps: BTreeMap<(usize, usize), BTreeSet<(usize, usize)>>,
    /// Entries whose inputs changed and must be re-explored.
    worklist: std::collections::VecDeque<(usize, usize)>,
    queued: std::collections::HashSet<(usize, usize)>,
    /// Total entry explorations performed (reported as `iterations` by
    /// the worklist strategy).
    explorations: u64,
    iter: u64,
    /// Number of `solve_call` invocations (profiling aid).
    pub call_count: u64,
    /// Nanoseconds spent in pattern extraction (needs
    /// [`Self::profile_timing`]).
    pub extract_ns: u64,
    /// Nanoseconds spent in materialization (needs
    /// [`Self::profile_timing`]).
    pub materialize_ns: u64,
    /// Nanoseconds spent in table find/update incl. lub (needs
    /// [`Self::profile_timing`]).
    pub table_ns: u64,
    /// When true, the clock is read around extraction, materialization,
    /// table work, and per-predicate exploration. Off by default: clock
    /// reads in the dispatch loop are measurable overhead.
    pub profile_timing: bool,
    /// Backtracks plus high-water marks; instruction/call totals are
    /// folded in by [`Self::machine_stats`].
    stats: MachineStats,
    /// Self-time per predicate in nanoseconds (needs
    /// [`Self::profile_timing`]).
    pred_self_ns: Vec<u64>,
    /// Child-exploration time accumulators, one per active
    /// `explore_entry` frame.
    pred_timer_stack: Vec<u64>,
    /// Self-instructions per predicate (needs [`Self::profile_timing`]):
    /// dispatch counts attributed to the predicate being explored,
    /// excluding nested explorations.
    pred_instr_self: Vec<u64>,
    /// `(executed snapshot, child instructions)` per active
    /// `explore_entry` frame, mirroring the timer stack.
    pred_instr_stack: Vec<(u64, u64)>,
    /// Hierarchical span tree (iteration / predicate / et-consult),
    /// allocated lazily when [`Self::profile_timing`] is set.
    span: Option<SpanProfiler>,
    /// `name/arity` display strings, cached so span hooks never hit the
    /// symbol interner on the hot path; built with the span profiler.
    pred_names: Vec<String>,
    /// ET-consult latency distribution (needs [`Self::profile_timing`]).
    consult_hist: Histogram,
    /// Per-round lub widenings (needs [`Self::profile_timing`]).
    round_widen_hist: Histogram,
    /// Per-round table growth in entries (needs
    /// [`Self::profile_timing`]).
    round_growth_hist: Histogram,
    /// Whether the table records derivations. Sampled once from
    /// [`ExtensionTable::provenance_enabled`] at construction, so the
    /// per-call cost when off is a single predictable branch.
    record_provenance: bool,
    /// Clause context of each active `explore_entry` frame:
    /// `(pred, clause index, calling-pattern id)` — what a nested insert
    /// records as its derivation origin.
    prov_stack: Vec<(usize, usize, PatternId)>,
    tracer: Option<&'p mut dyn Tracer>,
    max_depth: usize,
    /// Optional abstract-instruction budget: when `frame.executed`
    /// crosses it, the run aborts with
    /// [`AnalysisError::BudgetExceeded`]. Checked at call boundaries and
    /// fixpoint round/worklist boundaries — not per instruction — so the
    /// hot dispatch loop stays branch-free and the overshoot is bounded
    /// by one clause exploration.
    step_budget: Option<u64>,
    /// Scratch worklist for [`Self::unify`] (reset-not-free: taken and
    /// returned around each unification instead of reallocated).
    unify_stack: Vec<(ACell, ACell)>,
    /// Scratch pair-memo for [`Self::unify`], same lifecycle.
    unify_seen: Vec<(usize, usize)>,
    /// Scratch memo for materializations (cleared and resized per use).
    mat_done: Vec<Option<ACell>>,
    /// Scratch argument cells for [`Self::apply_success`] (safe to share:
    /// applying a summary never re-enters the solver).
    apply_args: Vec<ACell>,
    /// Pool of argument-cell vectors for [`Self::solve_call`] /
    /// [`Self::explore_entry`]. Those frames are recursive, so a single
    /// scratch would be clobbered; a pool hands each depth its own buffer
    /// and takes it back on the way out.
    cell_pool: Vec<Vec<ACell>>,
    /// Scratch buffers for the per-clause summary fast-path check.
    match_scratch: crate::matcher::MatchScratch,
    /// Scratch buffers for pattern extraction (one per machine; the
    /// extracted pattern is interned clone-on-miss straight out of here).
    extract_scratch: ExtractScratch,
}

/// The abstract interpretation of §4–§5: `s_unify` and complex-term
/// instantiation at the unification hooks, the extension-table control
/// scheme at the control hooks, cut as `true`, indexing bypassed.
impl Interpretation for AbstractMachine<'_> {
    type Cell = ACell;
    /// Value trail: instantiation overwrites variable-*like* cells, so
    /// undo must restore the previous cell, not a fresh unbound ref.
    type TrailEntry = (usize, ACell);
    type Error = AnalysisError;

    fn frame(&self) -> &Frame<ACell, (usize, ACell)> {
        &self.frame
    }

    fn frame_mut(&mut self) -> &mut Frame<ACell, (usize, ACell)> {
        &mut self.frame
    }

    fn trail_entry(addr: usize, old: ACell) -> (usize, ACell) {
        (addr, old)
    }

    fn undo_entry(heap: &mut [ACell], (addr, old): (usize, ACell)) {
        heap[addr] = old;
    }

    fn unify(&mut self, a: ACell, b: ACell) -> bool {
        // The inherent `s_unify` below.
        AbstractMachine::unify(self, a, b)
    }

    fn get_constant(&mut self, c: WamConst, arg: ACell) -> bool {
        // Covers both `get_constant` and read-mode `unify_constant`:
        // abstract cells admit constants through `s_unify`.
        let cell = const_cell(c);
        self.unify(arg, cell)
    }

    /// Figure 4: `get_list` over the abstract domain.
    fn get_list(&mut self, arg: ACell) -> bool {
        let (cell, addr) = deref(&self.frame.heap, arg);
        match cell {
            // Concrete behaviours are unchanged.
            ACell::Lis(p) => {
                self.frame.mode = Mode::Read;
                self.frame.s = p;
                true
            }
            ACell::Ref(a) => {
                let h = self.frame.heap.len();
                self.bind(a, ACell::Lis(h));
                self.frame.mode = Mode::Write;
                true
            }
            // ComplexTermInst: generate a [·|·] instance of the abstract
            // term on the heap and proceed in read mode over it.
            ACell::Abs(l) => {
                if !l.admits_list() {
                    return false;
                }
                let a = addr.expect("abs cells live on the heap");
                let h = self.frame.heap.len();
                let child = l.instance_child();
                self.push_child(child);
                self.push_child(child);
                self.bind(a, ACell::Lis(h));
                self.frame.mode = Mode::Read;
                self.frame.s = h;
                true
            }
            ACell::AbsList(e) => {
                let a = addr.expect("abs cells live on the heap");
                // glist₁ ← [g₁ | glist₂]: fresh element instance as car,
                // fresh list instance as cdr.
                let car = self.copy_type(e);
                let cdr_elem = self.copy_type(e);
                let cdr = self.frame.heap.len();
                self.frame.heap.push(ACell::AbsList(cdr_elem));
                // Lay out the pair contiguously: car is at `car`, but the
                // pair must be two consecutive cells; rebuild as refs.
                let pair = self.frame.heap.len();
                self.frame.heap.push(ACell::Ref(car));
                self.frame.heap.push(ACell::Ref(cdr));
                self.bind(a, ACell::Lis(pair));
                self.frame.mode = Mode::Read;
                self.frame.s = pair;
                true
            }
            _ => false,
        }
    }

    /// `get_structure f/n` over the abstract domain.
    fn get_structure(&mut self, f: Functor, arg: ACell) -> bool {
        let (cell, addr) = deref(&self.frame.heap, arg);
        match cell {
            ACell::Str(p) if self.frame.heap[p] == ACell::Fun(f.name, f.arity) => {
                self.frame.mode = Mode::Read;
                self.frame.s = p + 1;
                true
            }
            ACell::Ref(a) => {
                let h = self.frame.heap.len();
                self.frame.heap.push(ACell::Fun(f.name, f.arity));
                self.bind(a, ACell::Str(h));
                self.frame.mode = Mode::Write;
                true
            }
            ACell::Abs(l) => {
                if !l.admits_struct() {
                    return false;
                }
                let a = addr.expect("abs cells live on the heap");
                let h = self.frame.heap.len();
                self.frame.heap.push(ACell::Fun(f.name, f.arity));
                let child = l.instance_child();
                for _ in 0..f.arity {
                    self.push_child(child);
                }
                self.bind(a, ACell::Str(h));
                self.frame.mode = Mode::Read;
                self.frame.s = h + 1;
                true
            }
            ACell::AbsList(e) => {
                // A list instance can only be the cons structure.
                if !absdom::is_dot_symbol(f.name) || f.arity != 2 {
                    return false;
                }
                let a = addr.expect("abs cells live on the heap");
                let car = self.copy_type(e);
                let cdr_elem = self.copy_type(e);
                let cdr = self.frame.heap.len();
                self.frame.heap.push(ACell::AbsList(cdr_elem));
                let pair = self.frame.heap.len();
                self.frame.heap.push(ACell::Ref(car));
                self.frame.heap.push(ACell::Ref(cdr));
                self.bind(a, ACell::Lis(pair));
                self.frame.mode = Mode::Read;
                self.frame.s = pair;
                true
            }
            _ => false,
        }
    }

    fn read_subterm(&self, s: usize) -> ACell {
        // Open cells must be captured by reference so that instantiation
        // is visible to all aliases.
        if self.frame.heap[s].is_open_at(s) {
            ACell::Ref(s)
        } else {
            self.frame.heap[s]
        }
    }

    fn call(&mut self, pred: PredIdx) -> Result<Flow, AnalysisError> {
        // `solve_call` runs whole clauses through this same dispatch
        // loop, clobbering the pc; save the return address around it.
        let ret = self.frame.pc;
        self.depth += 1;
        let ok = self.solve_call(pred)?;
        self.depth -= 1;
        self.frame.pc = ret;
        Ok(if ok { Flow::Continue } else { Flow::Fail })
    }

    fn execute(&mut self, pred: PredIdx) -> Result<Flow, AnalysisError> {
        self.depth += 1;
        let ok = self.solve_call(pred)?;
        self.depth -= 1;
        // Tail position: the clause is done either way.
        Ok(if ok { Flow::Done } else { Flow::Fail })
    }

    fn proceed(&mut self) -> Result<Flow, AnalysisError> {
        // Clause success; the caller summarizes and forces failure
        // (`updateET … fail`).
        Ok(Flow::Done)
    }

    fn builtin(&mut self, b: Builtin) -> Result<Flow, AnalysisError> {
        Ok(if self.abstract_builtin(b) {
            Flow::Continue
        } else {
            Flow::Fail
        })
    }

    // Cut is `true` over the abstract domain (sound).
    fn neck_cut(&mut self) -> bool {
        true
    }

    fn get_level(&mut self, _y: u16) -> bool {
        true
    }

    fn cut_level(&mut self, _y: u16) -> bool {
        true
    }

    // Indexing and chaining instructions are bypassed by the control
    // scheme (clause entries are iterated directly).
    fn try_me_else(&mut self, _alt: CodeAddr) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn retry_me_else(&mut self, _alt: CodeAddr) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn trust_me(&mut self) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn try_(&mut self, _clause: CodeAddr) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn retry(&mut self, _clause: CodeAddr) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn trust(&mut self, _clause: CodeAddr) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn switch_on_term(&mut self, _: CodeAddr, _: CodeAddr, _: CodeAddr, _: CodeAddr) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn switch_on_constant(&mut self, _table: &[(WamConst, CodeAddr)]) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }

    fn switch_on_structure(&mut self, _table: &[(Functor, CodeAddr)]) -> Flow {
        unreachable!("indexing instruction inside a clause body")
    }
}

impl<'p> AbstractMachine<'p> {
    /// Create a machine over `program` with term-depth `depth_k` and a
    /// standalone pattern interner (no shared base arena).
    pub fn new(program: &'p CompiledProgram, depth_k: usize, et: EtImpl) -> Self {
        Self::with_table(
            program,
            depth_k,
            et,
            ExtensionTable::new(program.predicates.len(), et),
            SessionInterner::default(),
        )
    }

    /// Create a machine seeded with an existing extension table and the
    /// interner its entry ids resolve through (the session warm-start
    /// path). The global iteration counter resumes above the table's
    /// high-water mark so that no seeded entry is mistaken for "already
    /// explored this round"; fixpoint runs report rounds *performed by
    /// that run*, so seeded and fresh runs stay comparable.
    ///
    /// The `et` parameter is the ablation label the `table` was created
    /// with; the unified id-indexed consult means the machine itself no
    /// longer branches on it.
    pub fn with_table(
        program: &'p CompiledProgram,
        depth_k: usize,
        et: EtImpl,
        table: ExtensionTable,
        interner: SessionInterner,
    ) -> Self {
        let iter = table.max_explored_iter();
        let record_provenance = table.provenance_enabled();
        debug_assert_eq!(et, table.impl_kind(), "table built for a different EtImpl");
        AbstractMachine {
            program,
            table,
            interner,
            frame: Frame::new(),
            depth: 0,
            depth_k,
            config: DomainConfig::FULL,
            strategy: IterationStrategy::GlobalRestart,
            dep_stack: Vec::new(),
            in_progress: Default::default(),
            rev_deps: Default::default(),
            worklist: Default::default(),
            queued: Default::default(),
            explorations: 0,
            iter,
            call_count: 0,
            extract_ns: 0,
            materialize_ns: 0,
            table_ns: 0,
            profile_timing: false,
            stats: MachineStats::default(),
            pred_self_ns: vec![0; program.predicates.len()],
            pred_timer_stack: Vec::new(),
            pred_instr_self: vec![0; program.predicates.len()],
            pred_instr_stack: Vec::new(),
            span: None,
            pred_names: Vec::new(),
            consult_hist: Histogram::new(),
            round_widen_hist: Histogram::new(),
            round_growth_hist: Histogram::new(),
            record_provenance,
            prov_stack: Vec::new(),
            tracer: None,
            unify_stack: Vec::new(),
            unify_seen: Vec::new(),
            extract_scratch: ExtractScratch::default(),
            mat_done: Vec::new(),
            apply_args: Vec::new(),
            cell_pool: Vec::new(),
            match_scratch: crate::matcher::MatchScratch::default(),
            max_depth: 2_000,
            step_budget: None,
        }
    }

    /// Cap the run at `budget` abstract instructions (see
    /// [`AnalysisError::BudgetExceeded`]); `None` removes the cap.
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        self.step_budget = budget;
    }

    /// Abort with [`AnalysisError::BudgetExceeded`] once the executed
    /// instruction count crosses the configured budget.
    #[inline]
    fn check_budget(&self) -> Result<(), AnalysisError> {
        if let Some(budget) = self.step_budget {
            if self.frame.executed > budget {
                return Err(AnalysisError::BudgetExceeded {
                    budget,
                    executed: self.frame.executed,
                });
            }
        }
        Ok(())
    }

    /// Lazily set up the span profiler and the predicate-name cache.
    /// Called at the top of a fixpoint run when [`Self::profile_timing`]
    /// is on; a no-op (one branch) otherwise.
    fn init_profiling(&mut self) {
        if self.profile_timing && self.span.is_none() {
            self.pred_names = (0..self.program.predicates.len())
                .map(|p| Self::pred_name(self.program, p))
                .collect();
            self.span = Some(SpanProfiler::new());
        }
    }

    /// Attach an event tracer for the rest of this machine's life.
    pub fn set_tracer(&mut self, tracer: &'p mut dyn Tracer) {
        self.tracer = Some(tracer);
    }

    /// Emit an event if a tracer is attached. The closure only runs (and
    /// only allocates its strings) when tracing is on.
    #[inline]
    fn trace(&mut self, build: impl FnOnce(&CompiledProgram) -> TraceEvent) {
        let program = self.program;
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.event(&build(program));
        }
    }

    /// `name/arity` of a predicate, for trace events.
    fn pred_name(program: &CompiledProgram, pred: usize) -> String {
        program.predicates[pred].key.display(&program.interner)
    }

    /// Work counters and high-water marks for the run so far.
    pub fn machine_stats(&self) -> MachineStats {
        let mut stats = self.stats;
        stats.instructions = self.frame.executed;
        stats.calls = self.call_count;
        stats.note_heap(self.frame.heap.len());
        stats.note_trail(self.frame.trail.len());
        stats
    }

    /// Abstract WAM instructions executed (the `Exec` column of Table 1).
    pub fn exec_count(&self) -> u64 {
        self.frame.executed
    }

    /// Per-opcode dispatch counts over the whole run.
    pub fn opcodes(&self) -> &OpcodeCounts {
        &self.frame.opcodes
    }

    /// Self-time per predicate in nanoseconds (all zero unless
    /// [`Self::profile_timing`] was set before the run).
    pub fn pred_self_ns(&self) -> &[u64] {
        &self.pred_self_ns
    }

    /// Self-instructions per predicate (all zero unless
    /// [`Self::profile_timing`] was set before the run).
    pub fn pred_instr_self(&self) -> &[u64] {
        &self.pred_instr_self
    }

    /// Close the span tree and assemble the metrics registry for this
    /// run: consult latency, per-iteration widening/growth deltas, and
    /// per-predicate instruction heat. `None` unless
    /// [`Self::profile_timing`] was on (the registry would be empty).
    pub fn take_profile(&mut self) -> Option<(SpanProfiler, MetricsRegistry)> {
        if !self.profile_timing {
            return None;
        }
        let mut span = self.span.take().unwrap_or_default();
        span.finish();
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("analysis.calls", self.call_count);
        metrics.counter_add("analysis.explorations", self.explorations);
        metrics.counter_add("analysis.instructions", self.frame.executed);
        metrics.counter_add("et.consults", self.table.stats().lookups);
        metrics.counter_add("et.inserts", self.table.stats().inserts);
        metrics.counter_add("et.lub_widenings", self.table.stats().lub_widenings);
        for (pred, &instr) in self.pred_instr_self.iter().enumerate() {
            if instr > 0 {
                let name = self
                    .pred_names
                    .get(pred)
                    .cloned()
                    .unwrap_or_else(|| Self::pred_name(self.program, pred));
                metrics.counter_add(&format!("pred.instructions.{name}"), instr);
            }
        }
        metrics.insert_histogram("et.consult_ns", self.consult_hist.clone());
        metrics.insert_histogram(
            "fixpoint.iteration_widenings",
            self.round_widen_hist.clone(),
        );
        metrics.insert_histogram(
            "fixpoint.iteration_table_growth",
            self.round_growth_hist.clone(),
        );
        Some((span, metrics))
    }

    /// Run the global fixpoint: repeat top-level exploration until the
    /// extension table stabilizes. Returns the number of iterations.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::IterationLimit`] (or `DepthLimit`) if the safety
    /// bounds trip — with a finite domain this indicates a bug, and the
    /// bounds are far above anything the benchmark suite reaches.
    pub fn run_to_fixpoint(&mut self, pred: usize, entry: &Pattern) -> Result<u64, AnalysisError> {
        if self.strategy == IterationStrategy::Dependency {
            return self.run_worklist(pred, entry);
        }
        const MAX_ITERS: u64 = 10_000;
        self.init_profiling();
        let start_iter = self.iter;
        loop {
            self.iter += 1;
            if self.iter - start_iter > MAX_ITERS {
                return Err(AnalysisError::IterationLimit);
            }
            self.check_budget()?;
            let round = self.iter;
            self.trace(|_| TraceEvent::RoundStart { round });
            self.table.clear_changed();
            self.stats.note_heap(self.frame.heap.len());
            self.stats.note_trail(self.frame.trail.len());
            self.frame.heap.clear();
            self.frame.trail.clear();
            self.frame.clear_envs();
            self.frame.e = None;
            let args = materialize(&mut self.frame.heap, entry);
            for (i, cell) in args.iter().enumerate() {
                self.frame.x[i] = *cell;
            }
            self.depth = 0;
            let round_marks = self.span.as_mut().map(|span| {
                span.enter(&format!("iteration {round}"));
                (self.table.stats().lub_widenings, self.table.len())
            });
            self.solve_call(pred)?;
            if let Some((widen_mark, len_mark)) = round_marks {
                self.round_widen_hist
                    .record(self.table.stats().lub_widenings - widen_mark);
                self.round_growth_hist
                    .record((self.table.len() - len_mark) as u64);
                self.span.as_mut().expect("profiling on").exit();
            }
            let changed = self.table.changed();
            let round = self.iter;
            self.trace(|_| TraceEvent::RoundEnd { round, changed });
            if !changed {
                return Ok(self.iter - start_iter);
            }
        }
    }

    /// Semi-naive fixpoint: explore once, then re-explore only entries
    /// whose (transitive, via worklist propagation) inputs changed.
    fn run_worklist(&mut self, pred: usize, entry: &Pattern) -> Result<u64, AnalysisError> {
        const MAX_EXPLORATIONS: u64 = 5_000_000;
        self.init_profiling();
        if let Some(span) = self.span.as_mut() {
            // One span for the whole semi-naive run: there are no global
            // rounds to bracket, only worklist-driven re-explorations.
            span.enter("worklist");
        }
        self.iter += 1;
        self.frame.heap.clear();
        self.frame.trail.clear();
        self.frame.clear_envs();
        self.frame.e = None;
        let args = materialize(&mut self.frame.heap, entry);
        for (i, cell) in args.iter().enumerate() {
            self.frame.x[i] = *cell;
        }
        self.depth = 0;
        self.solve_call(pred)?;
        while let Some((p, i)) = self.worklist.pop_front() {
            self.queued.remove(&(p, i));
            if self.explorations > MAX_EXPLORATIONS {
                return Err(AnalysisError::IterationLimit);
            }
            self.check_budget()?;
            self.stats.note_heap(self.frame.heap.len());
            self.stats.note_trail(self.frame.trail.len());
            self.frame.heap.clear();
            self.frame.trail.clear();
            self.frame.clear_envs();
            self.frame.e = None;
            self.depth = 0;
            self.explore_entry(p, i)?;
        }
        if let Some(span) = self.span.as_mut() {
            span.exit();
        }
        Ok(self.explorations)
    }

    /// Seeded re-fixpoint for incremental re-analysis: drain a worklist
    /// pre-loaded with `frontier` (the entries an edit reset to an
    /// unexplored state) under the worklist strategy's semantics —
    /// surviving entries answer calls from their frozen summaries, and
    /// growth propagates along the reverse-dependency edges recorded as
    /// each frontier entry is re-explored. No entry goal is solved; the
    /// frontier *is* the work. The configured iteration strategy is
    /// forced to [`IterationStrategy::Dependency`] for the duration and
    /// restored before returning. Returns the number of entry
    /// explorations performed.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::IterationLimit`] if the exploration bound trips,
    /// or a budget/depth error propagated from clause execution.
    pub fn run_repair(&mut self, frontier: &[(usize, usize)]) -> Result<u64, AnalysisError> {
        const MAX_EXPLORATIONS: u64 = 5_000_000;
        self.init_profiling();
        let saved_strategy = self.strategy;
        self.strategy = IterationStrategy::Dependency;
        if let Some(span) = self.span.as_mut() {
            span.enter("repair");
        }
        self.iter += 1;
        for &e in frontier {
            if self.queued.insert(e) {
                self.worklist.push_back(e);
            }
        }
        let result = self.drain_repair_worklist(MAX_EXPLORATIONS);
        self.strategy = saved_strategy;
        if let Some(span) = self.span.as_mut() {
            span.exit();
        }
        result?;
        Ok(self.explorations)
    }

    /// The drain loop of [`Self::run_repair`], split out so the strategy
    /// restore straddles it on both the success and error paths.
    fn drain_repair_worklist(&mut self, max_explorations: u64) -> Result<(), AnalysisError> {
        while let Some((p, i)) = self.worklist.pop_front() {
            self.queued.remove(&(p, i));
            if self.explorations > max_explorations {
                return Err(AnalysisError::IterationLimit);
            }
            self.check_budget()?;
            self.stats.note_heap(self.frame.heap.len());
            self.stats.note_trail(self.frame.trail.len());
            self.frame.heap.clear();
            self.frame.trail.clear();
            self.frame.clear_envs();
            self.frame.e = None;
            self.depth = 0;
            self.explore_entry(p, i)?;
        }
        Ok(())
    }

    /// The extension table accumulated so far.
    pub fn table(&self) -> &ExtensionTable {
        &self.table
    }

    /// The pattern interner the table's entry ids resolve through.
    pub fn interner(&self) -> &SessionInterner {
        &self.interner
    }

    /// Consume the machine, keeping its extension table (so a session can
    /// carry the memo entries into the next query).
    pub fn into_table(self) -> ExtensionTable {
        self.table
    }

    /// Consume the machine, keeping its extension table *and* interner —
    /// the pair a session persists across queries (the ids in the table
    /// are only meaningful together with this interner, and its memo
    /// caches stay warm for the next query).
    pub fn into_parts(self) -> (ExtensionTable, SessionInterner) {
        (self.table, self.interner)
    }

    /// Restrict the abstract domain (precision ablation). Patterns are
    /// weakened at every extraction boundary; the full config is the
    /// identity.
    pub fn set_domain_config(&mut self, config: DomainConfig) {
        self.config = config;
    }

    /// Choose how the global fixpoint iterates (the paper restarts from
    /// scratch; dependency tracking skips provably-unchanged entries).
    pub fn set_strategy(&mut self, strategy: IterationStrategy) {
        self.strategy = strategy;
    }

    /// Record that the current exploration read `(pred, idx)`; the
    /// worklist propagates changes along the reverse edges, so plain
    /// direct dependencies suffice. Recorded under **both** iteration
    /// strategies: the dependency strategy drives its worklist with the
    /// edges, and incremental re-analysis needs them to compute the
    /// invalidation cone of an edit no matter how the table was built.
    fn note_dep(&mut self, pred: usize, idx: usize) {
        let version = self.table.version(pred, idx);
        if let Some(frame) = self.dep_stack.last_mut() {
            frame.push((pred, idx, version));
        }
    }

    fn enqueue_dependents(&mut self, pred: usize, idx: usize) {
        if let Some(deps) = self.rev_deps.get(&(pred, idx)) {
            for &d in deps {
                if self.queued.insert(d) {
                    self.worklist.push_back(d);
                }
            }
        }
    }

    /// The abstract heap (read access, for tooling and tests).
    pub fn heap(&self) -> &[ACell] {
        &self.frame.heap
    }

    /// Mutable access to the abstract heap, for building cells directly
    /// (tooling and tests; the analyzer itself never needs this).
    pub fn heap_mut(&mut self) -> &mut Vec<ACell> {
        &mut self.frame.heap
    }

    /// Abstractly unify two cells on this machine's heap (the `s_unify`
    /// of §4.1). Exposed so soundness properties of the unifier can be
    /// tested directly against concrete unification.
    pub fn unify_cells(&mut self, a: ACell, b: ACell) -> bool {
        self.unify(a, b)
    }

    /// Extract a (possibly weakened) pattern for the current config.
    fn extract_pattern(&self, args: &[ACell]) -> Pattern {
        let p = extract(&self.frame.heap, args, self.depth_k);
        if self.config.is_full() {
            p
        } else {
            p.weaken(self.config)
        }
    }

    /// Extract and intern in one step: the id-returning form every table
    /// consult and update goes through. In the full domain (the common
    /// case) the pattern is built in the machine's scratch buffers and
    /// interned clone-on-miss, so a repeat extraction never allocates.
    fn extract_pattern_id(&mut self, args: &[ACell]) -> PatternId {
        if self.config.is_full() {
            let mut scratch = std::mem::take(&mut self.extract_scratch);
            let p = extract_with(&self.frame.heap, args, self.depth_k, &mut scratch);
            let id = self.interner.intern_ref(p);
            self.extract_scratch = scratch;
            id
        } else {
            let p = self.extract_pattern(args);
            self.interner.intern(p)
        }
    }

    // ----- the reinterpreted `call` (Figure 5) -----

    /// Abstractly invoke predicate `pred` with arguments in `A1..An`.
    /// Returns whether the call (abstractly) succeeds; on success the
    /// argument cells have been unified with the summarized success
    /// pattern.
    fn solve_call(&mut self, pred: usize) -> Result<bool, AnalysisError> {
        if self.depth > self.max_depth {
            return Err(AnalysisError::DepthLimit);
        }
        self.check_budget()?;
        self.call_count += 1;
        let arity = self.program.predicates[pred].key.arity;
        let mut caller_args = self.cell_pool.pop().unwrap_or_default();
        caller_args.clear();
        caller_args.extend_from_slice(&self.frame.x[..arity]);
        // Interned consult, identical in both table modes: build + intern
        // the calling pattern once, then the lookup is a single id-indexed
        // probe (the Linear rescan — and the structural matcher that
        // used to avoid it — are gone; `ExtensionTable::find` asserts
        // probe/scan parity in debug builds).
        let t0 = self.profile_timing.then(Stopwatch::start);
        let cp = self.extract_pattern_id(&caller_args);
        let found = self.table.find(pred, cp);
        if let Some(t0) = t0 {
            let consult_ns = t0.elapsed_ns();
            self.table_ns += consult_ns;
            self.consult_hist.record(consult_ns);
            if let Some(span) = self.span.as_mut() {
                span.record("et-consult", 1, consult_ns);
            }
        }
        if self.tracer.is_some() {
            let pattern = self
                .extract_pattern(&caller_args)
                .display(&self.program.interner);
            let hit = found.is_some();
            let p2 = pattern.clone();
            self.trace(|prog| TraceEvent::CallPattern {
                pred,
                name: Self::pred_name(prog, pred),
                pattern: p2,
            });
            self.trace(|prog| TraceEvent::EtConsult {
                pred,
                name: Self::pred_name(prog, pred),
                pattern,
                hit,
            });
        }
        let entry_idx = match found {
            Some(idx) => {
                let explored = match self.strategy {
                    // The paper's scheme: explored once per iteration.
                    IterationStrategy::GlobalRestart => {
                        self.table.entry(pred, idx).explored_iter == self.iter
                    }
                    // Worklist scheme: an existing entry is only explored
                    // through the worklist (or while already on the
                    // stack); calls just read the current summary.
                    IterationStrategy::Dependency => true,
                };
                if explored {
                    let success = self.table.entry(pred, idx).success;
                    self.note_dep(pred, idx);
                    let ok = match success {
                        Some(sp) => self.apply_success(&caller_args, sp),
                        None => false,
                    };
                    self.cell_pool.push(caller_args);
                    return Ok(ok);
                }
                self.table.mark_explored(pred, idx, self.iter);
                idx
            }
            None => {
                // The consult above already built and interned the id;
                // the insert reuses it as-is.
                if self.tracer.is_some() {
                    let pattern = self.interner.resolve(cp).display(&self.program.interner);
                    self.trace(|prog| TraceEvent::EtInsert {
                        pred,
                        name: Self::pred_name(prog, pred),
                        pattern,
                    });
                }
                let idx = self.table.insert(pred, cp, self.iter);
                if self.record_provenance {
                    // Derivation context: the clause being explored when
                    // this call happened (none for the entry goal). Only
                    // already-interned ids are stored, so recording can
                    // never perturb the interner or its counters.
                    let (origin, parent_call) = match self.prov_stack.last() {
                        Some(&(caller, clause, parent_call)) => (
                            Some(DerivationOrigin {
                                pred: caller,
                                clause,
                            }),
                            Some(parent_call),
                        ),
                        None => (None, None),
                    };
                    self.table
                        .record_insert_provenance(pred, idx, origin, parent_call, self.iter);
                }
                idx
            }
        };
        self.explore_entry(pred, entry_idx)?;
        self.note_dep(pred, entry_idx);
        let success = self.table.entry(pred, entry_idx).success;
        let ok = match success {
            Some(sp) => self.apply_success(&caller_args, sp),
            None => false,
        };
        self.cell_pool.push(caller_args);
        Ok(ok)
    }

    /// Explore every clause of `(pred, entry_idx)` on fresh
    /// materializations of its calling pattern, summarizing successes.
    fn explore_entry(&mut self, pred: usize, entry_idx: usize) -> Result<(), AnalysisError> {
        if self.depth > self.max_depth {
            return Err(AnalysisError::DepthLimit);
        }
        if self.strategy == IterationStrategy::Dependency
            && !self.in_progress.insert((pred, entry_idx))
        {
            return Ok(());
        }
        self.explorations += 1;
        let frame_watch = self.profile_timing.then(Stopwatch::start);
        if frame_watch.is_some() {
            self.pred_timer_stack.push(0);
            self.pred_instr_stack.push((self.frame.executed, 0));
            if let Some(span) = self.span.as_mut() {
                span.enter(&self.pred_names[pred]);
            }
        }
        let call_pattern = self.table.entry(pred, entry_idx).call;

        // Explore every clause on a fresh materialization of the calling
        // pattern (the `abstract(X, Xα) … p(Xα)` of §5), summarizing
        // success patterns into the table and failing to the next clause.
        self.dep_stack.push(Vec::new());
        let num_clauses = self.program.predicates[pred].clause_entries.len();
        for clause_idx in 0..num_clauses {
            let entry = self.program.predicates[pred].clause_entries[clause_idx];
            let trail_mark = self.frame.trail.len();
            let heap_mark = self.frame.heap.len();
            let env_mark = self.frame.envs.len();
            let saved_e = self.frame.e;

            self.trace(|prog| TraceEvent::ClauseEnter {
                pred,
                name: Self::pred_name(prog, pred),
                clause: clause_idx,
            });
            let t0 = self.profile_timing.then(Stopwatch::start);
            let mut callee_args = self.cell_pool.pop().unwrap_or_default();
            materialize_into(
                &mut self.frame.heap,
                self.interner.resolve(call_pattern),
                &mut self.mat_done,
                &mut callee_args,
            );
            if let Some(t0) = t0 {
                self.materialize_ns += t0.elapsed_ns();
            }
            for (i, cell) in callee_args.iter().enumerate() {
                self.frame.x[i] = *cell;
            }
            if self.record_provenance {
                self.prov_stack.push((pred, clause_idx, call_pattern));
            }
            let ok = self.run_clause(entry)?;
            if self.record_provenance {
                self.prov_stack.pop();
            }
            if ok {
                // Fast path: if the stored summary already equals this
                // clause's success pattern, nothing can change.
                let t0 = self.profile_timing.then(Stopwatch::start);
                let unchanged = self.config.is_full()
                    && match self.table.entry(pred, entry_idx).success {
                        Some(sp) => {
                            let mut scratch = std::mem::take(&mut self.match_scratch);
                            let hit = crate::matcher::matches_with(
                                &self.frame.heap,
                                &callee_args,
                                self.depth_k,
                                self.interner.resolve(sp),
                                &mut scratch,
                            );
                            self.match_scratch = scratch;
                            hit
                        }
                        None => false,
                    };
                if let Some(t0) = t0 {
                    self.table_ns += t0.elapsed_ns();
                }
                if !unchanged {
                    let t0 = self.profile_timing.then(Stopwatch::start);
                    let sp = self.extract_pattern_id(&callee_args);
                    if let Some(t0) = t0 {
                        self.extract_ns += t0.elapsed_ns();
                    }
                    let t0 = self.profile_timing.then(Stopwatch::start);
                    let grew = self.table.update_success(
                        pred,
                        entry_idx,
                        sp,
                        &mut self.interner,
                        Some((clause_idx, self.iter)),
                    );
                    if let Some(t0) = t0 {
                        self.table_ns += t0.elapsed_ns();
                    }
                    if self.tracer.is_some() {
                        let summary = self
                            .table
                            .entry(pred, entry_idx)
                            .success
                            .map(|sp| self.interner.resolve(sp).display(&self.program.interner))
                            .unwrap_or_default();
                        self.trace(|prog| TraceEvent::EtUpdate {
                            pred,
                            name: Self::pred_name(prog, pred),
                            grew,
                            summary,
                        });
                    }
                    if grew && self.strategy == IterationStrategy::Dependency {
                        self.enqueue_dependents(pred, entry_idx);
                        // Self-recursion: this entry must also settle.
                        if self.queued.insert((pred, entry_idx)) {
                            self.worklist.push_back((pred, entry_idx));
                        }
                    }
                }
            }
            // Forced failure to the next clause: undo everything.
            self.stats.backtracks += 1;
            self.trace(|prog| TraceEvent::ForcedFail {
                pred,
                name: Self::pred_name(prog, pred),
                clause: clause_idx,
            });
            self.undo_to(trail_mark, heap_mark);
            self.frame.truncate_envs(env_mark);
            self.frame.e = saved_e;
            self.cell_pool.push(callee_args);
        }

        if let Some(watch) = frame_watch {
            let total = watch.elapsed_ns();
            let child = self.pred_timer_stack.pop().unwrap_or(0);
            self.pred_self_ns[pred] += total.saturating_sub(child);
            if let Some(parent) = self.pred_timer_stack.last_mut() {
                *parent += total;
            }
            // Instruction heat, same self/child split as the timer.
            let (mark, child_instr) = self.pred_instr_stack.pop().unwrap_or((0, 0));
            let total_instr = self.frame.executed_since(mark);
            self.pred_instr_self[pred] += total_instr.saturating_sub(child_instr);
            if let Some((_, parent_child)) = self.pred_instr_stack.last_mut() {
                *parent_child += total_instr;
            }
            if let Some(span) = self.span.as_mut() {
                span.exit();
            }
        }

        // All clauses explored: record dependencies (both strategies —
        // see `note_dep`) and propagate.
        let deps = self.dep_stack.pop().unwrap_or_default();
        for &(p, i, _) in &deps {
            self.rev_deps
                .entry((p, i))
                .or_default()
                .insert((pred, entry_idx));
        }
        self.table.set_deps(pred, entry_idx, deps);
        if self.strategy == IterationStrategy::Dependency {
            self.in_progress.remove(&(pred, entry_idx));
        }
        Ok(())
    }

    /// Unify the caller's argument cells with a fresh materialization of
    /// the summarized success pattern (deterministic return).
    fn apply_success(&mut self, caller_args: &[ACell], sp: PatternId) -> bool {
        let mut cells = std::mem::take(&mut self.apply_args);
        materialize_into(
            &mut self.frame.heap,
            self.interner.resolve(sp),
            &mut self.mat_done,
            &mut cells,
        );
        let mut ok = true;
        for (arg, cell) in caller_args.iter().zip(&cells) {
            if !self.unify(*arg, *cell) {
                ok = false;
                break;
            }
        }
        self.apply_args = cells;
        ok
    }

    // ----- clause execution -----

    /// Execute one clause body through the shared dispatch loop. Calls
    /// recurse through [`Self::solve_call`]; there is no backtracking
    /// (calls are deterministic), so failure simply reports `false` and
    /// the caller undoes the trail.
    fn run_clause(&mut self, entry: usize) -> Result<bool, AnalysisError> {
        let program = self.program;
        let saved_e = self.frame.e;
        self.frame.pc = entry;
        loop {
            match awam_exec::step(self, program)? {
                Flow::Continue => {}
                Flow::Fail => {
                    self.frame.e = saved_e;
                    return Ok(false);
                }
                Flow::Done => return Ok(true),
            }
        }
    }

    /// Push a child cell for a complex-term instantiation: `var` children
    /// are fresh unbound variables, others are abstract leaves.
    fn push_child(&mut self, child: AbsLeaf) {
        let a = self.frame.heap.len();
        if child == AbsLeaf::Var {
            self.frame.heap.push(ACell::Ref(a));
        } else {
            self.frame.heap.push(ACell::Abs(child));
        }
    }

    /// Deep-copy the (unaliased) type subgraph rooted at heap address
    /// `src`; returns the new root address.
    fn copy_type(&mut self, src: usize) -> usize {
        let (cell, _) = deref(&self.frame.heap, ACell::Ref(src));
        match cell {
            ACell::Ref(_) => {
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Ref(a));
                a
            }
            ACell::Abs(l) => {
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Abs(l));
                a
            }
            ACell::AbsList(e) => {
                let copied = self.copy_type(e);
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::AbsList(copied));
                a
            }
            ACell::Con(s) => {
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Con(s));
                a
            }
            ACell::Int(i) => {
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Int(i));
                a
            }
            ACell::Lis(p) => {
                let car = self.copy_type(p);
                let cdr = self.copy_type(p + 1);
                let pair = self.frame.heap.len();
                self.frame.heap.push(ACell::Ref(car));
                self.frame.heap.push(ACell::Ref(cdr));
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Lis(pair));
                a
            }
            ACell::Str(p) => {
                let ACell::Fun(f, n) = self.frame.heap[p] else {
                    unreachable!()
                };
                let args: Vec<usize> = (0..n as usize).map(|i| self.copy_type(p + 1 + i)).collect();
                let h = self.frame.heap.len();
                self.frame.heap.push(ACell::Fun(f, n));
                for arg in args {
                    self.frame.heap.push(ACell::Ref(arg));
                }
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Str(h));
                a
            }
            ACell::Fun(..) => unreachable!(),
        }
    }

    // ----- abstract unification -----

    /// Abstract unification of two cells (§4.1's `s_unify` lifted to the
    /// heap). Sound: the result state covers every concrete state any
    /// covered pair of terms could unify into.
    pub(crate) fn unify(&mut self, a: ACell, b: ACell) -> bool {
        // Scratch reuse: `unify` fires on nearly every abstract get/unify
        // instruction, so its worklist and pair-memo live on the machine
        // (taken/returned around the call) instead of being reallocated
        // per unification.
        let mut stack = std::mem::take(&mut self.unify_stack);
        let mut seen = std::mem::take(&mut self.unify_seen);
        stack.clear();
        seen.clear();
        stack.push((a, b));
        let mut ok = true;
        while let Some((a, b)) = stack.pop() {
            let (ca, aa) = deref(&self.frame.heap, a);
            let (cb, ab) = deref(&self.frame.heap, b);
            if let (Some(x), Some(y)) = (aa, ab) {
                if x == y {
                    continue;
                }
                let key = (x.min(y), x.max(y));
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
            }
            if !self.unify_one(ca, aa, cb, ab, &mut stack) {
                ok = false;
                break;
            }
        }
        self.unify_stack = stack;
        self.unify_seen = seen;
        ok
    }

    #[allow(clippy::too_many_lines)]
    fn unify_one(
        &mut self,
        ca: ACell,
        aa: Option<usize>,
        cb: ACell,
        ab: Option<usize>,
        stack: &mut Vec<(ACell, ACell)>,
    ) -> bool {
        use ACell::*;
        match (ca, cb) {
            // Free variables bind like in the concrete machine.
            (Ref(x), _) => {
                let target = attach(cb, ab);
                self.bind(x, target);
                true
            }
            (_, Ref(y)) => {
                let target = attach(ca, aa);
                self.bind(y, target);
                true
            }
            // Two abstract leaves: narrow to the unification type and
            // merge the cells (aliasing!).
            (Abs(t1), Abs(t2)) => {
                let (x, y) = (aa.expect("abs on heap"), ab.expect("abs on heap"));
                match t1.unify(t2) {
                    None => false,
                    Some(t) => {
                        if t != t1 {
                            self.rebind(x, Abs(t));
                        }
                        self.bind(y, Ref(x));
                        true
                    }
                }
            }
            (Abs(t), Con(s)) | (Con(s), Abs(t)) => {
                let x = if matches!(ca, Abs(_)) { aa } else { ab };
                if t.admits_atom() {
                    self.bind(x.expect("abs on heap"), Con(s));
                    true
                } else {
                    false
                }
            }
            (Abs(t), Int(i)) | (Int(i), Abs(t)) => {
                let x = if matches!(ca, Abs(_)) { aa } else { ab };
                if t.admits_integer() {
                    self.bind(x.expect("abs on heap"), Int(i));
                    true
                } else {
                    false
                }
            }
            (Abs(t), Lis(p)) | (Lis(p), Abs(t)) => {
                let x = if matches!(ca, Abs(_)) { aa } else { ab };
                if !t.admits_list() {
                    return false;
                }
                self.bind(x.expect("abs on heap"), Lis(p));
                let child = t.instance_child();
                self.constrain(ACell::Ref(p), child, &mut Vec::new())
                    && self.constrain(ACell::Ref(p + 1), child, &mut Vec::new())
            }
            (Abs(t), Str(p)) | (Str(p), Abs(t)) => {
                let x = if matches!(ca, Abs(_)) { aa } else { ab };
                if !t.admits_struct() {
                    return false;
                }
                self.bind(x.expect("abs on heap"), Str(p));
                let ACell::Fun(_, n) = self.frame.heap[p] else {
                    unreachable!()
                };
                let child = t.instance_child();
                (0..n as usize)
                    .all(|i| self.constrain(ACell::Ref(p + 1 + i), child, &mut Vec::new()))
            }
            (AbsList(e), Con(s)) | (Con(s), AbsList(e)) => {
                let x = if matches!(ca, AbsList(_)) { aa } else { ab };
                let _ = e;
                if s == absdom::nil_symbol() {
                    self.bind(x.expect("abs on heap"), Con(s));
                    true
                } else {
                    false
                }
            }
            (AbsList(e), Lis(p)) | (Lis(p), AbsList(e)) => {
                let x = if matches!(ca, AbsList(_)) { aa } else { ab };
                self.bind(x.expect("abs on heap"), Lis(p));
                // car ⊓ α; cdr ⊓ α-list.
                let car_type = self.copy_type(e);
                let cdr_elem = self.copy_type(e);
                let cdr_list = self.frame.heap.len();
                self.frame.heap.push(ACell::AbsList(cdr_elem));
                stack.push((ACell::Ref(p), ACell::Ref(car_type)));
                stack.push((ACell::Ref(p + 1), ACell::Ref(cdr_list)));
                true
            }
            (AbsList(e1), AbsList(e2)) => {
                let (x, y) = (aa.expect("abs on heap"), ab.expect("abs on heap"));
                // list(α) ⊓ list(β) = list(α ⊓ β) — but when the element
                // types clash the intersection is still {[]} (both sides
                // admit the empty list), not ⊥.
                let trail_mark = self.frame.trail.len();
                let heap_mark = self.frame.heap.len();
                let c1 = self.copy_type(e1);
                let c2 = self.copy_type(e2);
                if self.unify(ACell::Ref(c1), ACell::Ref(c2)) {
                    self.rebind(x, AbsList(c1));
                } else {
                    self.undo_to(trail_mark, heap_mark);
                    let nil = ACell::Con(absdom::nil_symbol());
                    self.rebind(x, nil);
                }
                self.bind(y, Ref(x));
                true
            }
            (AbsList(e), Abs(t)) | (Abs(t), AbsList(e)) => {
                let (lx, tx) = if matches!(ca, AbsList(_)) {
                    (aa.expect("on heap"), ab.expect("on heap"))
                } else {
                    (ab.expect("on heap"), aa.expect("on heap"))
                };
                match t {
                    AbsLeaf::Any | AbsLeaf::NonVar | AbsLeaf::Var => {
                        self.bind(tx, Ref(lx));
                        true
                    }
                    AbsLeaf::Ground => {
                        if !self.constrain(ACell::Ref(e), AbsLeaf::Ground, &mut Vec::new()) {
                            return false;
                        }
                        self.bind(tx, Ref(lx));
                        true
                    }
                    AbsLeaf::Const | AbsLeaf::Atom => {
                        // list ∩ const = {[]}.
                        let nil = ACell::Con(absdom::nil_symbol());
                        self.rebind(lx, nil);
                        self.bind(tx, nil);
                        true
                    }
                    AbsLeaf::Integer => false,
                }
            }
            // Concrete/concrete: as in the standard machine.
            (Con(x), Con(y)) => x == y,
            (Int(x), Int(y)) => x == y,
            (Lis(x), Lis(y)) => {
                stack.push((ACell::Ref(x), ACell::Ref(y)));
                stack.push((ACell::Ref(x + 1), ACell::Ref(y + 1)));
                true
            }
            (Str(x), Str(y)) => {
                let (ACell::Fun(fx, nx), ACell::Fun(fy, ny)) =
                    (self.frame.heap[x], self.frame.heap[y])
                else {
                    unreachable!()
                };
                if fx != fy || nx != ny {
                    return false;
                }
                for i in 0..nx as usize {
                    stack.push((ACell::Ref(x + 1 + i), ACell::Ref(y + 1 + i)));
                }
                true
            }
            _ => false,
        }
    }

    /// Constrain `cell` to (the meet with) a leaf type, descending through
    /// concrete structure. `visiting` guards against cyclic terms.
    pub(crate) fn constrain(
        &mut self,
        cell: ACell,
        leaf: AbsLeaf,
        visiting: &mut Vec<usize>,
    ) -> bool {
        if leaf == AbsLeaf::Any || leaf == AbsLeaf::Var {
            // `any` constrains nothing; a free variable unifies with
            // anything and imposes nothing.
            return true;
        }
        let (cell, addr) = deref(&self.frame.heap, cell);
        match cell {
            ACell::Ref(a) => {
                // A free variable narrowed by a type: it becomes an
                // instance of that type.
                self.bind(a, ACell::Abs(leaf));
                true
            }
            ACell::Abs(t) => match t.unify(leaf) {
                None => false,
                Some(new) => {
                    let a = addr.expect("abs on heap");
                    if new != t {
                        self.rebind(a, ACell::Abs(new));
                    }
                    true
                }
            },
            ACell::AbsList(e) => {
                let a = addr.expect("abs on heap");
                match leaf {
                    AbsLeaf::NonVar => true,
                    AbsLeaf::Ground => self.constrain(ACell::Ref(e), AbsLeaf::Ground, visiting),
                    AbsLeaf::Const | AbsLeaf::Atom => {
                        self.rebind(a, ACell::Con(absdom::nil_symbol()));
                        true
                    }
                    AbsLeaf::Integer => false,
                    AbsLeaf::Any | AbsLeaf::Var => true,
                }
            }
            ACell::Con(_) => leaf.admits_atom(),
            ACell::Int(_) => leaf.admits_integer(),
            ACell::Lis(p) => {
                if !leaf.admits_list() {
                    return false;
                }
                if visiting.contains(&p) {
                    return true;
                }
                visiting.push(p);
                let child = if leaf == AbsLeaf::Ground {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::Any
                };
                let ok = self.constrain(ACell::Ref(p), child, visiting)
                    && self.constrain(ACell::Ref(p + 1), child, visiting);
                visiting.pop();
                ok
            }
            ACell::Str(p) => {
                if !leaf.admits_struct() {
                    return false;
                }
                if visiting.contains(&p) {
                    return true;
                }
                visiting.push(p);
                let ACell::Fun(_, n) = self.frame.heap[p] else {
                    unreachable!()
                };
                let child = if leaf == AbsLeaf::Ground {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::Any
                };
                let ok =
                    (0..n as usize).all(|i| self.constrain(ACell::Ref(p + 1 + i), child, visiting));
                visiting.pop();
                ok
            }
            ACell::Fun(..) => unreachable!(),
        }
    }

    // ----- abstract builtins -----

    fn abstract_builtin(&mut self, b: Builtin) -> bool {
        use Builtin::*;
        match b {
            True | Nl | Halt | Write | Tab => true,
            Fail => false,
            // On success of `X is E`, E was evaluable (ground) and X is an
            // integer.
            Is => {
                let expr = self.frame.x[1];
                let out = self.frame.x[0];
                if !self.constrain(expr, AbsLeaf::Ground, &mut Vec::new()) {
                    return false;
                }
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Abs(AbsLeaf::Integer));
                self.unify(out, ACell::Ref(a))
            }
            // Arithmetic comparisons ground both sides.
            Lt | Gt | Le | Ge | ArithEq | ArithNe => {
                let (l, r) = (self.frame.x[0], self.frame.x[1]);
                self.constrain(l, AbsLeaf::Ground, &mut Vec::new())
                    && self.constrain(r, AbsLeaf::Ground, &mut Vec::new())
            }
            Unify => {
                let (l, r) = (self.frame.x[0], self.frame.x[1]);
                self.unify(l, r)
            }
            // `\=`, `==`, `\==`, `@<` … succeed abstractly with no
            // bindings (sound over-approximation of their success set).
            NotUnify | StructEq | StructNe | TermLt | TermGt | TermLe | TermGe => true,
            Var => {
                let (cell, addr) = deref(&self.frame.heap, self.frame.x[0]);
                match cell {
                    ACell::Ref(_) => true,
                    ACell::Abs(t) => match t.meet(AbsLeaf::Var) {
                        Some(m) => {
                            if m != t {
                                self.rebind(addr.expect("abs on heap"), ACell::Abs(m));
                            }
                            true
                        }
                        None => false,
                    },
                    _ => false,
                }
            }
            Nonvar => {
                let c = self.frame.x[0];
                self.type_test(c, AbsLeaf::NonVar)
            }
            Atom => self.type_test(self.frame.x[0], AbsLeaf::Atom),
            Integer | Number => self.type_test(self.frame.x[0], AbsLeaf::Integer),
            Atomic => self.type_test(self.frame.x[0], AbsLeaf::Const),
            Compound => {
                let (cell, _) = deref(&self.frame.heap, self.frame.x[0]);
                match cell {
                    ACell::Lis(_) | ACell::Str(_) | ACell::AbsList(_) => true,
                    ACell::Abs(t) => t.admits_list() || t.admits_struct(),
                    _ => false,
                }
            }
            // Conservative: outputs become `any`-typed; inputs unchanged.
            FunctorOf => {
                let name = self.frame.x[1];
                let arity = self.frame.x[2];
                let c = self.frame.heap.len();
                self.frame.heap.push(ACell::Abs(AbsLeaf::Const));
                let i = self.frame.heap.len();
                self.frame.heap.push(ACell::Abs(AbsLeaf::Integer));
                self.unify(name, ACell::Ref(c)) && self.unify(arity, ACell::Ref(i))
            }
            Arg => {
                let out = self.frame.x[2];
                let a = self.frame.heap.len();
                self.frame.heap.push(ACell::Abs(AbsLeaf::Any));
                self.unify(out, ACell::Ref(a))
            }
        }
    }

    /// Narrow a cell to the meet with a type-test's type; fails when the
    /// meet is empty.
    fn type_test(&mut self, cell: ACell, leaf: AbsLeaf) -> bool {
        let (c, _) = deref(&self.frame.heap, cell);
        match c {
            // A (definitely) free variable fails every nonvar type test.
            ACell::Ref(_) => false,
            _ => self.constrain(cell, leaf, &mut Vec::new()),
        }
    }

    // ----- heap plumbing -----

    /// Bind with value trailing (the substrate's [`awam_exec::bind`] with
    /// this interpretation's `(addr, old)` trail records).
    fn bind(&mut self, addr: usize, cell: ACell) {
        awam_exec::bind(self, addr, cell);
    }

    /// Same as bind (named for narrowing sites, where the cell is open but
    /// not a plain unbound variable).
    fn rebind(&mut self, addr: usize, cell: ACell) {
        self.bind(addr, cell);
    }

    fn undo_to(&mut self, trail_mark: usize, heap_mark: usize) {
        self.stats.note_heap(self.frame.heap.len());
        self.stats.note_trail(self.frame.trail.len());
        awam_exec::unwind_trail(self, trail_mark);
        self.frame.heap.truncate(heap_mark);
    }
}

fn attach(cell: ACell, addr: Option<usize>) -> ACell {
    match (cell, addr) {
        // Open or compound cells with an address: reference them.
        (ACell::Abs(_) | ACell::AbsList(_) | ACell::Ref(_), Some(a)) => ACell::Ref(a),
        (ACell::Ref(a), None) => ACell::Ref(a),
        (other, _) => other,
    }
}

fn const_cell(c: WamConst) -> ACell {
    match c {
        WamConst::Atom(a) => ACell::Con(a),
        WamConst::Int(i) => ACell::Int(i),
    }
}
