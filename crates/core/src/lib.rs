//! # awam-core — the abstract WAM dataflow analyzer
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Compiling Dataflow Analysis of Logic Programs* (Tan & Lin, PLDI 1992):
//! a global dataflow analyzer (mode, type, and variable-aliasing
//! inference) that runs as a **reinterpretation of the WAM instruction
//! set** over an abstract domain, instead of as a meta-interpreter or a
//! transformed program hosted on Prolog.
//!
//! The key pieces map one-to-one onto the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | §3 abstract domain | [`absdom`] (shared crate) |
//! | §4.1 abstract terms as variables | [`acell::ACell::Abs`], value-trailed instantiation |
//! | §4.2 reinterpreted `get_list` (Figure 4) | [`machine`] `get_list` |
//! | §5 reinterpreted `call`/`proceed` (Figure 5) | [`machine`] `solve_call` |
//! | §6 extension table as linear list | [`table::ExtensionTable`] |
//! | term-depth restriction k = 4 | [`absdom::DEFAULT_TERM_DEPTH`] |
//!
//! # Quickstart
//!
//! ```
//! use awam_core::Analyzer;
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program("
//!     nrev([], []).
//!     nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
//!     app([], L, L).
//!     app([H|T], L, [H|R]) :- app(T, L, R).
//! ")?;
//! let mut analyzer = Analyzer::compile(&program)?;
//! let analysis = analyzer.analyze_query("nrev", &["glist", "var"])?;
//! println!("{}", analysis.report(&analyzer));
//! // The analyzer infers that nrev/2 maps a ground list to a ground list:
//! let nrev = analysis.predicate("nrev", 2).unwrap();
//! let success = nrev.success_summary().unwrap();
//! assert!(success.node_is_ground(success.root(1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod acell;
pub mod analyzer;
pub mod extract;
pub mod machine;
pub mod matcher;
pub mod report;
pub mod table;

pub use acell::ACell;
pub use analyzer::{Analysis, Analyzer, PredAnalysis};
pub use machine::{AbstractMachine, AnalysisError};
pub use report::ArgMode;
pub use table::{EtImpl, ExtensionTable};

/// How the global fixpoint iteration re-explores the program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IterationStrategy {
    /// The paper's scheme: every iteration restarts from the entry goal
    /// and re-explores every reached calling pattern.
    #[default]
    GlobalRestart,
    /// Semi-naive refinement (the "better algorithms" the paper's §6
    /// anticipates): each entry records which table entries its last
    /// exploration read; when none of them changed, re-exploration is
    /// skipped — the result is provably identical (tested).
    Dependency,
}
