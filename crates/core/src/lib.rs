//! # awam-core — the abstract WAM dataflow analyzer
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Compiling Dataflow Analysis of Logic Programs* (Tan & Lin, PLDI 1992):
//! a global dataflow analyzer (mode, type, and variable-aliasing
//! inference) that runs as a **reinterpretation of the WAM instruction
//! set** over an abstract domain, instead of as a meta-interpreter or a
//! transformed program hosted on Prolog.
//!
//! The key pieces map one-to-one onto the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | §3 abstract domain | [`absdom`] (shared crate) |
//! | §4.1 abstract terms as variables | [`acell::ACell::Abs`], value-trailed instantiation |
//! | §4.2 reinterpreted `get_list` (Figure 4) | [`machine`] `get_list` |
//! | §5 reinterpreted `call`/`proceed` (Figure 5) | [`machine`] `solve_call` |
//! | §6 extension table as linear list | [`table::ExtensionTable`] |
//! | term-depth restriction k = 4 | [`absdom::DEFAULT_TERM_DEPTH`] |
//!
//! # Quickstart
//!
//! ```
//! use awam_core::Analyzer;
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program("
//!     nrev([], []).
//!     nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
//!     app([], L, L).
//!     app([H|T], L, [H|R]) :- app(T, L, R).
//! ")?;
//! let analyzer = Analyzer::compile(&program)?;
//! let analysis = analyzer.analyze_query("nrev", &["glist", "var"])?;
//! println!("{}", analysis.report(&analyzer));
//! // The analyzer infers that nrev/2 maps a ground list to a ground list:
//! let nrev = analysis.predicate("nrev", 2).unwrap();
//! let success = nrev.success_summary().unwrap();
//! assert!(success.node_is_ground(success.root(1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Sessions and batch analysis
//!
//! [`Analyzer::analyze`] takes `&self`: a compiled analyzer is immutable
//! and can serve many queries, from many threads, concurrently. Two
//! layers build on that:
//!
//! * [`Session`] keeps the extension table alive across queries, so a
//!   repeated (or subsumed) entry goal is answered from the memo table
//!   with **zero** fixpoint iterations;
//! * [`Analyzer::analyze_batch`] fans independent entry goals out across
//!   std scoped threads, one private [`Session`] per goal.
//!
//! ```
//! use awam_core::{Analyzer, BatchGoal};
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let analyzer = Analyzer::compile(&program)?;
//! let goals = vec![
//!     BatchGoal::from_spec("app", &["glist", "glist", "var"])?,
//!     BatchGoal::from_spec("app", &["var", "var", "glist"])?,
//! ];
//! let results = analyzer.analyze_batch(&goals, 2);
//! assert!(results.iter().all(Result::is_ok));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod acell;
pub mod analyzer;
pub mod batch;
pub mod extract;
pub mod fault;
pub mod incremental;
pub mod machine;
pub mod matcher;
pub mod provenance;
pub mod report;
pub mod session;
pub mod table;

pub use acell::ACell;
pub use analyzer::{Analysis, Analyzer, AnalyzerBuilder, BatchGoal, PredAnalysis, ProfileData};
pub use batch::par_map;
pub use incremental::{migrate_parts, EditError, ProgramDiff, ProgramEdit, UpdateError, Workspace};
pub use machine::{AbstractMachine, AnalysisError};
pub use provenance::{ChainStep, DerivationReport, EntryDerivation, PredDerivations};
pub use report::ArgMode;
pub use session::{Session, SessionParts};
pub use table::{Derivation, DerivationOrigin, EtImpl, ExtensionTable, LubStep};

/// A stable 64-bit fingerprint of a program's source text (FNV-1a).
///
/// This is the cache key of the serving layer's compiled-program cache:
/// two registrations with byte-identical source share one compiled
/// [`Analyzer`]. The hash is deterministic across processes and
/// platforms (no per-process seed), so it can appear on the wire and in
/// logs. It is **not** collision-resistant against adversarial input;
/// a serving deployment that cannot trust its tenants should key on
/// `(tenant, fingerprint)` or verify source equality on hit.
pub fn program_fingerprint(source: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in source.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// How the global fixpoint iteration re-explores the program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IterationStrategy {
    /// The paper's scheme: every iteration restarts from the entry goal
    /// and re-explores every reached calling pattern.
    #[default]
    GlobalRestart,
    /// Semi-naive refinement (the "better algorithms" the paper's §6
    /// anticipates): each entry records which table entries its last
    /// exploration read; when none of them changed, re-exploration is
    /// skipped — the result is provably identical (tested).
    Dependency,
}
