//! Parallel fan-out over independent jobs with std scoped threads.
//!
//! The workspace builds offline (no rayon, no crossbeam), so this is the
//! one shared work-stealing-free driver: a fetch-add work queue over a
//! slice, `workers` OS threads, results returned in item order. The
//! analyzer's [`crate::Analyzer::analyze_batch`] and the batch benchmark
//! both run through it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` using up to `workers` OS threads; results come
/// back in item order. `workers` is clamped to `1..=items.len()`;
/// `workers <= 1` runs inline with no threads at all, so a 1-worker
/// batch is byte-for-byte the sequential loop.
///
/// `f` receives `(index, &item)`. Jobs are claimed dynamically (an atomic
/// cursor, not pre-chunking), so a slow item does not starve the other
/// workers.
///
/// # Panics
///
/// Propagates a panic from any worker (via `std::thread::scope` join).
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("no worker panicked holding a slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scope joined all workers")
                .expect("every claimed job stored a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8, 200] {
            let out = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }
}
