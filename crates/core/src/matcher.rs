//! Allocation-free comparison of heap arguments against a stored pattern.
//!
//! `matches(heap, args, k, pattern)` returns exactly
//! `extract(heap, args, k) == *pattern`, but without building the
//! extracted pattern: it simulates the extractor's canonical pre-order
//! numbering while walking the heap and the pattern in lockstep. On the
//! memoized path — the overwhelmingly common one — a `call` then costs a
//! structural walk with no allocation, which is what makes the compiled
//! analyzer's table consultation cheap (the paper's analyzer compared
//! tagged words the same way).
//!
//! The equivalence with extraction is asserted in debug builds at every
//! call site, so the whole test suite doubles as a differential test of
//! this matcher.

use crate::acell::ACell;
use crate::extract::{deref, AddrMap};
use absdom::{AbsLeaf, PNode, Pattern};

/// Does `extract(heap, args, depth_k)` equal `pattern`? (Allocation-free.)
pub fn matches(heap: &[ACell], args: &[ACell], depth_k: usize, pattern: &Pattern) -> bool {
    matches_with(heap, args, depth_k, pattern, &mut MatchScratch::default())
}

/// Reusable buffers for [`matches_with`] — one per machine, so the
/// per-clause fast-path check touches the allocator only while warming.
#[derive(Debug, Default)]
pub struct MatchScratch {
    open_map: AddrMap,
    pair_map: AddrMap,
    open: Vec<usize>,
    open_lists: Vec<usize>,
    visiting: Vec<usize>,
}

/// [`matches()`] through caller-provided scratch buffers.
pub fn matches_with(
    heap: &[ACell],
    args: &[ACell],
    depth_k: usize,
    pattern: &Pattern,
    scratch: &mut MatchScratch,
) -> bool {
    if args.len() != pattern.arity() {
        return false;
    }
    scratch.open_map.begin(heap.len());
    scratch.pair_map.begin(heap.len());
    scratch.open.clear();
    scratch.open_lists.clear();
    let mut m = Matcher {
        heap,
        depth_k,
        pattern,
        next: 0,
        open_map: std::mem::take(&mut scratch.open_map),
        pair_map: std::mem::take(&mut scratch.pair_map),
        open: std::mem::take(&mut scratch.open),
        open_lists: std::mem::take(&mut scratch.open_lists),
        visiting: std::mem::take(&mut scratch.visiting),
    };
    let mut ok = true;
    for (i, &arg) in args.iter().enumerate() {
        match m.walk(arg, 0) {
            Some(id) if id == pattern.root(i) => {}
            _ => {
                ok = false;
                break;
            }
        }
    }
    // Every pattern node must have been produced (same node count).
    let ok = ok && m.next == pattern.nodes().len();
    scratch.open_map = m.open_map;
    scratch.pair_map = m.pair_map;
    scratch.open = m.open;
    scratch.open_lists = m.open_lists;
    scratch.visiting = m.visiting;
    ok
}

struct Matcher<'a> {
    heap: &'a [ACell],
    depth_k: usize,
    pattern: &'a Pattern,
    /// The id extraction would assign to the next fresh node.
    next: usize,
    /// Shared open cells (addr → node id).
    open_map: AddrMap,
    /// Shared compound payloads (addr → node id).
    pair_map: AddrMap,
    /// `Lis`/`Str` payload addresses on the current walk path (the
    /// extractor's back-edge cut for cyclic terms).
    open: Vec<usize>,
    /// `AbsList` cell addresses on the current walk path.
    open_lists: Vec<usize>,
    /// Scratch cycle-guard for summary walks.
    visiting: Vec<usize>,
}

impl Matcher<'_> {
    /// Walk `cell`, checking it against the nodes extraction would emit;
    /// returns the node id the cell maps to, or `None` on mismatch.
    fn walk(&mut self, cell: ACell, depth: usize) -> Option<usize> {
        let (cell, addr) = deref(self.heap, cell);
        // Sharing lookups mirror the extractor exactly (ground cells are
        // never shared; checked lazily on the rare hit).
        match cell {
            ACell::Ref(_) | ACell::Abs(_) | ACell::AbsList(_) => {
                if let Some(a) = addr {
                    if let Some(n) = self.open_map.get(a) {
                        if matches!(cell, ACell::AbsList(_)) && self.open_lists.contains(&a) {
                            return self.summary_leaf(cell);
                        }
                        if !self.summarize(cell).is_ground() {
                            return Some(n);
                        }
                    }
                }
            }
            ACell::Lis(p) | ACell::Str(p) => {
                if let Some(n) = self.pair_map.get(p) {
                    if self.open.contains(&p) {
                        return self.summary_leaf(cell);
                    }
                    if !self.summarize(cell).is_ground() {
                        return Some(n);
                    }
                }
            }
            _ => {}
        }
        if depth >= self.depth_k {
            return self.summary_leaf(cell);
        }
        match cell {
            ACell::Ref(a) => {
                let id = self.fresh()?;
                if !matches!(self.pattern.node(id), PNode::Leaf(AbsLeaf::Var)) {
                    return None;
                }
                self.open_map.insert(a, id);
                Some(id)
            }
            ACell::Abs(l) => {
                let id = self.fresh()?;
                if *self.pattern.node(id) != PNode::Leaf(l) {
                    return None;
                }
                if let Some(a) = addr {
                    if !l.is_ground() {
                        self.open_map.insert(a, id);
                    }
                }
                Some(id)
            }
            ACell::AbsList(e) => {
                let id = self.fresh()?;
                let PNode::List(elem_id) = *self.pattern.node(id) else {
                    return None;
                };
                if let Some(a) = addr {
                    self.open_map.insert(a, id);
                    self.open_lists.push(a);
                }
                let got = self.walk(ACell::Ref(e), depth + 1);
                if addr.is_some() {
                    self.open_lists.pop();
                }
                (got? == elem_id).then_some(id)
            }
            ACell::Con(s) => {
                let id = self.fresh()?;
                (*self.pattern.node(id) == PNode::Atom(s)).then_some(id)
            }
            ACell::Int(i) => {
                let id = self.fresh()?;
                (*self.pattern.node(id) == PNode::Int(i)).then_some(id)
            }
            ACell::Lis(p) => {
                let id = self.fresh()?;
                let pattern = self.pattern;
                let PNode::Struct(f, ref kids) = *pattern.node(id) else {
                    return None;
                };
                if !absdom::is_dot_symbol(f) || kids.len() != 2 {
                    return None;
                }
                let (car_id, cdr_id) = (kids[0], kids[1]);
                self.pair_map.insert(p, id);
                self.open.push(p);
                let car = self.walk(ACell::Ref(p), depth + 1)?;
                if car != car_id {
                    return None;
                }
                let cdr = self.walk(ACell::Ref(p + 1), depth + 1)?;
                self.open.pop();
                (cdr == cdr_id).then_some(id)
            }
            ACell::Str(p) => {
                let id = self.fresh()?;
                let ACell::Fun(f, n) = self.heap[p] else {
                    unreachable!("Str points at Fun")
                };
                let pattern = self.pattern;
                let PNode::Struct(g, ref kids) = *pattern.node(id) else {
                    return None;
                };
                if g != f || kids.len() != n as usize {
                    return None;
                }
                self.pair_map.insert(p, id);
                self.open.push(p);
                for (i, &kid) in kids.iter().enumerate() {
                    let got = self.walk(ACell::Ref(p + 1 + i), depth + 1)?;
                    if got != kid {
                        return None;
                    }
                }
                self.open.pop();
                Some(id)
            }
            ACell::Fun(..) => unreachable!("bare functor cell"),
        }
    }

    fn fresh(&mut self) -> Option<usize> {
        if self.next >= self.pattern.nodes().len() {
            return None;
        }
        let id = self.next;
        self.next += 1;
        Some(id)
    }

    fn emit_leaf(&mut self, leaf: AbsLeaf) -> Option<usize> {
        let id = self.fresh()?;
        (*self.pattern.node(id) == PNode::Leaf(leaf)).then_some(id)
    }

    /// Check `cell`'s summary leaf — the depth cut, also the extractor's
    /// back-edge cut for cyclic terms.
    fn summary_leaf(&mut self, cell: ACell) -> Option<usize> {
        let leaf = self.summarize(cell);
        let leaf = if leaf == AbsLeaf::Var {
            AbsLeaf::Any
        } else {
            leaf
        };
        self.emit_leaf(leaf)
    }

    /// Primary approximation of a heap term (mirrors the extractor's).
    fn summarize(&mut self, cell: ACell) -> AbsLeaf {
        let mut visiting = std::mem::take(&mut self.visiting);
        visiting.clear();
        let leaf = summarize_cell(self.heap, cell, &mut visiting);
        self.visiting = visiting;
        leaf
    }
}

/// Primary approximation (shared logic with the extractor's `summarize`).
pub(crate) fn summarize_cell(heap: &[ACell], cell: ACell, visiting: &mut Vec<usize>) -> AbsLeaf {
    let (cell, _) = deref(heap, cell);
    match cell {
        ACell::Ref(_) => AbsLeaf::Var,
        ACell::Abs(l) => l,
        ACell::AbsList(e) => {
            if visiting.contains(&e) {
                return AbsLeaf::NonVar;
            }
            visiting.push(e);
            let ground = summarize_cell(heap, ACell::Ref(e), visiting).is_ground();
            visiting.pop();
            if ground {
                AbsLeaf::Ground
            } else {
                AbsLeaf::NonVar
            }
        }
        ACell::Con(_) | ACell::Int(_) => AbsLeaf::Ground,
        ACell::Lis(p) => summarize_compound(heap, p, 2, p, visiting),
        ACell::Str(p) => {
            let ACell::Fun(_, n) = heap[p] else {
                unreachable!()
            };
            summarize_compound(heap, p + 1, n as usize, p, visiting)
        }
        ACell::Fun(..) => unreachable!(),
    }
}

/// Summarize a compound whose children live in the contiguous cell range
/// `start..start + count` (cons pairs and struct argument blocks both do).
fn summarize_compound(
    heap: &[ACell],
    start: usize,
    count: usize,
    mark: usize,
    visiting: &mut Vec<usize>,
) -> AbsLeaf {
    if visiting.contains(&mark) {
        return AbsLeaf::NonVar;
    }
    visiting.push(mark);
    let all_ground =
        (start..start + count).all(|a| summarize_cell(heap, ACell::Ref(a), visiting).is_ground());
    visiting.pop();
    if all_ground {
        AbsLeaf::Ground
    } else {
        AbsLeaf::NonVar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, materialize};

    fn check_parity(pattern_specs: &[&str], probe_specs: &[&str]) {
        let p = Pattern::from_spec(pattern_specs).unwrap();
        let q = Pattern::from_spec(probe_specs).unwrap();
        let mut heap = Vec::new();
        let cells = materialize(&mut heap, &q);
        let expected = extract(&heap, &cells, 4) == p;
        assert_eq!(
            matches(&heap, &cells, 4, &p),
            expected,
            "parity failed for pattern {pattern_specs:?} vs heap {probe_specs:?}"
        );
    }

    #[test]
    fn matcher_agrees_with_extraction() {
        let specs: &[&[&str]] = &[
            &["any"],
            &["var"],
            &["g"],
            &["glist"],
            &["list(any)"],
            &["atom", "int"],
            &["glist", "var"],
            &["5", "nil"],
            &["list(list(g))"],
        ];
        for p in specs {
            for q in specs {
                if p.len() == q.len() {
                    check_parity(p, q);
                }
            }
        }
    }

    #[test]
    fn sharing_must_match() {
        use absdom::PNode;
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        let unshared = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Leaf(AbsLeaf::Var)],
            vec![0, 1],
        );
        let mut heap = Vec::new();
        let shared_cells = materialize(&mut heap, &shared);
        assert!(matches(&heap, &shared_cells, 4, &shared));
        assert!(!matches(&heap, &shared_cells, 4, &unshared));
        let mut heap2 = Vec::new();
        let unshared_cells = materialize(&mut heap2, &unshared);
        assert!(matches(&heap2, &unshared_cells, 4, &unshared));
        assert!(!matches(&heap2, &unshared_cells, 4, &shared));
    }

    #[test]
    fn depth_cut_parity() {
        // Deep struct: extraction cuts at k; so must the matcher.
        let f = prolog_syntax::Interner::new().intern("f");
        let mut nodes = Vec::new();
        nodes.push(PNode::Leaf(AbsLeaf::Integer));
        let mut id = 0;
        for _ in 0..6 {
            nodes.push(PNode::Struct(f, vec![id]));
            id = nodes.len() - 1;
        }
        let deep = Pattern::new(nodes, vec![id]);
        let mut heap = Vec::new();
        let cells = materialize(&mut heap, &deep);
        let expected = extract(&heap, &cells, 4);
        assert!(matches(&heap, &cells, 4, &expected));
        assert!(
            !matches(&heap, &cells, 4, &deep),
            "uncut pattern must not match"
        );
    }
}
