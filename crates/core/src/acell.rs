//! Abstract heap cells.
//!
//! The abstract WAM uses the concrete machine's tags unchanged and adds
//! exactly two: [`ACell::Abs`] for an instantiable simple abstract type
//! and [`ACell::AbsList`] for an `α-list` instance. Both behave like
//! unbound variables: a single word that unification may *instantiate*
//! (overwrite, with the old value trailed) to a more specific term — the
//! paper's "it is therefore natural to represent these abstract terms like
//! variables" (§4.1).

use absdom::AbsLeaf;
use prolog_syntax::Symbol;

/// One tagged word of the abstract machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ACell {
    /// Reference (unbound when self-referential) — a free program variable.
    Ref(usize),
    /// Pointer to a `Fun` cell followed by argument cells.
    Str(usize),
    /// Pointer to two consecutive cells (car, cdr).
    Lis(usize),
    /// An atom.
    Con(Symbol),
    /// A specific integer.
    Int(i64),
    /// A functor cell.
    Fun(Symbol, u16),
    /// An instantiable simple abstract type (`any`, `nv`, `g`, …).
    Abs(AbsLeaf),
    /// An `α-list` instance; the operand is the heap address of the
    /// element-type cell (an unaliased type subgraph).
    AbsList(usize),
}

impl ACell {
    /// Whether this cell, sitting at heap address `addr`, can still be
    /// instantiated (is variable-like).
    pub fn is_open_at(self, addr: usize) -> bool {
        match self {
            ACell::Ref(a) => a == addr,
            ACell::Abs(_) | ACell::AbsList(_) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openness() {
        assert!(ACell::Ref(3).is_open_at(3));
        assert!(!ACell::Ref(3).is_open_at(5));
        assert!(ACell::Abs(AbsLeaf::Ground).is_open_at(0));
        assert!(ACell::AbsList(7).is_open_at(0));
        assert!(!ACell::Int(1).is_open_at(0));
    }
}
