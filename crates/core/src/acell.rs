//! Abstract heap cells.
//!
//! The abstract WAM uses the concrete machine's tags unchanged and adds
//! exactly two: [`ACell::Abs`] for an instantiable simple abstract type
//! and [`ACell::AbsList`] for an `α-list` instance. Both behave like
//! unbound variables: a single word that unification may *instantiate*
//! (overwrite, with the old value trailed) to a more specific term — the
//! paper's "it is therefore natural to represent these abstract terms like
//! variables" (§4.1).

use absdom::AbsLeaf;
use prolog_syntax::Symbol;

/// One tagged word of the abstract machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ACell {
    /// Reference (unbound when self-referential) — a free program variable.
    Ref(usize),
    /// Pointer to a `Fun` cell followed by argument cells.
    Str(usize),
    /// Pointer to two consecutive cells (car, cdr).
    Lis(usize),
    /// An atom.
    Con(Symbol),
    /// A specific integer.
    Int(i64),
    /// A functor cell.
    Fun(Symbol, u16),
    /// An instantiable simple abstract type (`any`, `nv`, `g`, …).
    Abs(AbsLeaf),
    /// An `α-list` instance; the operand is the heap address of the
    /// element-type cell (an unaliased type subgraph).
    AbsList(usize),
}

impl ACell {
    /// Whether this cell, sitting at heap address `addr`, can still be
    /// instantiated (is variable-like).
    pub fn is_open_at(self, addr: usize) -> bool {
        match self {
            ACell::Ref(a) => a == addr,
            ACell::Abs(_) | ACell::AbsList(_) => true,
            _ => false,
        }
    }
}

/// The substrate's cell contract: the six standard tags build exactly as
/// in the concrete machine, and only plain `Ref` cells are chased by
/// `deref` — `Abs`/`AbsList` stop the chase like values do, so their heap
/// address is reported to the instantiation sites that overwrite them.
impl awam_exec::CellRepr for ACell {
    fn mk_ref(addr: usize) -> Self {
        ACell::Ref(addr)
    }
    fn mk_str(addr: usize) -> Self {
        ACell::Str(addr)
    }
    fn mk_lis(addr: usize) -> Self {
        ACell::Lis(addr)
    }
    fn mk_con(name: Symbol) -> Self {
        ACell::Con(name)
    }
    fn mk_int(value: i64) -> Self {
        ACell::Int(value)
    }
    fn mk_fun(name: Symbol, arity: u16) -> Self {
        ACell::Fun(name, arity)
    }
    fn as_ref_addr(self) -> Option<usize> {
        match self {
            ACell::Ref(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openness() {
        assert!(ACell::Ref(3).is_open_at(3));
        assert!(!ACell::Ref(3).is_open_at(5));
        assert!(ACell::Abs(AbsLeaf::Ground).is_open_at(0));
        assert!(ACell::AbsList(7).is_open_at(0));
        assert!(!ACell::Int(1).is_open_at(0));
    }
}
