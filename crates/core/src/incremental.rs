//! Incremental re-analysis: clause-level edits with dependency-driven
//! extension-table invalidation.
//!
//! The extension table is a memo structure, and the machine records, for
//! every entry, which other entries its last exploration read
//! ([`ExtensionTable::deps`]). That makes the table *editable*: when a
//! clause changes, only the entries whose predicate changed — plus
//! everything that transitively depends on them through the reverse of
//! those edges — can be stale. Everything else is part of a converged
//! fixpoint whose inputs did not move, so it survives verbatim, and a
//! seeded worklist run ([`crate::machine::AbstractMachine::run_repair`])
//! re-derives just the invalidated cone. See DESIGN.md §3.10 for the
//! full algorithm and the correctness argument.
//!
//! Three layers build on [`migrate_parts`], the table-migration core:
//!
//! * [`Workspace`] — an owning source + analyzer + session bundle with
//!   [`Workspace::apply_edit`] / [`Workspace::update_source`] (the
//!   `awam watch` subcommand is a thin loop around it);
//! * [`crate::Session::update_program`] — the session-level entry point
//!   (consumes the session, returns a `Workspace`);
//! * the serve daemon's `update` protocol op, which migrates every
//!   parked warm session of a registered program in place.
//!
//! # Examples
//!
//! ```
//! use awam_core::incremental::{ProgramEdit, Workspace};
//!
//! let mut ws = Workspace::from_source(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! ws.analyze("app", &["glist", "glist", "var"])?;
//! let stats = ws.apply_edit(&ProgramEdit::AddClause {
//!     clause: "app([a], L, [a|L]).".to_owned(),
//! })?;
//! assert_eq!(stats.entries_before, stats.entries_kept + stats.entries_reset);
//! ws.analyze("app", &["glist", "glist", "var"])?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::analyzer::{Analysis, Analyzer, AnalyzerBuilder, PredAnalysis};
use crate::machine::{AbstractMachine, AnalysisError};
use crate::session::{Session, SessionParts};
use crate::table::{Derivation, DerivationOrigin, ExtensionTable, LubStep};
use absdom::{PNode, Pattern, SessionInterner};
use awam_obs::{InvalidationStats, MachineStats, OpcodeCounts};
use prolog_syntax::{parse_program, pretty, Interner, ParseError, Program};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use wam::CompileError;

/// A clause-level edit against a parsed program.
///
/// Edits are applied *textually*: the current program's clauses are
/// pretty-printed, the edit splices that clause list, and the result is
/// re-parsed as a whole — so the incremental path and a cold re-analysis
/// see byte-identical source, which is what makes the differential
/// oracle's byte-equality claim meaningful. Clause indices count within
/// the predicate, in source order, starting at 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramEdit {
    /// Append a clause (given as source text, e.g. `"p(a)."`) at the end
    /// of the program.
    AddClause {
        /// The clause source text, terminated with `.`.
        clause: String,
    },
    /// Remove the `clause`-th clause of `pred/arity`.
    RemoveClause {
        /// Predicate name.
        pred: String,
        /// Predicate arity.
        arity: usize,
        /// Clause index within the predicate (source order, 0-based).
        clause: usize,
    },
    /// Replace the `clause`-th clause of `pred/arity` with new text.
    ReplaceClause {
        /// Predicate name.
        pred: String,
        /// Predicate arity.
        arity: usize,
        /// Clause index within the predicate (source order, 0-based).
        clause: usize,
        /// Replacement clause source text, terminated with `.`.
        text: String,
    },
    /// Append a block of source text (one or more clauses, typically a
    /// whole new predicate) at the end of the program.
    AddPredicate {
        /// The source text to append.
        source: String,
    },
    /// Remove every clause of `pred/arity`.
    RemovePredicate {
        /// Predicate name.
        pred: String,
        /// Predicate arity.
        arity: usize,
    },
}

/// Why a [`ProgramEdit`] could not be applied to a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The edit names a predicate the program does not define.
    UnknownPredicate {
        /// `name/arity` of the missing predicate.
        pred: String,
    },
    /// The edit names a clause index past the predicate's clause count.
    NoSuchClause {
        /// `name/arity` of the predicate.
        pred: String,
        /// The out-of-range clause index.
        clause: usize,
    },
    /// The program contains directives, which the textual splice cannot
    /// round-trip.
    Directives,
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::UnknownPredicate { pred } => {
                write!(f, "edit names unknown predicate {pred}")
            }
            EditError::NoSuchClause { pred, clause } => {
                write!(f, "{pred} has no clause {clause}")
            }
            EditError::Directives => {
                write!(f, "programs with directives cannot be edited clause-wise")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// Why an incremental update failed end to end.
#[derive(Debug)]
pub enum UpdateError {
    /// The edit did not apply to the current program.
    Edit(EditError),
    /// The edited source failed to parse.
    Parse(ParseError),
    /// The edited program failed to compile (e.g. a removed predicate is
    /// still called).
    Compile(CompileError),
    /// The seeded re-fixpoint hit a resource bound.
    Analysis(AnalysisError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Edit(e) => write!(f, "{e}"),
            UpdateError::Parse(e) => write!(f, "parse error: {e}"),
            UpdateError::Compile(e) => write!(f, "compile error: {e}"),
            UpdateError::Analysis(e) => write!(f, "re-analysis error: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<EditError> for UpdateError {
    fn from(e: EditError) -> UpdateError {
        UpdateError::Edit(e)
    }
}

impl From<ParseError> for UpdateError {
    fn from(e: ParseError) -> UpdateError {
        UpdateError::Parse(e)
    }
}

impl From<CompileError> for UpdateError {
    fn from(e: CompileError) -> UpdateError {
        UpdateError::Compile(e)
    }
}

impl From<AnalysisError> for UpdateError {
    fn from(e: AnalysisError) -> UpdateError {
        UpdateError::Analysis(e)
    }
}

/// The pretty-printed clause list of `program`, one clause per element,
/// in source order.
fn clause_lines(program: &Program) -> Vec<String> {
    program
        .clauses
        .iter()
        .map(|c| pretty::clause_to_string(c, &program.interner))
        .collect()
}

/// Source-order indices of the clauses of `pred/arity` in `program`.
fn clause_indices(program: &Program, pred: &str, arity: usize) -> Vec<usize> {
    program
        .clauses
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            let key = c.pred_key();
            key.arity == arity && program.interner.resolve(key.name) == pred
        })
        .map(|(i, _)| i)
        .collect()
}

impl ProgramEdit {
    /// Apply this edit to `program`, producing the edited program's
    /// source text (pretty-printed, one clause per line).
    ///
    /// # Errors
    ///
    /// [`EditError`] when the named predicate/clause does not exist or
    /// the program carries directives.
    pub fn apply(&self, program: &Program) -> Result<String, EditError> {
        if !program.directives.is_empty() {
            return Err(EditError::Directives);
        }
        let mut lines = clause_lines(program);
        match self {
            ProgramEdit::AddClause { clause } => lines.push(clause.trim().to_owned()),
            ProgramEdit::AddPredicate { source } => lines.push(source.trim().to_owned()),
            ProgramEdit::RemoveClause {
                pred,
                arity,
                clause,
            } => {
                let idx = locate_clause(program, pred, *arity, *clause)?;
                lines.remove(idx);
            }
            ProgramEdit::ReplaceClause {
                pred,
                arity,
                clause,
                text,
            } => {
                let idx = locate_clause(program, pred, *arity, *clause)?;
                lines[idx] = text.trim().to_owned();
            }
            ProgramEdit::RemovePredicate { pred, arity } => {
                let indices = clause_indices(program, pred, *arity);
                if indices.is_empty() {
                    return Err(EditError::UnknownPredicate {
                        pred: format!("{pred}/{arity}"),
                    });
                }
                for idx in indices.into_iter().rev() {
                    lines.remove(idx);
                }
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        Ok(out)
    }
}

/// Resolve `(pred, arity, clause)` to a global clause index.
fn locate_clause(
    program: &Program,
    pred: &str,
    arity: usize,
    clause: usize,
) -> Result<usize, EditError> {
    let indices = clause_indices(program, pred, arity);
    if indices.is_empty() {
        return Err(EditError::UnknownPredicate {
            pred: format!("{pred}/{arity}"),
        });
    }
    indices
        .get(clause)
        .copied()
        .ok_or_else(|| EditError::NoSuchClause {
            pred: format!("{pred}/{arity}"),
            clause,
        })
}

/// The predicate-level difference between two parsed programs, computed
/// on pretty-printed clause lists (so whitespace and comment changes
/// produce an empty diff).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramDiff {
    /// Predicates whose clause list differs between the two programs
    /// (edited, or newly added), as `(name, arity)`, sorted.
    pub changed: Vec<(String, usize)>,
    /// Predicates present in the old program but absent from the new
    /// one, as `(name, arity)`, sorted.
    pub removed: Vec<(String, usize)>,
}

/// Clause texts grouped by `(name, arity)`.
fn clause_map(program: &Program) -> BTreeMap<(String, usize), Vec<String>> {
    let mut map: BTreeMap<(String, usize), Vec<String>> = BTreeMap::new();
    for clause in &program.clauses {
        let key = clause.pred_key();
        map.entry((
            program.interner.resolve(key.name).to_owned(),
            key.arity,
        ))
        .or_default()
        .push(pretty::clause_to_string(clause, &program.interner));
    }
    map
}

impl ProgramDiff {
    /// Diff `old` against `new` at the predicate level.
    pub fn between(old: &Program, new: &Program) -> ProgramDiff {
        let old_map = clause_map(old);
        let new_map = clause_map(new);
        let mut changed = Vec::new();
        let mut removed = Vec::new();
        for (key, new_clauses) in &new_map {
            match old_map.get(key) {
                Some(old_clauses) if old_clauses == new_clauses => {}
                _ => changed.push(key.clone()),
            }
        }
        for key in old_map.keys() {
            if !new_map.contains_key(key) {
                removed.push(key.clone());
            }
        }
        ProgramDiff { changed, removed }
    }

    /// Whether the two programs have identical clause lists.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }
}

/// Rewrite a pattern's functor symbols from `old` interner indices to
/// `new` ones; `None` when a symbol's name is absent from `new` (the
/// edit removed every mention of it, so no live entry can need it).
fn remap_pattern(pattern: &Pattern, old: &Interner, new: &Interner) -> Option<Pattern> {
    let (mut nodes, roots) = pattern.clone().into_parts();
    for node in &mut nodes {
        match node {
            PNode::Atom(s) | PNode::Struct(s, _) => {
                *s = new.lookup(old.resolve(*s))?;
            }
            _ => {}
        }
    }
    // Re-canonicalize: node ordering can depend on symbol numbering,
    // which just changed under us.
    Some(Pattern::new(nodes, roots))
}

/// Migrate a suspended session across a program edit: partition its
/// extension table into kept / reset / dropped entries, rebuild the
/// survivors against `new_analyzer`'s interners, and run a seeded
/// re-fixpoint from the reset frontier so the returned parts are
/// converged and safe to query.
///
/// The partition is computed from the recorded dependency edges: the
/// *stale* set is the reverse-transitive closure of every entry whose
/// predicate changed or vanished (aux `$`-predicates, whose numbering is
/// global across the compile, are conservatively treated as changed
/// whenever the diff is non-empty). Stale entries of surviving
/// predicates are reset to an unexplored state and re-derived; entries
/// of removed predicates (or whose patterns mention symbols absent from
/// the new program) are dropped.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the re-fixpoint (budget, iteration
/// bound). The session state is consumed either way — on error the
/// caller must discard it, exactly like a failed [`Session`] query.
pub fn migrate_parts(
    old_program: &Program,
    new_program: &Program,
    old_analyzer: &Analyzer,
    new_analyzer: &Analyzer,
    parts: SessionParts,
    budget: Option<u64>,
) -> Result<(SessionParts, InvalidationStats), AnalysisError> {
    let diff = ProgramDiff::between(old_program, new_program);
    let old_compiled = old_analyzer.program();
    let new_compiled = new_analyzer.program();
    let old_names = &old_compiled.interner;
    let new_names = &new_compiled.interner;
    let (old_table, old_interner, session_stats) = parts.into_inner();

    let mut stats = InvalidationStats {
        entries_before: old_table.len() as u64,
        preds_changed: diff.changed.len() as u64,
        preds_removed: diff.removed.len() as u64,
        ..InvalidationStats::default()
    };

    // Classify every old predicate: its id in the new compiled program
    // (None = removed) and whether its clause list changed. Aux
    // predicates (`$dsj_N`, `$ite_N`) are numbered by one global counter
    // during WAM normalization, so any edit can shift which source
    // construct a given aux name denotes — treat them all as changed
    // whenever anything changed at all.
    let changed_names: BTreeSet<(String, usize)> = diff.changed.iter().cloned().collect();
    let num_old_preds = old_compiled.predicates.len();
    let mut pred_map: Vec<Option<usize>> = Vec::with_capacity(num_old_preds);
    let mut pred_changed: Vec<bool> = Vec::with_capacity(num_old_preds);
    for entry in &old_compiled.predicates {
        let name = old_names.resolve(entry.key.name);
        let arity = entry.key.arity;
        pred_map.push(new_compiled.predicate(name, arity));
        pred_changed.push(
            changed_names.contains(&(name.to_owned(), arity))
                || (!diff.is_empty() && name.starts_with('$')),
        );
    }

    // Remap every entry's patterns up front; a failure (vanished symbol)
    // marks the entry for dropping, and — like a removed predicate — it
    // must seed the stale closure so its dependents are reset.
    type Remapped = (Pattern, Option<Pattern>);
    let mut remapped: HashMap<(usize, usize), Remapped> = HashMap::new();
    let mut seeds: Vec<(usize, usize)> = Vec::new();
    let mut dropped: HashSet<(usize, usize)> = HashSet::new();
    for pred in 0..num_old_preds {
        for idx in 0..old_table.entries(pred).len() {
            let entry = old_table.entry(pred, idx);
            let call = remap_pattern(old_interner.resolve(entry.call), old_names, new_names);
            let success = entry
                .success
                .map(|s| remap_pattern(old_interner.resolve(s), old_names, new_names));
            match (pred_map[pred], call, success) {
                (Some(_), Some(call), Some(Some(success))) => {
                    remapped.insert((pred, idx), (call, Some(success)));
                }
                (Some(_), Some(call), None) => {
                    remapped.insert((pred, idx), (call, None));
                }
                _ => {
                    // Removed predicate or unmappable pattern: drop, and
                    // reset everything that depended on it.
                    dropped.insert((pred, idx));
                    seeds.push((pred, idx));
                }
            }
            if pred_changed[pred] && !dropped.contains(&(pred, idx)) {
                seeds.push((pred, idx));
            }
        }
    }

    // Reverse-transitive closure over the recorded dependency edges.
    let mut rev: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for pred in 0..num_old_preds {
        for idx in 0..old_table.entries(pred).len() {
            for &(dp, di, _) in old_table.deps(pred, idx) {
                rev.entry((dp, di)).or_default().push((pred, idx));
            }
        }
    }
    let mut stale: HashSet<(usize, usize)> = HashSet::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for seed in seeds {
        if stale.insert(seed) {
            queue.push_back(seed);
        }
    }
    while let Some(node) = queue.pop_front() {
        if let Some(dependents) = rev.get(&node) {
            for &d in dependents {
                if stale.insert(d) {
                    queue.push_back(d);
                }
            }
        }
    }

    // Rebuild the table against the new analyzer: kept entries carry
    // their summaries, versions reset to 0; stale survivors are reset to
    // unexplored (the re-fixpoint frontier); dropped entries vanish.
    let mut new_interner = new_analyzer.new_session_interner();
    let mut new_table =
        ExtensionTable::new(new_compiled.predicates.len(), new_analyzer.et_impl());
    if new_analyzer.provenance_enabled() {
        new_table.enable_provenance();
    }
    let mut index_map: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    let mut frontier: Vec<(usize, usize)> = Vec::new();
    let mut kept: Vec<(usize, usize)> = Vec::new();
    for (pred, mapped) in pred_map.iter().enumerate() {
        let Some(new_pred) = *mapped else {
            stats.entries_dropped += old_table.entries(pred).len() as u64;
            continue;
        };
        for idx in 0..old_table.entries(pred).len() {
            if dropped.contains(&(pred, idx)) {
                stats.entries_dropped += 1;
                continue;
            }
            let (call, success) = remapped
                .remove(&(pred, idx))
                .expect("every non-dropped entry was remapped");
            let call_id = new_interner.intern(call);
            let new_idx = if stale.contains(&(pred, idx)) {
                stats.entries_reset += 1;
                let new_idx = new_table.seed_entry(new_pred, call_id, None, 0, 0);
                frontier.push((new_pred, new_idx));
                new_idx
            } else {
                stats.entries_kept += 1;
                let success_id = success.map(|s| new_interner.intern(s));
                kept.push((pred, idx));
                new_table.seed_entry(new_pred, call_id, success_id, 1, 0)
            };
            index_map.insert((pred, idx), (new_pred, new_idx));
        }
    }

    // Kept entries keep their dependency edges (remapped to new
    // indices; versions restart at the targets' current 0) and their
    // derivation records. A kept entry's targets are all kept: anything
    // depending on a stale or dropped entry is itself stale by closure.
    for (pred, idx) in kept {
        let (new_pred, new_idx) = index_map[&(pred, idx)];
        let deps: Vec<(usize, usize, u64)> = old_table
            .deps(pred, idx)
            .iter()
            .filter_map(|&(dp, di, _)| {
                let &(np, ni) = index_map.get(&(dp, di))?;
                Some((np, ni, new_table.version(np, ni)))
            })
            .collect();
        new_table.set_deps(new_pred, new_idx, deps);
        if let Some(derivation) = old_table.derivation(pred, idx) {
            new_table.seed_derivation(
                new_pred,
                new_idx,
                remap_derivation(derivation, &pred_map, &old_interner, &mut new_interner, old_names, new_names),
            );
        }
    }
    stats.frontier = frontier.len() as u64;

    // Seed the repair worklist callees-first: a frontier entry whose
    // stale dependencies have already re-converged is explored against
    // their final summaries instead of being re-queued for every
    // upstream change. Post-order DFS over the recorded dependency
    // edges restricted to the stale set; back-edges from recursive
    // entries are skipped by the visited mark, so cycles degrade to
    // discovery order rather than looping.
    let frontier = {
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(frontier.len());
        let mut visited: HashSet<(usize, usize)> = HashSet::new();
        for pred in 0..num_old_preds {
            for idx in 0..old_table.entries(pred).len() {
                let start = (pred, idx);
                if !stale.contains(&start) || visited.contains(&start) {
                    continue;
                }
                visited.insert(start);
                let mut stack: Vec<((usize, usize), usize)> = vec![(start, 0)];
                while let Some((node, cursor)) = stack.last_mut() {
                    let deps = old_table.deps(node.0, node.1);
                    if let Some(&(dp, di, _)) = deps.get(*cursor) {
                        *cursor += 1;
                        let child = (dp, di);
                        if stale.contains(&child) && visited.insert(child) {
                            stack.push((child, 0));
                        }
                    } else {
                        order.push(*node);
                        stack.pop();
                    }
                }
            }
        }
        order
            .iter()
            .filter_map(|old| index_map.get(old).copied())
            .collect::<Vec<_>>()
    };

    // Seeded re-fixpoint from the frontier: reset entries re-derive
    // their summaries, reading kept entries' summaries as-is; growth
    // propagates along freshly recorded reverse edges.
    let mut machine = AbstractMachine::with_table(
        new_compiled,
        new_analyzer.depth_k(),
        new_analyzer.et_impl(),
        new_table,
        new_interner,
    );
    machine.set_domain_config(new_analyzer.domain_config());
    machine.set_strategy(new_analyzer.iteration_strategy());
    machine.set_step_budget(budget);
    stats.refix_explorations = machine.run_repair(&frontier)?;
    stats.refix_instructions = machine.exec_count();
    let (table, interner) = machine.into_parts();
    Ok((
        SessionParts::from_inner(table, interner, session_stats),
        stats,
    ))
}

/// Carry a kept entry's derivation record across the migration,
/// remapping predicate ids and pattern symbols; fields that reference
/// vanished predicates or symbols degrade to `None`/empty rather than
/// dropping the whole record.
fn remap_derivation(
    derivation: &Derivation,
    pred_map: &[Option<usize>],
    old_interner: &SessionInterner,
    new_interner: &mut SessionInterner,
    old_names: &Interner,
    new_names: &Interner,
) -> Derivation {
    let origin = derivation.origin.and_then(|o| {
        pred_map.get(o.pred).copied().flatten().map(|pred| DerivationOrigin {
            pred,
            clause: o.clause,
        })
    });
    let parent_call = derivation.parent_call.and_then(|id| {
        remap_pattern(old_interner.resolve(id), old_names, new_names)
            .map(|p| new_interner.intern(p))
    });
    let lub_steps: Option<Vec<LubStep>> = derivation
        .lub_steps
        .iter()
        .map(|step| {
            let input = remap_pattern(old_interner.resolve(step.input), old_names, new_names)?;
            let result = remap_pattern(old_interner.resolve(step.result), old_names, new_names)?;
            Some(LubStep {
                clause: step.clause,
                iter: step.iter,
                input: new_interner.intern(input),
                result: new_interner.intern(result),
            })
        })
        .collect();
    Derivation {
        origin,
        created_iter: derivation.created_iter,
        parent_call,
        lub_steps: lub_steps.unwrap_or_default(),
    }
}

/// An owning incremental-analysis workspace: source text, its parsed and
/// compiled forms, and a persistent session that survives edits.
///
/// Unlike [`Session`], which borrows its analyzer, a workspace owns the
/// whole chain — so [`Workspace::apply_edit`] / [`Workspace::update_source`]
/// can swap in a newly compiled analyzer and migrate the memo table in
/// place. This is the engine behind `awam watch`.
#[derive(Debug)]
pub struct Workspace {
    builder: AnalyzerBuilder,
    source: String,
    program: Program,
    analyzer: Analyzer,
    parts: Option<SessionParts>,
    budget: Option<u64>,
    last_invalidation: InvalidationStats,
}

impl Workspace {
    /// Open a workspace on `source` with the paper's default analyzer
    /// settings.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Parse`] / [`UpdateError::Compile`].
    pub fn from_source(source: &str) -> Result<Workspace, UpdateError> {
        Workspace::with_builder(AnalyzerBuilder::default(), source)
    }

    /// Open a workspace on `source` with explicit analyzer settings.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Parse`] / [`UpdateError::Compile`].
    pub fn with_builder(builder: AnalyzerBuilder, source: &str) -> Result<Workspace, UpdateError> {
        let program = parse_program(source)?;
        let analyzer = builder.compile(&program)?;
        let budget = analyzer.configured_step_budget();
        Ok(Workspace {
            builder,
            source: source.to_owned(),
            program,
            analyzer,
            parts: None,
            budget,
            last_invalidation: InvalidationStats::default(),
        })
    }

    /// Rebuild a workspace around a suspended session's parts (used by
    /// [`Session::update_program`]): recompiles `source` with the given
    /// settings — deterministic compilation makes the result identical
    /// to the analyzer the parts were grown on — and adopts the parts.
    pub(crate) fn resume(
        builder: AnalyzerBuilder,
        source: &str,
        parts: SessionParts,
        budget: Option<u64>,
    ) -> Result<Workspace, UpdateError> {
        let mut ws = Workspace::with_builder(builder, source)?;
        ws.parts = Some(parts);
        ws.budget = budget;
        Ok(ws)
    }

    /// The current source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The current parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The current compiled analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The invalidation counters of the most recent edit (all-default
    /// until the first edit).
    pub fn last_invalidation(&self) -> InvalidationStats {
        self.last_invalidation
    }

    /// Number of memo entries currently held by the workspace session.
    pub fn memo_len(&self) -> usize {
        self.parts.as_ref().map_or(0, SessionParts::memo_len)
    }

    /// Cap subsequent fixpoint and re-fixpoint runs at `budget` abstract
    /// instructions (`None` = the analyzer's configured budget).
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Analyze `name` with an entry pattern given as spec strings,
    /// through the workspace's persistent session (so repeat queries hit
    /// the memo table).
    ///
    /// # Errors
    ///
    /// Same as [`Session::analyze_query`].
    pub fn analyze(&mut self, name: &str, specs: &[&str]) -> Result<Analysis, AnalysisError> {
        let parts = self
            .parts
            .take()
            .unwrap_or_else(|| Session::new(&self.analyzer).into_parts());
        let mut session = Session::resume(&self.analyzer, parts);
        session.set_step_budget(self.budget);
        let result = session.analyze_query(name, specs);
        self.parts = Some(session.into_parts());
        result
    }

    /// Apply a clause-level edit: splice the clause list, re-parse, and
    /// migrate the session table (see [`migrate_parts`]). Returns the
    /// invalidation counters.
    ///
    /// # Errors
    ///
    /// [`UpdateError`]; on a re-fixpoint resource error the memo table
    /// is discarded (the workspace stays on the pre-edit program with an
    /// empty session, like a failed [`Session`] query).
    pub fn apply_edit(&mut self, edit: &ProgramEdit) -> Result<InvalidationStats, UpdateError> {
        let new_source = edit.apply(&self.program)?;
        self.update_source(&new_source)
    }

    /// Replace the whole source text, diffing against the current
    /// program and migrating the session table across the change. A
    /// clause-identical replacement (whitespace, comments) is a no-op:
    /// the memo table and compiled analyzer are untouched and the
    /// returned counters show zero invalidations.
    ///
    /// # Errors
    ///
    /// Same as [`Workspace::apply_edit`].
    pub fn update_source(&mut self, new_source: &str) -> Result<InvalidationStats, UpdateError> {
        let new_program = parse_program(new_source)?;
        let diff = ProgramDiff::between(&self.program, &new_program);
        if diff.is_empty() {
            let memo = self.memo_len() as u64;
            let stats = InvalidationStats {
                entries_before: memo,
                entries_kept: memo,
                ..InvalidationStats::default()
            };
            self.source = new_source.to_owned();
            self.program = new_program;
            self.last_invalidation = stats;
            return Ok(stats);
        }
        let new_analyzer = self.builder.compile(&new_program)?;
        let stats = match self.parts.take() {
            Some(parts) => {
                match migrate_parts(
                    &self.program,
                    &new_program,
                    &self.analyzer,
                    &new_analyzer,
                    parts,
                    self.budget,
                ) {
                    Ok((parts, stats)) => {
                        self.parts = Some(parts);
                        stats
                    }
                    Err(e) => return Err(UpdateError::Analysis(e)),
                }
            }
            None => InvalidationStats {
                preds_changed: diff.changed.len() as u64,
                preds_removed: diff.removed.len() as u64,
                ..InvalidationStats::default()
            },
        };
        self.source = new_source.to_owned();
        self.program = new_program;
        self.analyzer = new_analyzer;
        self.last_invalidation = stats;
        Ok(stats)
    }

    /// Canonical serialization of the goal-reachable core of the
    /// session table: the entries reachable from the goal's entry along
    /// recorded dependency edges, one sorted line per entry
    /// (`name/arity call -> success`). Runs the query first (a memo hit
    /// when already analyzed), so the root entry exists.
    ///
    /// Incremental and cold tables can differ in transient entries
    /// (abandoned calling patterns from earlier fixpoint rounds or
    /// pre-edit exploration) and insertion order; the reachable core is
    /// the part that answers queries, and it is byte-identical between
    /// the two — the differential oracle's equality claim.
    ///
    /// # Errors
    ///
    /// Same as [`Workspace::analyze`].
    pub fn core_dump(&mut self, name: &str, specs: &[&str]) -> Result<String, AnalysisError> {
        let core = self.core_entries(name, specs)?;
        let interner = self.analyzer.interner();
        let parts = self.parts.as_ref().expect("analyze populated the session");
        let mut lines: Vec<String> = core
            .iter()
            .map(|&(pred, idx)| {
                let entry = parts.table().entry(pred, idx);
                let key = &self.analyzer.program().predicates[pred].key;
                let call = parts.interner().resolve(entry.call).display(interner);
                let success = entry
                    .success
                    .map(|s| parts.interner().resolve(s).display(interner))
                    .unwrap_or_else(|| "fail".to_owned());
                format!("{} {} -> {}", key.display(interner), call, success)
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        Ok(out)
    }

    /// The human-readable report rendered from the goal-reachable core
    /// only (synthetic zeroed counters, entries sorted canonically), so
    /// incremental and cold sessions produce byte-identical text. See
    /// [`Workspace::core_dump`].
    ///
    /// # Errors
    ///
    /// Same as [`Workspace::analyze`].
    pub fn core_report(&mut self, name: &str, specs: &[&str]) -> Result<String, AnalysisError> {
        let core = self.core_entries(name, specs)?;
        let reachable: HashSet<(usize, usize)> = core.into_iter().collect();
        let parts = self.parts.as_ref().expect("analyze populated the session");
        let compiled = self.analyzer.program();
        let mut predicates = Vec::new();
        for (pred, entry) in compiled.predicates.iter().enumerate() {
            let mut entries: Vec<(Pattern, Option<Pattern>)> = parts
                .table()
                .entries(pred)
                .iter()
                .enumerate()
                .filter(|&(idx, _)| reachable.contains(&(pred, idx)))
                .map(|(_, e)| {
                    (
                        parts.interner().resolve(e.call).clone(),
                        e.success.map(|s| parts.interner().resolve(s).clone()),
                    )
                })
                .collect();
            entries.sort_by_key(|(call, _)| call.display(&compiled.interner));
            if !entries.is_empty() {
                predicates.push(PredAnalysis {
                    name: entry.key.display(&compiled.interner),
                    pred,
                    arity: entry.key.arity,
                    entries,
                });
            }
        }
        let analysis = Analysis {
            predicates,
            iterations: 0,
            instructions_executed: 0,
            table_stats: Default::default(),
            intern_stats: Default::default(),
            machine_stats: MachineStats::default(),
            opcodes: OpcodeCounts::new(wam::OPCODE_NAMES.len()),
            analyze_ns: 0,
            pred_times: Vec::new(),
            pred_instrs: Vec::new(),
            provenance: None,
            profile: None,
        };
        Ok(crate::report::render(&analysis, self.analyzer.interner()))
    }

    /// The `(pred, entry index)` set reachable from the goal's entry via
    /// recorded dependency edges (the goal entry included), after
    /// ensuring the goal has been analyzed.
    fn core_entries(&mut self, name: &str, specs: &[&str]) -> Result<Vec<(usize, usize)>, AnalysisError> {
        self.analyze(name, specs)?;
        let entry = Pattern::from_spec(specs)
            .ok_or_else(|| AnalysisError::BadSpec(specs.join(", ")))?;
        let (pred, entry) = self.analyzer.resolve_entry(name, &entry)?;
        let parts = self.parts.as_mut().expect("analyze populated the session");
        let entry_id = parts.interner_mut().intern(entry.clone());
        let root_idx = match parts.table().find_quiet(pred, entry_id) {
            Some(idx) => idx,
            // A memo hit can be answered by a *subsuming* entry without
            // the exact pattern existing; root there.
            None => parts
                .find_subsuming(pred, entry_id)
                .expect("analyze ensured a covering entry exists"),
        };
        let table = parts.table();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        seen.insert((pred, root_idx));
        queue.push_back((pred, root_idx));
        while let Some((p, i)) = queue.pop_front() {
            for &(dp, di, _) in table.deps(p, i) {
                if seen.insert((dp, di)) {
                    queue.push_back((dp, di));
                }
            }
        }
        let mut core: Vec<(usize, usize)> = seen.into_iter().collect();
        core.sort_unstable();
        Ok(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).\n";

    #[test]
    fn noop_edit_keeps_everything() {
        let mut ws = Workspace::from_source(APP).unwrap();
        ws.analyze("app", &["glist", "glist", "var"]).unwrap();
        let before = ws.memo_len();
        assert!(before > 0);
        // Same clauses, different whitespace: empty diff, no recompile.
        let stats = ws.update_source(&APP.replace('\n', "\n\n")).unwrap();
        assert_eq!(stats.entries_before, before as u64);
        assert_eq!(stats.entries_kept, before as u64);
        assert_eq!(stats.entries_reset, 0);
        assert_eq!(stats.entries_dropped, 0);
        assert_eq!(stats.frontier, 0);
        assert_eq!(stats.refix_explorations, 0);
        assert_eq!(ws.memo_len(), before);
    }

    #[test]
    fn edit_invalidates_and_reconverges() {
        let mut ws = Workspace::from_source(APP).unwrap();
        let cold = ws.analyze("app", &["glist", "glist", "var"]).unwrap();
        assert!(cold.iterations > 0);
        let stats = ws
            .apply_edit(&ProgramEdit::AddClause {
                clause: "app([a], L, [a|L]).".to_owned(),
            })
            .unwrap();
        assert!(stats.entries_reset > 0, "app changed: its entries reset");
        assert_eq!(
            stats.entries_before,
            stats.entries_kept + stats.entries_reset + stats.entries_dropped
        );
        // The repaired table answers without a fixpoint run and matches
        // a cold analysis of the edited source.
        let warm = ws.analyze("app", &["glist", "glist", "var"]).unwrap();
        assert_eq!(warm.iterations, 0, "repair left a converged table");
        let mut cold_ws = Workspace::from_source(ws.source()).unwrap();
        assert_eq!(
            ws.core_dump("app", &["glist", "glist", "var"]).unwrap(),
            cold_ws.core_dump("app", &["glist", "glist", "var"]).unwrap()
        );
        assert_eq!(
            ws.core_report("app", &["glist", "glist", "var"]).unwrap(),
            cold_ws
                .core_report("app", &["glist", "glist", "var"])
                .unwrap()
        );
    }

    #[test]
    fn remove_predicate_drops_its_entries() {
        let src = "p(X) :- q(X).\nq(a).\nr(b).\n";
        let mut ws = Workspace::from_source(src).unwrap();
        ws.analyze("p", &["any"]).unwrap();
        ws.analyze("r", &["any"]).unwrap();
        let stats = ws
            .apply_edit(&ProgramEdit::RemovePredicate {
                pred: "p".to_owned(),
                arity: 1,
            })
            .unwrap();
        assert!(stats.entries_dropped > 0, "p's entries vanish");
        // r was untouched: still answered warm.
        let warm = ws.analyze("r", &["any"]).unwrap();
        assert_eq!(warm.iterations, 0);
        assert!(ws.analyze("p", &["any"]).is_err(), "p is gone");
    }

    #[test]
    fn bad_edits_are_reported() {
        let program = parse_program(APP).unwrap();
        let missing = ProgramEdit::RemoveClause {
            pred: "nope".to_owned(),
            arity: 3,
            clause: 0,
        };
        assert!(matches!(
            missing.apply(&program),
            Err(EditError::UnknownPredicate { .. })
        ));
        let out_of_range = ProgramEdit::ReplaceClause {
            pred: "app".to_owned(),
            arity: 3,
            clause: 7,
            text: "app(X, Y, Z).".to_owned(),
        };
        assert!(matches!(
            out_of_range.apply(&program),
            Err(EditError::NoSuchClause { .. })
        ));
    }

    #[test]
    fn diff_sees_through_whitespace() {
        let a = parse_program("p(a).  p(b).\nq(X) :- p(X).").unwrap();
        let b = parse_program("p(a).\np(b).\n\nq(X) :- p(X).").unwrap();
        assert!(ProgramDiff::between(&a, &b).is_empty());
        let c = parse_program("p(a).\nq(X) :- p(X).").unwrap();
        let diff = ProgramDiff::between(&a, &c);
        assert_eq!(diff.changed, vec![("p".to_owned(), 1)]);
        assert!(diff.removed.is_empty());
    }
}
