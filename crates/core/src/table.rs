//! The extension table: the memo structure of the ET-based control scheme.
//!
//! One table per analysis run. Each predicate holds a list of
//! `(calling pattern, summarized success pattern)` entries; multiple
//! calling patterns are kept per predicate while the success patterns for
//! each calling pattern are lubbed together (§6 of the paper).
//!
//! The paper implements the table as "a linear list of (calling-pattern,
//! success-pattern) pairs"; [`EtImpl::Linear`] reproduces that, and
//! [`EtImpl::Hashed`] adds an index for the ablation study (our
//! Ablation B).
//!
//! Patterns are stored as interned [`PatternId`]s (see
//! [`absdom::intern`]): the linear scan compares integers instead of
//! walking pattern graphs, the hashed index keys on ids with no pattern
//! clones, and the summary lub / subsumption probes go through the
//! session interner's memo caches.

use absdom::{FxHashMap, PatternId, SessionInterner};
use awam_obs::TableStats;

/// Where a table entry came from: the clause body whose call created it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DerivationOrigin {
    /// The predicate whose clause was being explored when the entry was
    /// inserted (the *caller*, not the entry's own predicate).
    pub pred: usize,
    /// The clause index (within `pred`) that issued the call.
    pub clause: usize,
}

/// One recorded widening of an entry's success summary: the clause and
/// iteration that produced the input pattern, and the summary the lub
/// grew to. Non-growing inputs (`input ⊑ summary`) are not recorded —
/// folding the recorded inputs with the lattice lub re-derives the
/// stored summary exactly (testkit oracle #7 enforces this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LubStep {
    /// Clause index (within the entry's own predicate) whose solution
    /// produced this success pattern.
    pub clause: usize,
    /// Global fixpoint iteration in which the widening happened.
    pub iter: u64,
    /// The success pattern that was lubbed in.
    pub input: PatternId,
    /// The summary after the lub (equals `input` for the first step).
    pub result: PatternId,
}

/// The full derivation record of one extension-table entry.
///
/// Stored in a vec parallel to the entry list (keyed by entry index)
/// and only allocated when provenance tracking is enabled, so the
/// default configuration pays nothing — not even an `Option` check on
/// the entry hot path, since the machine consults
/// [`ExtensionTable::provenance_enabled`] once at construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Derivation {
    /// The calling clause, or `None` for the entry goal (which no
    /// clause issued).
    pub origin: Option<DerivationOrigin>,
    /// Global fixpoint iteration in which the entry was inserted.
    pub created_iter: u64,
    /// The calling pattern of the table entry being explored when this
    /// entry was created (`None` for the entry goal).
    pub parent_call: Option<PatternId>,
    /// Every widening of the success summary, in order.
    pub lub_steps: Vec<LubStep>,
}

/// Which lookup structure the table uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EtImpl {
    /// Linear scan per predicate — the paper's implementation.
    #[default]
    Linear,
    /// Hash index from calling pattern to entry.
    Hashed,
}

/// One memo entry.
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// The calling pattern (canonical, interned).
    pub call: PatternId,
    /// The lub of all success patterns found so far, if any.
    pub success: Option<PatternId>,
    /// The iteration in which this calling pattern was last explored.
    pub explored_iter: u64,
    /// Version counter, bumped whenever the success summary grows (used
    /// by the dependency-tracking iteration strategy).
    pub version: u64,
}

#[derive(Clone, Debug, Default)]
struct PredTable {
    entries: Vec<Entry>,
    /// The table entries (and their versions) each entry's last
    /// exploration read; parallel to `entries` (kept out of [`Entry`] so
    /// the entry itself stays `Copy`).
    deps: Vec<Vec<(usize, usize, u64)>>,
    /// Calling-pattern id → entry index, maintained in **both** table
    /// modes. `Hashed` consults it directly; `Linear` uses it as an
    /// id-indexed probe that replaces the per-entry rescan while keeping
    /// the paper's semantics (interned ids make `call == entry.call` an
    /// integer compare, so one probe decides what the scan decided —
    /// debug builds assert the parity). A fixed-seed hash map
    /// ([`FxHashMap`]), not `std`'s `RandomState`-seeded one: the
    /// per-instance random seed would make any future iteration over the
    /// index nondeterministic between runs (the same bug class the
    /// `rev_deps` index had). Probes are O(1) integer hashes.
    index: FxHashMap<PatternId, usize>,
}

/// The extension table.
#[derive(Clone, Debug)]
pub struct ExtensionTable {
    preds: Vec<PredTable>,
    impl_kind: EtImpl,
    /// Whether any success entry changed since the flag was last cleared.
    changed: bool,
    /// Cached running maximum of every entry's `explored_iter` (kept by
    /// `insert`/`mark_explored`, so seeded runs resume in O(1) instead of
    /// rescanning the whole table).
    max_explored: u64,
    /// Per-predicate derivation records, parallel to each predicate's
    /// entry list. `None` unless [`Self::enable_provenance`] was called.
    prov: Option<Vec<Vec<Derivation>>>,
    stats: TableStats,
}

impl ExtensionTable {
    /// Create a table for `num_preds` predicates.
    pub fn new(num_preds: usize, impl_kind: EtImpl) -> Self {
        ExtensionTable {
            preds: vec![PredTable::default(); num_preds],
            impl_kind,
            changed: false,
            max_explored: 0,
            prov: None,
            stats: TableStats::default(),
        }
    }

    /// Turn on derivation tracking. Existing entries (from a seed table
    /// created without provenance) get empty records so the parallel
    /// vecs stay index-aligned.
    pub fn enable_provenance(&mut self) {
        if self.prov.is_none() {
            self.prov = Some(
                self.preds
                    .iter()
                    .map(|p| vec![Derivation::default(); p.entries.len()])
                    .collect(),
            );
        }
    }

    /// Whether derivation tracking is on. The machine samples this once
    /// at construction so the off path stays free of per-call checks.
    pub fn provenance_enabled(&self) -> bool {
        self.prov.is_some()
    }

    /// The derivation record of `(pred, idx)`, if tracking is on.
    pub fn derivation(&self, pred: usize, idx: usize) -> Option<&Derivation> {
        self.prov.as_ref().map(|p| &p[pred][idx])
    }

    /// Fill in the creation context of a just-inserted entry: the
    /// calling clause (`None` for the entry goal), the calling pattern
    /// of the parent table entry, and the iteration. No-op when
    /// tracking is off.
    pub fn record_insert_provenance(
        &mut self,
        pred: usize,
        idx: usize,
        origin: Option<DerivationOrigin>,
        parent_call: Option<PatternId>,
        iter: u64,
    ) {
        if let Some(prov) = self.prov.as_mut() {
            let d = &mut prov[pred][idx];
            d.origin = origin;
            d.parent_call = parent_call;
            d.created_iter = iter;
        }
    }

    /// The lookup-structure label this table was created with. Since the
    /// id-indexed probe unified the consult path, both modes share the
    /// same lookup code; the label remains for ablation reporting.
    pub fn impl_kind(&self) -> EtImpl {
        self.impl_kind
    }

    /// Index of the entry for `call` under `pred`, if present. Equality
    /// is an integer compare on interned ids, and both table modes answer
    /// from the per-predicate id index in one probe (`scan_steps` remains
    /// the consult-cost counter: exactly one step per lookup now). The
    /// Linear mode's probe is semantics-preserving — interned ids are
    /// canonical, so the probe finds precisely the entry the paper's
    /// linear rescan would have found, which debug builds re-check
    /// against the scan on every call.
    pub fn find(&mut self, pred: usize, call: PatternId) -> Option<usize> {
        self.stats.lookups += 1;
        self.stats.scan_steps += 1;
        let found = self.preds[pred].index.get(&call).copied();
        debug_assert_eq!(
            found,
            self.preds[pred].entries.iter().position(|e| e.call == call),
            "id-indexed probe diverged from the linear rescan"
        );
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Like [`Self::find`], but without touching the stats counters.
    /// Used by debug-only consistency checks so that the counters stay
    /// identical between debug and release builds.
    pub fn find_quiet(&self, pred: usize, call: PatternId) -> Option<usize> {
        self.preds[pred].index.get(&call).copied()
    }

    /// The entry at `(pred, idx)`.
    pub fn entry(&self, pred: usize, idx: usize) -> &Entry {
        &self.preds[pred].entries[idx]
    }

    /// Index of the first entry under `pred` whose calling pattern
    /// subsumes `call` (`call ⊑ entry.call`), deciding the order through
    /// `interner`'s leq memo cache. Quiet with respect to the
    /// machine-level stats counters: this is the *session*-level reuse
    /// probe, counted by [`awam_obs::SessionStats`] instead.
    pub fn find_subsuming(
        &self,
        pred: usize,
        call: PatternId,
        interner: &mut SessionInterner,
    ) -> Option<usize> {
        self.preds[pred]
            .entries
            .iter()
            .position(|e| interner.leq(call, e.call))
    }

    /// The highest `explored_iter` over all entries — the resume point
    /// for a fixpoint run seeded with this table: starting the global
    /// iteration counter above it guarantees no stale entry is mistaken
    /// for "already explored this round". O(1): the maximum is maintained
    /// by [`Self::insert`] and [`Self::mark_explored`].
    pub fn max_explored_iter(&self) -> u64 {
        debug_assert_eq!(
            self.max_explored,
            self.preds
                .iter()
                .flat_map(|p| p.entries.iter())
                .map(|e| e.explored_iter)
                .max()
                .unwrap_or(0),
            "cached max_explored_iter out of sync with the entries"
        );
        self.max_explored
    }

    /// Insert a fresh entry (marked explored in `iter`) and return its
    /// index. The calling pattern is an interned id, so nothing is
    /// cloned — the hashed index stores the same id.
    pub fn insert(&mut self, pred: usize, call: PatternId, iter: u64) -> usize {
        self.stats.inserts += 1;
        self.max_explored = self.max_explored.max(iter);
        let table = &mut self.preds[pred];
        let idx = table.entries.len();
        // Both modes maintain the id index (see `PredTable::index`); the
        // `impl_kind` distinction is now purely the ablation label plus
        // the historical counter semantics.
        table.index.insert(call, idx);
        table.entries.push(Entry {
            call,
            success: None,
            explored_iter: iter,
            version: 0,
        });
        table.deps.push(Vec::new());
        if let Some(prov) = self.prov.as_mut() {
            prov[pred].push(Derivation {
                created_iter: iter,
                ..Derivation::default()
            });
        }
        idx
    }

    /// Mark an existing entry explored in `iter`.
    pub fn mark_explored(&mut self, pred: usize, idx: usize, iter: u64) {
        self.max_explored = self.max_explored.max(iter);
        self.preds[pred].entries[idx].explored_iter = iter;
    }

    /// Record the dependencies observed while exploring `(pred, idx)`.
    pub fn set_deps(&mut self, pred: usize, idx: usize, mut deps: Vec<(usize, usize, u64)>) {
        deps.sort_unstable();
        deps.dedup();
        self.preds[pred].deps[idx] = deps;
    }

    /// The recorded dependencies of an entry.
    pub fn deps(&self, pred: usize, idx: usize) -> &[(usize, usize, u64)] {
        &self.preds[pred].deps[idx]
    }

    /// Whether every dependency of `(pred, idx)` still has the version it
    /// had when the entry was last explored (and the entry has been
    /// explored at least once).
    pub fn deps_unchanged(&self, pred: usize, idx: usize) -> bool {
        let entry = &self.preds[pred].entries[idx];
        if entry.explored_iter == 0 {
            return false;
        }
        self.preds[pred].deps[idx]
            .iter()
            .all(|&(p, i, v)| self.preds[p].entries[i].version == v)
    }

    /// The current version of an entry's summary.
    pub fn version(&self, pred: usize, idx: usize) -> u64 {
        self.preds[pred].entries[idx].version
    }

    /// Lub `success` into the entry (through `interner`'s memo caches);
    /// returns whether the summary grew (also recorded in the global
    /// change flag).
    ///
    /// `prov` carries the `(clause, iteration)` context of the solution
    /// being folded in; pass `None` when tracking is off (or from call
    /// sites that have no clause context). A growing update appends a
    /// [`LubStep`] to the entry's derivation when tracking is on.
    pub fn update_success(
        &mut self,
        pred: usize,
        idx: usize,
        success: PatternId,
        interner: &mut SessionInterner,
        prov: Option<(usize, u64)>,
    ) -> bool {
        self.stats.summary_updates += 1;
        let entry = &mut self.preds[pred].entries[idx];
        let new = match entry.success {
            // Fast path: the summary already equals the new pattern (the
            // common case once the fixpoint is nearly reached). With
            // interned ids this is a single integer compare.
            Some(old) if old == success => return false,
            // Planted bug for the fuzz harness (see `crate::fault`):
            // freeze the first summary instead of widening it.
            Some(_) if crate::fault::skip_lub() => return false,
            Some(old) => {
                // Subsumption probe through the id-pair leq memo cache:
                // `success ⊑ old` means the summary is already wide
                // enough. A leq miss computes `lub(success, old)`
                // internally, which warms the (unordered) lub cache, so
                // the growing branch's lub below is a cache hit.
                if interner.leq(success, old) {
                    return false;
                }
                let new = interner.lub(old, success);
                debug_assert_ne!(old, new, "leq said success ⋢ old, so the lub must grow");
                entry.success = Some(new);
                entry.version += 1;
                self.stats.lub_widenings += 1;
                new
            }
            None => {
                entry.success = Some(success);
                entry.version += 1;
                success
            }
        };
        self.changed = true;
        self.stats.version_bumps += 1;
        if let Some(prov_store) = self.prov.as_mut() {
            if let Some((clause, iter)) = prov {
                prov_store[pred][idx].lub_steps.push(LubStep {
                    clause,
                    iter,
                    input: success,
                    result: new,
                });
            }
        }
        true
    }

    /// Whether any success summary changed since the last [`Self::clear_changed`].
    pub fn changed(&self) -> bool {
        self.changed
    }

    /// Reset the change flag (between global iterations).
    pub fn clear_changed(&mut self) {
        self.changed = false;
    }

    /// All entries of a predicate.
    pub fn entries(&self, pred: usize) -> &[Entry] {
        &self.preds[pred].entries
    }

    /// Number of predicate slots the table was created with.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// Quietly seed an entry migrated from another table: no stats
    /// counters move (the entry was not derived by this run), but the
    /// id index and the cached `max_explored_iter` are maintained, and
    /// the provenance store (when enabled) is padded so the parallel
    /// vecs stay index-aligned. Returns the new entry's index.
    pub fn seed_entry(
        &mut self,
        pred: usize,
        call: PatternId,
        success: Option<PatternId>,
        explored_iter: u64,
        version: u64,
    ) -> usize {
        self.max_explored = self.max_explored.max(explored_iter);
        let table = &mut self.preds[pred];
        let idx = table.entries.len();
        table.index.insert(call, idx);
        table.entries.push(Entry {
            call,
            success,
            explored_iter,
            version,
        });
        table.deps.push(Vec::new());
        if let Some(prov) = self.prov.as_mut() {
            prov[pred].push(Derivation::default());
        }
        idx
    }

    /// Overwrite the derivation record of a seeded entry with one
    /// carried over from another table. No-op when tracking is off.
    pub fn seed_derivation(&mut self, pred: usize, idx: usize, derivation: Derivation) {
        if let Some(prov) = self.prov.as_mut() {
            prov[pred][idx] = derivation;
        }
    }

    /// Total number of entries across predicates.
    pub fn len(&self) -> usize {
        self.preds.iter().map(|p| p.entries.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters accumulated by this table (lookups, hit/miss split,
    /// scan cost, inserts, summary-update behavior).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absdom::Pattern;

    fn pat(interner: &mut SessionInterner, specs: &[&str]) -> PatternId {
        interner.intern(Pattern::from_spec(specs).unwrap())
    }

    #[test]
    fn insert_and_find() {
        for kind in [EtImpl::Linear, EtImpl::Hashed] {
            let mut interner = SessionInterner::default();
            let any = pat(&mut interner, &["any"]);
            let g = pat(&mut interner, &["g"]);
            let mut t = ExtensionTable::new(2, kind);
            assert!(t.find(0, any).is_none());
            let idx = t.insert(0, any, 1);
            assert_eq!(t.find(0, any), Some(idx));
            assert!(t.find(1, any).is_none(), "per-predicate");
            assert!(t.find(0, g).is_none());
        }
    }

    #[test]
    fn insert_stores_the_id_without_new_interning() {
        // Regression: the hashed index used to clone the calling pattern
        // as its map key. With interned ids the insert path allocates no
        // pattern at all — re-interning the same pattern after the insert
        // is a dedup hit and the arena has not grown.
        let mut interner = SessionInterner::default();
        let call = pat(&mut interner, &["glist", "var"]);
        let misses_before = interner.stats().intern_misses;
        let arena_before = interner.len();
        let mut t = ExtensionTable::new(1, EtImpl::Hashed);
        let idx = t.insert(0, call, 1);
        assert_eq!(interner.len(), arena_before, "insert interned nothing");
        let again = pat(&mut interner, &["glist", "var"]);
        assert_eq!(again, call, "same id on re-intern");
        assert_eq!(interner.stats().intern_misses, misses_before);
        assert!(interner.stats().bytes_saved > 0, "dedup hit recorded");
        assert_eq!(t.find(0, call), Some(idx));
    }

    #[test]
    fn success_lubbing_sets_changed() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let atom = pat(&mut interner, &["atom"]);
        let int = pat(&mut interner, &["int"]);
        let konst = pat(&mut interner, &["const"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any, 1);
        assert!(!t.changed());
        t.update_success(0, idx, atom, &mut interner, None);
        assert!(t.changed());
        t.clear_changed();
        // Same success again: no change.
        t.update_success(0, idx, atom, &mut interner, None);
        assert!(!t.changed());
        // Larger success: lub grows.
        t.update_success(0, idx, int, &mut interner, None);
        assert!(t.changed());
        assert_eq!(t.entry(0, idx).success, Some(konst));
    }

    #[test]
    fn explored_iteration_tracking() {
        let mut interner = SessionInterner::default();
        let empty = pat(&mut interner, &[]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, empty, 1);
        assert_eq!(t.entry(0, idx).explored_iter, 1);
        t.mark_explored(0, idx, 2);
        assert_eq!(t.entry(0, idx).explored_iter, 2);
    }

    #[test]
    fn max_explored_iter_is_cached() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let mut t = ExtensionTable::new(2, EtImpl::Linear);
        assert_eq!(t.max_explored_iter(), 0);
        let idx = t.insert(0, any, 3);
        assert_eq!(t.max_explored_iter(), 3);
        t.insert(1, g, 2);
        assert_eq!(t.max_explored_iter(), 3, "max keeps the high-water mark");
        t.mark_explored(0, idx, 7);
        assert_eq!(t.max_explored_iter(), 7);
        // (In debug builds max_explored_iter re-derives the max by scan
        // and asserts agreement, so these checks cover the cache too.)
    }

    #[test]
    fn stats_count_scans() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let var = pat(&mut interner, &["var"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        t.insert(0, any, 1);
        t.insert(0, g, 1);
        t.find(0, g);
        t.find(0, var);
        let stats = t.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(
            stats.scan_steps, 2,
            "id-indexed consult: one probe per lookup"
        );
        assert_eq!(stats.inserts, 2);
    }

    #[test]
    fn stats_track_summary_updates() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let atom = pat(&mut interner, &["atom"]);
        let int = pat(&mut interner, &["int"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any, 1);
        t.update_success(0, idx, atom, &mut interner, None); // first summary
        t.update_success(0, idx, atom, &mut interner, None); // identical: fast path
        t.update_success(0, idx, int, &mut interner, None); // lub grows to const
        let stats = t.stats();
        assert_eq!(stats.summary_updates, 3);
        assert_eq!(stats.lub_widenings, 1, "only the growing lub counts");
        assert_eq!(stats.version_bumps, 2, "first set + one widening");
        // The non-trivial update went through the leq memo cache, and the
        // leq-internal lub warmed the unordered lub cache so the growing
        // branch's lub was a hit.
        let istats = interner.stats();
        assert_eq!(istats.leq_calls, 1, "one non-equal, non-first update");
        assert!(istats.lub_cache_hits > 0, "leq warmed the lub cache");
    }

    #[test]
    fn update_success_answers_subsumed_inputs_from_the_leq_cache() {
        let mut interner = SessionInterner::default();
        let any_arg = pat(&mut interner, &["any"]);
        let konst = pat(&mut interner, &["const"]);
        let atom = pat(&mut interner, &["atom"]);
        let int = pat(&mut interner, &["int"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any_arg, 1);
        t.update_success(0, idx, konst, &mut interner, None);
        t.clear_changed();
        // atom ⊑ const and int ⊑ const: neither grows the summary.
        assert!(!t.update_success(0, idx, atom, &mut interner, None));
        assert!(!t.update_success(0, idx, atom, &mut interner, None));
        assert!(!t.update_success(0, idx, int, &mut interner, None));
        assert!(!t.changed());
        assert_eq!(t.entry(0, idx).success, Some(konst));
        let istats = interner.stats();
        assert_eq!(istats.leq_calls, 3);
        assert_eq!(istats.leq_cache_hits, 1, "repeated (atom, const) probe");
        assert_eq!(t.stats().lub_widenings, 0);
    }

    #[test]
    fn provenance_records_insert_context_and_lub_chain() {
        let mut interner = SessionInterner::default();
        let any_arg = pat(&mut interner, &["any"]);
        let parent = pat(&mut interner, &["glist"]);
        let atom = pat(&mut interner, &["atom"]);
        let int = pat(&mut interner, &["int"]);
        let konst = pat(&mut interner, &["const"]);
        let mut t = ExtensionTable::new(2, EtImpl::Linear);
        assert!(!t.provenance_enabled());
        t.enable_provenance();
        assert!(t.provenance_enabled());
        let idx = t.insert(1, any_arg, 2);
        t.record_insert_provenance(
            1,
            idx,
            Some(DerivationOrigin { pred: 0, clause: 3 }),
            Some(parent),
            2,
        );
        t.update_success(1, idx, atom, &mut interner, Some((0, 2)));
        t.update_success(1, idx, atom, &mut interner, Some((0, 2))); // no-op
        t.update_success(1, idx, int, &mut interner, Some((1, 3)));
        let d = t.derivation(1, idx).unwrap();
        assert_eq!(d.origin, Some(DerivationOrigin { pred: 0, clause: 3 }));
        assert_eq!(d.created_iter, 2);
        assert_eq!(d.parent_call, Some(parent));
        assert_eq!(
            d.lub_steps,
            vec![
                LubStep {
                    clause: 0,
                    iter: 2,
                    input: atom,
                    result: atom
                },
                LubStep {
                    clause: 1,
                    iter: 3,
                    input: int,
                    result: konst
                },
            ],
            "only growing updates are recorded"
        );
        // Entries without tracking report no derivation.
        let plain = ExtensionTable::new(1, EtImpl::Linear);
        assert!(plain.derivation(0, 0).is_none());
    }

    #[test]
    fn enable_provenance_pads_existing_entries() {
        let mut interner = SessionInterner::default();
        let any_arg = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        t.insert(0, any_arg, 1);
        t.enable_provenance();
        let seeded = t.derivation(0, 0).unwrap();
        assert_eq!(*seeded, Derivation::default(), "seed entry gets a blank");
        let idx = t.insert(0, g, 4);
        assert_eq!(t.derivation(0, idx).unwrap().created_iter, 4);
    }

    #[test]
    fn find_subsuming_uses_the_order() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let atom = pat(&mut interner, &["atom"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any, 1);
        // atom ⊑ any: subsumed by the memoized entry.
        assert_eq!(t.find_subsuming(0, atom, &mut interner), Some(idx));
        assert_eq!(t.find_subsuming(0, g, &mut interner), Some(idx));
        // The probe warmed the leq cache.
        assert!(interner.stats().leq_calls > 0);
        let mut narrow = ExtensionTable::new(1, EtImpl::Linear);
        narrow.insert(0, atom, 1);
        assert_eq!(narrow.find_subsuming(0, any, &mut interner), None);
    }
}
