//! The extension table: the memo structure of the ET-based control scheme.
//!
//! One table per analysis run. Each predicate holds a list of
//! `(calling pattern, summarized success pattern)` entries; multiple
//! calling patterns are kept per predicate while the success patterns for
//! each calling pattern are lubbed together (§6 of the paper).
//!
//! The paper implements the table as "a linear list of (calling-pattern,
//! success-pattern) pairs"; [`EtImpl::Linear`] reproduces that, and
//! [`EtImpl::Hashed`] adds an index for the ablation study (our
//! Ablation B).
//!
//! Patterns are stored as interned [`PatternId`]s (see
//! [`absdom::intern`]): the linear scan compares integers instead of
//! walking pattern graphs, the hashed index keys on ids with no pattern
//! clones, and the summary lub / subsumption probes go through the
//! session interner's memo caches.

use absdom::{FxHashMap, PatternId, SessionInterner};
use awam_obs::TableStats;

/// Which lookup structure the table uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EtImpl {
    /// Linear scan per predicate — the paper's implementation.
    #[default]
    Linear,
    /// Hash index from calling pattern to entry.
    Hashed,
}

/// One memo entry.
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// The calling pattern (canonical, interned).
    pub call: PatternId,
    /// The lub of all success patterns found so far, if any.
    pub success: Option<PatternId>,
    /// The iteration in which this calling pattern was last explored.
    pub explored_iter: u64,
    /// Version counter, bumped whenever the success summary grows (used
    /// by the dependency-tracking iteration strategy).
    pub version: u64,
}

#[derive(Clone, Debug, Default)]
struct PredTable {
    entries: Vec<Entry>,
    /// The table entries (and their versions) each entry's last
    /// exploration read; parallel to `entries` (kept out of [`Entry`] so
    /// the entry itself stays `Copy`).
    deps: Vec<Vec<(usize, usize, u64)>>,
    /// Calling-pattern id → entry index. A fixed-seed hash map
    /// ([`FxHashMap`]), not `std`'s `RandomState`-seeded one: the
    /// per-instance random seed would make any future iteration over the
    /// index nondeterministic between runs (the same bug class the
    /// `rev_deps` index had). Probes are O(1) integer hashes.
    index: FxHashMap<PatternId, usize>,
}

/// The extension table.
#[derive(Clone, Debug)]
pub struct ExtensionTable {
    preds: Vec<PredTable>,
    impl_kind: EtImpl,
    /// Whether any success entry changed since the flag was last cleared.
    changed: bool,
    /// Cached running maximum of every entry's `explored_iter` (kept by
    /// `insert`/`mark_explored`, so seeded runs resume in O(1) instead of
    /// rescanning the whole table).
    max_explored: u64,
    stats: TableStats,
}

impl ExtensionTable {
    /// Create a table for `num_preds` predicates.
    pub fn new(num_preds: usize, impl_kind: EtImpl) -> Self {
        ExtensionTable {
            preds: vec![PredTable::default(); num_preds],
            impl_kind,
            changed: false,
            max_explored: 0,
            stats: TableStats::default(),
        }
    }

    /// Index of the first entry under `pred` whose calling pattern
    /// satisfies `test` (used with the allocation-free matcher; the
    /// closure receives the interned calling-pattern id).
    pub fn find_by(
        &mut self,
        pred: usize,
        mut test: impl FnMut(PatternId) -> bool,
    ) -> Option<usize> {
        self.stats.lookups += 1;
        let table = &self.preds[pred];
        for (i, e) in table.entries.iter().enumerate() {
            self.stats.scan_steps += 1;
            if test(e.call) {
                self.stats.hits += 1;
                return Some(i);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Index of the entry for `call` under `pred`, if present. Equality
    /// is an integer compare on interned ids.
    pub fn find(&mut self, pred: usize, call: PatternId) -> Option<usize> {
        self.stats.lookups += 1;
        let found = match self.impl_kind {
            EtImpl::Linear => {
                let table = &self.preds[pred];
                let mut found = None;
                for (i, e) in table.entries.iter().enumerate() {
                    self.stats.scan_steps += 1;
                    if e.call == call {
                        found = Some(i);
                        break;
                    }
                }
                found
            }
            EtImpl::Hashed => {
                self.stats.scan_steps += 1;
                self.preds[pred].index.get(&call).copied()
            }
        };
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Like [`Self::find`], but without touching the stats counters.
    /// Used by debug-only consistency checks so that the counters stay
    /// identical between debug and release builds.
    pub fn find_quiet(&self, pred: usize, call: PatternId) -> Option<usize> {
        match self.impl_kind {
            EtImpl::Linear => self.preds[pred].entries.iter().position(|e| e.call == call),
            EtImpl::Hashed => self.preds[pred].index.get(&call).copied(),
        }
    }

    /// The entry at `(pred, idx)`.
    pub fn entry(&self, pred: usize, idx: usize) -> &Entry {
        &self.preds[pred].entries[idx]
    }

    /// Index of the first entry under `pred` whose calling pattern
    /// subsumes `call` (`call ⊑ entry.call`), deciding the order through
    /// `interner`'s leq memo cache. Quiet with respect to the
    /// machine-level stats counters: this is the *session*-level reuse
    /// probe, counted by [`awam_obs::SessionStats`] instead.
    pub fn find_subsuming(
        &self,
        pred: usize,
        call: PatternId,
        interner: &mut SessionInterner,
    ) -> Option<usize> {
        self.preds[pred]
            .entries
            .iter()
            .position(|e| interner.leq(call, e.call))
    }

    /// The highest `explored_iter` over all entries — the resume point
    /// for a fixpoint run seeded with this table: starting the global
    /// iteration counter above it guarantees no stale entry is mistaken
    /// for "already explored this round". O(1): the maximum is maintained
    /// by [`Self::insert`] and [`Self::mark_explored`].
    pub fn max_explored_iter(&self) -> u64 {
        debug_assert_eq!(
            self.max_explored,
            self.preds
                .iter()
                .flat_map(|p| p.entries.iter())
                .map(|e| e.explored_iter)
                .max()
                .unwrap_or(0),
            "cached max_explored_iter out of sync with the entries"
        );
        self.max_explored
    }

    /// Insert a fresh entry (marked explored in `iter`) and return its
    /// index. The calling pattern is an interned id, so nothing is
    /// cloned — the hashed index stores the same id.
    pub fn insert(&mut self, pred: usize, call: PatternId, iter: u64) -> usize {
        self.stats.inserts += 1;
        self.max_explored = self.max_explored.max(iter);
        let table = &mut self.preds[pred];
        let idx = table.entries.len();
        if self.impl_kind == EtImpl::Hashed {
            table.index.insert(call, idx);
        }
        table.entries.push(Entry {
            call,
            success: None,
            explored_iter: iter,
            version: 0,
        });
        table.deps.push(Vec::new());
        idx
    }

    /// Mark an existing entry explored in `iter`.
    pub fn mark_explored(&mut self, pred: usize, idx: usize, iter: u64) {
        self.max_explored = self.max_explored.max(iter);
        self.preds[pred].entries[idx].explored_iter = iter;
    }

    /// Record the dependencies observed while exploring `(pred, idx)`.
    pub fn set_deps(&mut self, pred: usize, idx: usize, mut deps: Vec<(usize, usize, u64)>) {
        deps.sort_unstable();
        deps.dedup();
        self.preds[pred].deps[idx] = deps;
    }

    /// The recorded dependencies of an entry.
    pub fn deps(&self, pred: usize, idx: usize) -> &[(usize, usize, u64)] {
        &self.preds[pred].deps[idx]
    }

    /// Whether every dependency of `(pred, idx)` still has the version it
    /// had when the entry was last explored (and the entry has been
    /// explored at least once).
    pub fn deps_unchanged(&self, pred: usize, idx: usize) -> bool {
        let entry = &self.preds[pred].entries[idx];
        if entry.explored_iter == 0 {
            return false;
        }
        self.preds[pred].deps[idx]
            .iter()
            .all(|&(p, i, v)| self.preds[p].entries[i].version == v)
    }

    /// The current version of an entry's summary.
    pub fn version(&self, pred: usize, idx: usize) -> u64 {
        self.preds[pred].entries[idx].version
    }

    /// Lub `success` into the entry (through `interner`'s memo cache);
    /// returns whether the summary grew (also recorded in the global
    /// change flag).
    pub fn update_success(
        &mut self,
        pred: usize,
        idx: usize,
        success: PatternId,
        interner: &mut SessionInterner,
    ) -> bool {
        self.stats.summary_updates += 1;
        let entry = &mut self.preds[pred].entries[idx];
        match entry.success {
            // Fast path: the summary already equals the new pattern (the
            // common case once the fixpoint is nearly reached). With
            // interned ids this is a single integer compare.
            Some(old) if old == success => false,
            // Planted bug for the fuzz harness (see `crate::fault`):
            // freeze the first summary instead of widening it.
            Some(_) if crate::fault::skip_lub() => false,
            Some(old) => {
                let new = interner.lub(old, success);
                if old != new {
                    entry.success = Some(new);
                    entry.version += 1;
                    self.changed = true;
                    self.stats.lub_widenings += 1;
                    self.stats.version_bumps += 1;
                    true
                } else {
                    false
                }
            }
            None => {
                entry.success = Some(success);
                entry.version += 1;
                self.changed = true;
                self.stats.version_bumps += 1;
                true
            }
        }
    }

    /// Whether any success summary changed since the last [`Self::clear_changed`].
    pub fn changed(&self) -> bool {
        self.changed
    }

    /// Reset the change flag (between global iterations).
    pub fn clear_changed(&mut self) {
        self.changed = false;
    }

    /// All entries of a predicate.
    pub fn entries(&self, pred: usize) -> &[Entry] {
        &self.preds[pred].entries
    }

    /// Total number of entries across predicates.
    pub fn len(&self) -> usize {
        self.preds.iter().map(|p| p.entries.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters accumulated by this table (lookups, hit/miss split,
    /// scan cost, inserts, summary-update behavior).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absdom::Pattern;

    fn pat(interner: &mut SessionInterner, specs: &[&str]) -> PatternId {
        interner.intern(Pattern::from_spec(specs).unwrap())
    }

    #[test]
    fn insert_and_find() {
        for kind in [EtImpl::Linear, EtImpl::Hashed] {
            let mut interner = SessionInterner::default();
            let any = pat(&mut interner, &["any"]);
            let g = pat(&mut interner, &["g"]);
            let mut t = ExtensionTable::new(2, kind);
            assert!(t.find(0, any).is_none());
            let idx = t.insert(0, any, 1);
            assert_eq!(t.find(0, any), Some(idx));
            assert!(t.find(1, any).is_none(), "per-predicate");
            assert!(t.find(0, g).is_none());
        }
    }

    #[test]
    fn insert_stores_the_id_without_new_interning() {
        // Regression: the hashed index used to clone the calling pattern
        // as its map key. With interned ids the insert path allocates no
        // pattern at all — re-interning the same pattern after the insert
        // is a dedup hit and the arena has not grown.
        let mut interner = SessionInterner::default();
        let call = pat(&mut interner, &["glist", "var"]);
        let misses_before = interner.stats().intern_misses;
        let arena_before = interner.len();
        let mut t = ExtensionTable::new(1, EtImpl::Hashed);
        let idx = t.insert(0, call, 1);
        assert_eq!(interner.len(), arena_before, "insert interned nothing");
        let again = pat(&mut interner, &["glist", "var"]);
        assert_eq!(again, call, "same id on re-intern");
        assert_eq!(interner.stats().intern_misses, misses_before);
        assert!(interner.stats().bytes_saved > 0, "dedup hit recorded");
        assert_eq!(t.find(0, call), Some(idx));
    }

    #[test]
    fn success_lubbing_sets_changed() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let atom = pat(&mut interner, &["atom"]);
        let int = pat(&mut interner, &["int"]);
        let konst = pat(&mut interner, &["const"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any, 1);
        assert!(!t.changed());
        t.update_success(0, idx, atom, &mut interner);
        assert!(t.changed());
        t.clear_changed();
        // Same success again: no change.
        t.update_success(0, idx, atom, &mut interner);
        assert!(!t.changed());
        // Larger success: lub grows.
        t.update_success(0, idx, int, &mut interner);
        assert!(t.changed());
        assert_eq!(t.entry(0, idx).success, Some(konst));
    }

    #[test]
    fn explored_iteration_tracking() {
        let mut interner = SessionInterner::default();
        let empty = pat(&mut interner, &[]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, empty, 1);
        assert_eq!(t.entry(0, idx).explored_iter, 1);
        t.mark_explored(0, idx, 2);
        assert_eq!(t.entry(0, idx).explored_iter, 2);
    }

    #[test]
    fn max_explored_iter_is_cached() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let mut t = ExtensionTable::new(2, EtImpl::Linear);
        assert_eq!(t.max_explored_iter(), 0);
        let idx = t.insert(0, any, 3);
        assert_eq!(t.max_explored_iter(), 3);
        t.insert(1, g, 2);
        assert_eq!(t.max_explored_iter(), 3, "max keeps the high-water mark");
        t.mark_explored(0, idx, 7);
        assert_eq!(t.max_explored_iter(), 7);
        // (In debug builds max_explored_iter re-derives the max by scan
        // and asserts agreement, so these checks cover the cache too.)
    }

    #[test]
    fn stats_count_scans() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let var = pat(&mut interner, &["var"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        t.insert(0, any, 1);
        t.insert(0, g, 1);
        t.find(0, g);
        t.find(0, var);
        let stats = t.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.scan_steps, 4, "each linear scan walked both entries");
        assert_eq!(stats.inserts, 2);
    }

    #[test]
    fn stats_track_summary_updates() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let atom = pat(&mut interner, &["atom"]);
        let int = pat(&mut interner, &["int"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any, 1);
        t.update_success(0, idx, atom, &mut interner); // first summary
        t.update_success(0, idx, atom, &mut interner); // identical: fast path
        t.update_success(0, idx, int, &mut interner); // lub grows to const
        let stats = t.stats();
        assert_eq!(stats.summary_updates, 3);
        assert_eq!(stats.lub_widenings, 1, "only the growing lub counts");
        assert_eq!(stats.version_bumps, 2, "first set + one widening");
    }

    #[test]
    fn find_subsuming_uses_the_order() {
        let mut interner = SessionInterner::default();
        let any = pat(&mut interner, &["any"]);
        let g = pat(&mut interner, &["g"]);
        let atom = pat(&mut interner, &["atom"]);
        let mut t = ExtensionTable::new(1, EtImpl::Linear);
        let idx = t.insert(0, any, 1);
        // atom ⊑ any: subsumed by the memoized entry.
        assert_eq!(t.find_subsuming(0, atom, &mut interner), Some(idx));
        assert_eq!(t.find_subsuming(0, g, &mut interner), Some(idx));
        // The probe warmed the leq cache.
        assert!(interner.stats().leq_calls > 0);
        let mut narrow = ExtensionTable::new(1, EtImpl::Linear);
        narrow.insert(0, atom, 1);
        assert_eq!(narrow.find_subsuming(0, any, &mut interner), None);
    }
}
