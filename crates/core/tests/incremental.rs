//! Hand-built incremental edit scenarios over the Table 1 benchmarks.
//!
//! Three shapes, each with exact [`InvalidationStats`] tripwires (the
//! pinned numbers are observed values; a change means the invalidation
//! algorithm's precision moved and must be re-justified):
//!
//! * a **no-op edit** (whitespace-only source change) invalidates
//!   nothing — the clause diff sees through formatting;
//! * a **leaf edit** (duplicating a clause of a predicate near the
//!   bottom of the call graph) resets only that predicate's reverse-
//!   dependency cone — entries outside the cone survive verbatim;
//! * an **entry/bottom edit** at the cone's extremes: editing the entry
//!   predicate resets only its own entry (nothing depends on it), while
//!   editing a leaf that everything depends on resets the entire table
//!   (a full re-fixpoint).
//!
//! Every scenario also checks the headline correctness claim: after the
//! incremental update, the reachable core of the table (and its
//! rendered report) is byte-identical to a cold analysis of the edited
//! source.

use awam_core::incremental::{ProgramEdit, Workspace};
use awam_obs::InvalidationStats;
use bench_suite::Benchmark;

/// A warm workspace for one benchmark: compiled, analyzed once.
fn warm_workspace(b: &Benchmark) -> Workspace {
    let mut ws = Workspace::from_source(b.source)
        .unwrap_or_else(|e| panic!("{}: workspace build failed: {e}", b.name));
    ws.analyze(b.entry, b.entry_specs)
        .unwrap_or_else(|e| panic!("{}: cold analysis failed: {e}", b.name));
    ws
}

/// The partition invariant every migration must uphold.
fn assert_partition(name: &str, stats: &InvalidationStats) {
    assert_eq!(
        stats.entries_before,
        stats.entries_kept + stats.entries_reset + stats.entries_dropped,
        "{name}: kept/reset/dropped must partition the pre-edit table: {stats:?}"
    );
}

/// Incremental core (dump + report) must be byte-equal to a cold
/// analysis of the same edited source.
fn assert_matches_cold(name: &str, ws: &mut Workspace, b: &Benchmark) {
    let mut cold = Workspace::from_source(ws.source())
        .unwrap_or_else(|e| panic!("{name}: cold rebuild failed: {e}"));
    let warm_dump = ws
        .core_dump(b.entry, b.entry_specs)
        .unwrap_or_else(|e| panic!("{name}: warm core dump failed: {e}"));
    let cold_dump = cold
        .core_dump(b.entry, b.entry_specs)
        .unwrap_or_else(|e| panic!("{name}: cold core dump failed: {e}"));
    assert_eq!(warm_dump, cold_dump, "{name}: reachable cores diverge");
    let warm_report = ws
        .core_report(b.entry, b.entry_specs)
        .unwrap_or_else(|e| panic!("{name}: warm core report failed: {e}"));
    let cold_report = cold
        .core_report(b.entry, b.entry_specs)
        .unwrap_or_else(|e| panic!("{name}: cold core report failed: {e}"));
    assert_eq!(warm_report, cold_report, "{name}: rendered reports diverge");
}

#[test]
fn whitespace_only_edit_invalidates_nothing_on_any_benchmark() {
    for b in bench_suite::all() {
        let mut ws = warm_workspace(&b);
        let before = ws.memo_len() as u64;
        assert!(before > 0, "{}: analysis populated the table", b.name);
        let reformatted = format!("\n{}\n\n", b.source);
        let stats = ws
            .update_source(&reformatted)
            .unwrap_or_else(|e| panic!("{}: no-op update failed: {e}", b.name));
        assert_eq!(
            stats,
            InvalidationStats {
                entries_before: before,
                entries_kept: before,
                ..InvalidationStats::default()
            },
            "{}: a whitespace-only edit must keep every entry untouched",
            b.name
        );
        let warm = ws
            .analyze(b.entry, b.entry_specs)
            .unwrap_or_else(|e| panic!("{}: post-edit analysis failed: {e}", b.name));
        assert_eq!(warm.iterations, 0, "{}: still a warm hit", b.name);
    }
}

#[test]
fn duplicate_clause_edit_reconverges_on_every_benchmark() {
    // Duplicating the entry predicate's first clause is a real textual
    // change (non-empty clause diff) with identical semantics, so it
    // exercises the full migrate-and-repair path on all 11 benchmarks.
    for b in bench_suite::all() {
        let mut ws = warm_workspace(&b);
        let first_clause = {
            let program = ws.program();
            program
                .clauses
                .iter()
                .find(|c| {
                    let key = c.pred_key();
                    program.interner.resolve(key.name) == b.entry && key.arity == 0
                })
                .map(|c| prolog_syntax::pretty::clause_to_string(c, &program.interner))
                .unwrap_or_else(|| panic!("{}: entry predicate has a clause", b.name))
        };
        let stats = ws
            .apply_edit(&ProgramEdit::AddClause {
                clause: first_clause,
            })
            .unwrap_or_else(|e| panic!("{}: duplicate-clause edit failed: {e}", b.name));
        assert_partition(b.name, &stats);
        assert_eq!(stats.preds_changed, 1, "{}: only the entry changed", b.name);
        assert!(stats.entries_reset >= 1, "{}: the entry entry resets", b.name);
        assert_eq!(stats.entries_dropped, 0, "{}: nothing was removed", b.name);
        assert_matches_cold(b.name, &mut ws, &b);
    }
}

#[test]
fn leaf_edit_resets_only_its_cone() {
    // query.pl has two independent leaves under density/2: pop/2 and
    // area/2. Duplicating a pop/2 clause must reset pop's cone (pop,
    // density, query/1, the query/0 driver) and spare area/2 entirely.
    let b = bench_suite::by_name("query").expect("query benchmark exists");
    let mut ws = warm_workspace(&b);
    let stats = ws
        .apply_edit(&ProgramEdit::AddClause {
            clause: "pop(china, 8250).".to_owned(),
        })
        .expect("duplicate pop clause applies");
    assert_partition(b.name, &stats);
    // Observed tripwires: query's table holds 5 entries (query/0,
    // query/1, density/2, pop/2, area/2). The pop cone is everything
    // but area/2.
    assert_eq!(stats.preds_changed, 1, "only pop/2 changed");
    assert_eq!(stats.entries_before, 5);
    assert_eq!(stats.entries_kept, 1, "area/2 survives outside the cone");
    assert_eq!(stats.entries_reset, 4, "pop, density, query/1, query/0 reset");
    assert_eq!(stats.entries_dropped, 0);
    assert_eq!(stats.frontier, 4);
    assert!(stats.refix_explorations > 0, "the repair run did real work");
    assert_matches_cold(b.name, &mut ws, &b);
}

#[test]
fn entry_edit_resets_only_the_entry() {
    // Nothing depends on the entry driver, so editing it invalidates
    // exactly one entry — the reverse-dependency direction in miniature.
    let b = bench_suite::by_name("query").expect("query benchmark exists");
    let mut ws = warm_workspace(&b);
    let stats = ws
        .apply_edit(&ProgramEdit::AddClause {
            clause: "query :- query(_).".to_owned(),
        })
        .expect("duplicate driver clause applies");
    assert_partition(b.name, &stats);
    assert_eq!(stats.preds_changed, 1, "only query/0 changed");
    assert_eq!(stats.entries_before, 5);
    assert_eq!(stats.entries_kept, 4, "everything below the entry survives");
    assert_eq!(stats.entries_reset, 1, "only the driver's entry resets");
    assert_eq!(stats.entries_dropped, 0);
    assert_eq!(stats.frontier, 1);
    assert_matches_cold(b.name, &mut ws, &b);
}

#[test]
fn bottom_edit_forces_a_full_refixpoint() {
    // nreverse is a straight chain (nreverse -> nrev -> concatenate):
    // editing the bottom leaf puts every entry in the cone, so the
    // repair is a full re-fixpoint seeded from an empty frontier table.
    let b = bench_suite::by_name("nreverse").expect("nreverse benchmark exists");
    let mut ws = warm_workspace(&b);
    let before = ws.memo_len() as u64;
    let stats = ws
        .apply_edit(&ProgramEdit::AddClause {
            clause: "concatenate([], L, L).".to_owned(),
        })
        .expect("duplicate concatenate clause applies");
    assert_partition(b.name, &stats);
    assert_eq!(stats.preds_changed, 1, "only concatenate/3 changed");
    assert_eq!(stats.entries_before, before);
    assert_eq!(stats.entries_kept, 0, "the whole chain is in the cone");
    assert_eq!(stats.entries_reset, before);
    assert_eq!(stats.frontier, before);
    assert!(stats.refix_explorations > 0);
    let warm = ws
        .analyze(b.entry, b.entry_specs)
        .expect("post-repair analysis");
    assert_eq!(warm.iterations, 0, "the repair already reconverged");
    assert_matches_cold(b.name, &mut ws, &b);
}

#[test]
fn replace_and_remove_clause_edits_reconverge() {
    let b = bench_suite::by_name("qsort").expect("qsort benchmark exists");
    let mut ws = warm_workspace(&b);
    let stats = ws
        .apply_edit(&ProgramEdit::ReplaceClause {
            pred: "partition".to_owned(),
            arity: 4,
            clause: 0,
            text: "partition([], _, [], []).".to_owned(),
        })
        .expect("replace partition base clause");
    // The replacement text is identical to the existing clause, so the
    // diff is empty: this is the no-op-edit fast path through the edit
    // (not source) API.
    assert_eq!(stats.entries_reset, 0, "identical replacement is a no-op");
    assert_eq!(stats.entries_kept, stats.entries_before);

    // Now a real removal: drop partition's third clause (the
    // no-cut backtracking arm). The program still compiles; partition's
    // cone must reset and the result must match a cold analysis.
    let stats = ws
        .apply_edit(&ProgramEdit::RemoveClause {
            pred: "partition".to_owned(),
            arity: 4,
            clause: 2,
        })
        .expect("remove partition clause");
    assert_partition(b.name, &stats);
    assert!(stats.entries_reset >= 1, "partition's cone resets");
    assert_matches_cold(b.name, &mut ws, &b);
}
