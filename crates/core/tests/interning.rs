//! Hash-consing equivalence: the interned consult path (hashed,
//! id-keyed) must be observationally identical to the structural path
//! (linear scan through the allocation-free matcher) — same per-predicate
//! results, same rendered reports, byte-identical JSONL traces — on every
//! Table 1 benchmark. Plus randomized checks that the session interner's
//! memoized lattice operations agree with direct computation.

use absdom::{AbsLeaf, PNode, Pattern, SessionInterner};
use awam_core::{Analyzer, EtImpl};
use awam_obs::JsonlTracer;

fn analyzer(b: &bench_suite::Benchmark, et: EtImpl) -> Analyzer {
    let program = b.parse().expect("parse");
    Analyzer::builder()
        .et_impl(et)
        .compile(&program)
        .expect("compile")
}

#[test]
fn interned_consult_matches_structural_on_all_benchmarks() {
    for b in bench_suite::all() {
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");
        let structural = analyzer(&b, EtImpl::Linear);
        let interned = analyzer(&b, EtImpl::Hashed);
        let lin = structural
            .analyze(b.entry, &entry)
            .expect("linear analysis");
        let hash = interned.analyze(b.entry, &entry).expect("hashed analysis");
        assert_eq!(
            lin.predicates, hash.predicates,
            "{}: per-predicate results diverge between consult paths",
            b.name
        );
        assert_eq!(lin.iterations, hash.iterations, "{}", b.name);
        assert_eq!(
            lin.instructions_executed, hash.instructions_executed,
            "{}: abstract work diverges",
            b.name
        );
        // The rendered reports embed the table counters, whose scan-step
        // accounting legitimately differs between a linear scan and an
        // index probe — so compare only the result tables, not the
        // counter lines.
        let strip = |r: String| {
            r.lines()
                .filter(|l| !l.starts_with("extension table:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(lin.report(&structural)),
            strip(hash.report(&interned)),
            "{}: rendered reports diverge",
            b.name
        );
    }
}

#[test]
fn traces_are_byte_identical_between_consult_paths() {
    // The acceptance bar of the interning change: the serialized event
    // stream a `--trace FILE` run writes must not change by a single
    // byte when the lookup structure switches from structural equality
    // scans to interned id probes.
    for b in bench_suite::all() {
        let entry = Pattern::from_spec(b.entry_specs).expect("specs");
        let mut streams = Vec::new();
        for et in [EtImpl::Linear, EtImpl::Hashed] {
            let analyzer = analyzer(&b, et);
            let mut tracer = JsonlTracer::new(Vec::new());
            analyzer
                .analyze_traced(b.entry, &entry, &mut tracer)
                .expect("traced analysis");
            streams.push(tracer.into_inner().expect("flush"));
        }
        assert!(!streams[0].is_empty(), "{}: empty trace", b.name);
        assert_eq!(
            streams[0], streams[1],
            "{}: JSONL trace bytes differ between structural and interned paths",
            b.name
        );
    }
}

#[test]
fn end_to_end_interner_counters_show_dedup() {
    // Regression guard for the insert path: with id-keyed entries the
    // table never clones a pattern, so the only pattern constructions
    // are the interner's misses — and the repeated patterns of a real
    // fixpoint run must show up as dedup hits and saved bytes.
    let b = bench_suite::all()
        .into_iter()
        .find(|b| b.name == "nreverse")
        .expect("nreverse in suite");
    let entry = Pattern::from_spec(b.entry_specs).expect("specs");
    for et in [EtImpl::Linear, EtImpl::Hashed] {
        let analysis = analyzer(&b, et).analyze(b.entry, &entry).expect("analysis");
        let i = analysis.intern_stats;
        assert!(i.intern_hits > 0, "{et:?}: no dedup hits at all");
        assert!(i.bytes_saved > 0, "{et:?}: dedup saved no bytes");
        assert!(i.intern_misses <= i.intern_hits + i.intern_misses, "sanity");
        // The stats surface carries the counters out.
        let json = analysis.stats_json();
        let interner = json.get("interner").expect("interner key in stats_json");
        assert!(interner.get("intern_hits").is_some());
        assert!(interner.get("lub_cache_hits").is_some());
        assert!(interner.get("bytes_saved").is_some());
    }
}

// ----- randomized memo-cache agreement -----

/// xorshift64* — the workspace's deterministic PRNG (offline build, no
/// proptest).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random small pattern: leaves, integers, nil, lists, structs.
fn random_pattern(rng: &mut Rng, arity: usize) -> Pattern {
    let mut interner = prolog_syntax::Interner::new();
    let mut nodes = Vec::new();
    let roots = (0..arity)
        .map(|_| random_node(rng, 2, &mut nodes, &mut interner))
        .collect();
    Pattern::new(nodes, roots)
}

fn random_node(
    rng: &mut Rng,
    depth: usize,
    nodes: &mut Vec<PNode>,
    interner: &mut prolog_syntax::Interner,
) -> usize {
    let node = if depth > 0 && rng.below(3) == 0 {
        if rng.below(2) == 0 {
            let e = random_node(rng, depth - 1, nodes, interner);
            PNode::List(e)
        } else {
            let f = interner.intern(if rng.below(2) == 0 { "f" } else { "g" });
            let n = 1 + rng.below(2) as usize;
            let args = (0..n)
                .map(|_| random_node(rng, depth - 1, nodes, interner))
                .collect();
            PNode::Struct(f, args)
        }
    } else {
        match rng.below(3) {
            0 => PNode::Leaf(AbsLeaf::ALL[rng.below(AbsLeaf::ALL.len() as u64) as usize]),
            1 => PNode::Int(rng.below(5) as i64),
            _ => PNode::Atom(absdom::nil_symbol()),
        }
    };
    nodes.push(node);
    nodes.len() - 1
}

#[test]
fn memoized_lattice_ops_agree_with_direct_computation() {
    let mut rng = Rng::new(0xE71D_2026);
    let mut session = SessionInterner::default();
    for round in 0..500 {
        let arity = 1 + rng.below(3) as usize;
        let a = random_pattern(&mut rng, arity);
        let b = random_pattern(&mut rng, a.arity());
        let ia = session.intern(a.clone());
        let ib = session.intern(b.clone());
        // Interning is the identity on the element.
        assert_eq!(session.resolve(ia), &a, "round {round}");
        assert_eq!(session.resolve(ib), &b, "round {round}");
        assert_eq!(session.is_ground(ia), a.is_ground(), "round {round}");
        // Memoized lub and leq equal direct computation — twice, so the
        // second answer comes from the cache.
        let direct = a.lub(&b);
        for pass in 0..2 {
            let joined = session.lub(ia, ib);
            assert_eq!(
                session.resolve(joined),
                &direct,
                "round {round} pass {pass}: lub mismatch"
            );
            assert_eq!(
                session.leq(ia, ib),
                a.leq(&b),
                "round {round} pass {pass}: leq mismatch"
            );
            assert_eq!(
                session.leq(ib, ia),
                b.leq(&a),
                "round {round} pass {pass}: reversed leq mismatch"
            );
        }
    }
    let stats = session.stats();
    assert!(stats.lub_cache_hits > 0, "second passes must hit the cache");
    assert!(stats.leq_cache_hits > 0);
    assert!(stats.intern_hits > 0, "random duplicates must deduplicate");
}
