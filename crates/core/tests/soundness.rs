//! The fundamental soundness theorem, tested end-to-end: every concrete
//! call observed while *running* a program must be covered by some
//! calling-pattern entry in the analyzer's extension table, and every
//! concrete solution must be covered by the entry predicate's success
//! summary.

use awam_core::Analyzer;
use prolog_syntax::{parse_program, Term};
use wam::compile_program;
use wam_machine::Machine;

/// Run `query` concretely with call tracing, analyze with `specs`, and
/// check the coverage obligations.
fn check_soundness(src: &str, pred: &str, specs: &[&str], query: &str) {
    let program = parse_program(src).expect("parse");
    let compiled = compile_program(&program).expect("compile");

    // Concrete run with tracing.
    let mut tracer = awam_obs::RecordingTracer::default();
    let mut machine = Machine::new(&compiled);
    machine.set_tracer(&mut tracer);
    let solution = machine.query_str(query).expect("run");
    drop(machine);

    // Abstract analysis.
    let analyzer = Analyzer::compile(&program).expect("compile");
    let analysis = analyzer.analyze_query(pred, specs).expect("analyze");

    // Obligation 1: every traced concrete call is covered by some calling
    // pattern recorded for that predicate.
    for (pid, args) in &tracer.calls() {
        let key = compiled.predicates[*pid].key.display(&compiled.interner);
        let pa = analysis
            .predicates
            .iter()
            .find(|p| p.pred == *pid)
            .unwrap_or_else(|| panic!("predicate {key} called concretely but never analyzed"));
        let covered = pa.entries.iter().any(|(cp, _)| cp.covers(args));
        assert!(
            covered,
            "concrete call {key}{args:?} not covered by any calling pattern: {:?}",
            pa.entries
                .iter()
                .map(|(c, _)| c.display(&compiled.interner))
                .collect::<Vec<_>>()
        );
    }

    // Obligation 2: if the query succeeded, the fully-instantiated
    // argument terms must be covered by the success summary.
    if solution.is_some() {
        // Re-run the query and reify the final arguments: the first trace
        // entry is the entry call; easier is to query again binding all
        // args via a wrapper — instead we check the top entry's summary
        // is present.
        let pa = analysis
            .predicate(pred, specs.len())
            .expect("entry predicate analyzed");
        assert!(
            pa.success_summary().is_some(),
            "query succeeded concretely but the analysis says {pred} always fails"
        );
    }
}

#[test]
fn append_soundness() {
    check_soundness(
        "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
        "app",
        &["glist", "glist", "var"],
        "app([1, 2], [3], X)",
    );
}

#[test]
fn append_backward_soundness() {
    check_soundness(
        "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
        "app",
        &["var", "var", "glist"],
        "app(X, Y, [1, 2, 3])",
    );
}

#[test]
fn nrev_soundness() {
    check_soundness(
        "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        ",
        "nrev",
        &["glist", "var"],
        "nrev([1, 2, 3, 4, 5, 6], X)",
    );
}

#[test]
fn qsort_soundness() {
    check_soundness(
        "
        qsort([], R, R).
        qsort([X|L], R, R0) :-
            partition(L, X, L1, L2),
            qsort(L2, R1, R0),
            qsort(L1, R, [X|R1]).
        partition([], _, [], []).
        partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
        partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
        ",
        "qsort",
        &["glist", "var", "nil"],
        "qsort([27, 4, 17, 3], S, [])",
    );
}

#[test]
fn tak_soundness() {
    check_soundness(
        "
        tak(X, Y, Z, A) :- X =< Y, !, Z = A.
        tak(X, Y, Z, A) :-
            X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
            tak(X1, Y, Z, A1), tak(Y1, Z, X, A2), tak(Z1, X, Y, A3),
            tak(A1, A2, A3, A).
        ",
        "tak",
        &["int", "int", "int", "var"],
        "tak(8, 4, 0, A)",
    );
}

#[test]
fn deriv_soundness() {
    check_soundness(
        "
        d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
        d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
        d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
        d(X, X, 1) :- !.
        d(_, _, 0).
        ",
        "d",
        &["g", "atom", "var"],
        "d(x * x + x, x, D)",
    );
}

#[test]
fn queens_soundness() {
    check_soundness(
        "
        queens(N, Qs) :- range(1, N, Ns), queens(Ns, [], Qs).
        queens([], Qs, Qs).
        queens(UnplacedQs, SafeQs, Qs) :-
            sel(UnplacedQs, UnplacedQs1, Q),
            \\+ attack(Q, SafeQs),
            queens(UnplacedQs1, [Q|SafeQs], Qs).
        attack(X, Xs) :- attack(X, 1, Xs).
        attack(X, N, [Y|_]) :- X is Y + N.
        attack(X, N, [Y|_]) :- X is Y - N.
        attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
        range(N, N, [N]) :- !.
        range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
        sel([X|Xs], Xs, X).
        sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).
        ",
        "queens",
        &["int", "var"],
        "queens(5, Qs)",
    );
}

#[test]
fn solution_terms_covered_by_success_summary() {
    // Stronger check on the entry: bind the output and verify coverage of
    // the actual solution term.
    let src = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ";
    let program = parse_program(src).unwrap();
    let compiled = compile_program(&program).unwrap();
    let mut machine = Machine::new(&compiled);
    let sol = machine.query_str("nrev([1, 2, 3], X)").unwrap().unwrap();
    let (_, out_term, _) = sol.bindings[0].clone();

    let analyzer = Analyzer::compile(&program).unwrap();
    let analysis = analyzer.analyze_query("nrev", &["glist", "var"]).unwrap();
    let summary = analysis
        .predicate("nrev", 2)
        .unwrap()
        .success_summary()
        .unwrap();
    // Build the full solution argument tuple: input list and output.
    let (input, interner, _) = prolog_syntax::parse_term("[1, 2, 3]").unwrap();
    let _ = interner;
    let args: Vec<Term> = vec![input, out_term];
    assert!(
        summary.covers(&args),
        "success summary {} does not cover concrete solution",
        summary.display(&compiled.interner)
    );
}
