//! γ-soundness of abstract unification, tested by sampling.
//!
//! The soundness criterion of §4.1 (via set unification): for abstract
//! terms `P` and `Q`, and any concrete terms `t ∈ γ(P)` and `u ∈ γ(Q)`
//! with disjoint variables, if `t` and `u` unify concretely with mgu σ,
//! then the abstract unification of (materializations of) `P` and `Q`
//! must succeed, and the resulting abstract term must cover `σ(t)`.
//!
//! Pattern and instance generation live in `awam-testkit` (the
//! [`random_pattern`] / [`gamma_instance`] γ-sampler shared with the
//! fuzz campaign); this file keeps only the reference concrete unifier
//! and the properties themselves. The case budget honors
//! `AWAM_FUZZ_ITERS`.

use absdom::AbsLeaf;
use awam_core::{extract::extract, ACell, AbstractMachine, EtImpl};
use awam_testkit::{fuzz_iters, gamma_instance, random_pattern, Rng};
use prolog_syntax::{Term, VarId};
use std::collections::HashMap;

// ----- a reference concrete unifier over syntax terms -----

fn resolve(t: &Term, subst: &HashMap<VarId, Term>) -> Term {
    match t {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => resolve(bound, subst),
            None => t.clone(),
        },
        _ => t.clone(),
    }
}

fn unify_terms(a: &Term, b: &Term, subst: &mut HashMap<VarId, Term>) -> bool {
    let a = resolve(a, subst);
    let b = resolve(b, subst);
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), _) => {
            subst.insert(*x, b);
            true
        }
        (_, Term::Var(y)) => {
            subst.insert(*y, a);
            true
        }
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            f == g
                && xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| unify_terms(x, y, subst))
        }
        _ => false,
    }
}

fn apply(t: &Term, subst: &HashMap<VarId, Term>) -> Term {
    match t {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => apply(bound, subst),
            None => t.clone(),
        },
        Term::Int(_) | Term::Atom(_) => t.clone(),
        Term::Struct(f, args) => Term::Struct(*f, args.iter().map(|a| apply(a, subst)).collect()),
    }
}

// ----- the property -----

fn trivial_program() -> wam::CompiledProgram {
    wam::compile_program(&prolog_syntax::parse_program("p.").unwrap()).unwrap()
}

fn cases() -> u64 {
    fuzz_iters(192)
}

#[test]
fn abstract_unify_is_gamma_sound() {
    for case in 0..cases() {
        let mut rng = Rng::new(0x5eed_0001_u64.wrapping_add(case));

        let compiled = trivial_program();
        let mut interner = compiled.interner.clone();
        let pa = random_pattern(&mut rng, 2, &mut interner);
        let pb = random_pattern(&mut rng, 2, &mut interner);

        // Concrete instances with disjoint variable ranges.
        let t = gamma_instance(
            &pa,
            pa.root(0),
            &mut interner,
            &mut rng,
            0,
            &mut HashMap::new(),
        );
        let u = gamma_instance(
            &pb,
            pb.root(0),
            &mut interner,
            &mut rng,
            100,
            &mut HashMap::new(),
        );
        // The generator must honor γ; skip the (non-existent) cases where
        // it does not, like prop_assume did.
        if !pa.covers(std::slice::from_ref(&t)) || !pb.covers(std::slice::from_ref(&u)) {
            continue;
        }

        let mut subst = HashMap::new();
        let concrete_ok = unify_terms(&t, &u, &mut subst);

        // Abstract unification of the materialized patterns.
        let mut machine = AbstractMachine::new(&compiled, 4, EtImpl::Linear);
        let ca = awam_core::extract::materialize(machine.heap_mut(), &pa)[0];
        let cb = awam_core::extract::materialize(machine.heap_mut(), &pb)[0];
        let abstract_ok = machine.unify_cells(ca, cb);

        if concrete_ok {
            assert!(
                abstract_ok,
                "case {case}: concrete unification of {t:?} and {u:?} succeeded but \
                 abstract unification of {pa:?} and {pb:?} failed"
            );
            // And the result must cover the concretely unified term.
            let unified = apply(&t, &subst);
            let result = extract(machine.heap(), &[ca], 16);
            assert!(
                result.covers(std::slice::from_ref(&unified)),
                "case {case}: abstract result {result:?} does not cover σ(t) = {unified:?}"
            );
        }
    }
}

#[test]
fn constrain_ground_is_gamma_sound() {
    for case in 0..cases() {
        let mut rng = Rng::new(0x5eed_0002_u64.wrapping_add(case));

        let compiled = trivial_program();
        let mut interner = compiled.interner.clone();
        let pa = random_pattern(&mut rng, 2, &mut interner);
        let t = gamma_instance(
            &pa,
            pa.root(0),
            &mut interner,
            &mut rng,
            0,
            &mut HashMap::new(),
        );
        if !pa.covers(std::slice::from_ref(&t)) {
            continue;
        }

        let mut machine = AbstractMachine::new(&compiled, 4, EtImpl::Linear);
        let cell = awam_core::extract::materialize(machine.heap_mut(), &pa)[0];
        let g_addr = machine.heap_mut().len();
        machine.heap_mut().push(ACell::Abs(AbsLeaf::Ground));
        let ok = machine.unify_cells(cell, ACell::Ref(g_addr));
        // If the instance is already ground, the abstract op must succeed
        // and the result must still cover it.
        if t.is_ground() {
            assert!(
                ok,
                "case {case}: grounding a ground instance of {pa:?} failed"
            );
            let result = extract(machine.heap(), &[cell], 16);
            assert!(result.covers(std::slice::from_ref(&t)));
        }
    }
}
