//! γ-soundness of abstract unification, tested by sampling.
//!
//! The soundness criterion of §4.1 (via set unification): for abstract
//! terms `P` and `Q`, and any concrete terms `t ∈ γ(P)` and `u ∈ γ(Q)`
//! with disjoint variables, if `t` and `u` unify concretely with mgu σ,
//! then the abstract unification of (materializations of) `P` and `Q`
//! must succeed, and the resulting abstract term must cover `σ(t)`.
//!
//! We generate random patterns, random covered instances, run a reference
//! concrete unifier on the instances, run the machine's abstract unifier
//! on the materializations, and compare.

use absdom::{AbsLeaf, PNode, Pattern};
use awam_core::{extract::extract, ACell, AbstractMachine, EtImpl};
use prolog_syntax::{Interner, Term, VarId};
use std::collections::HashMap;

// ----- random patterns (arity 1) -----

#[derive(Clone, Debug)]
enum PShape {
    Leaf(u8),
    Int(i64),
    Nil,
    List(Box<PShape>),
    Struct(u8, Vec<PShape>),
}

/// The same LCG as `instance()` below, driving shape generation instead
/// of proptest (the workspace builds offline).
fn lcg(seed: &mut u64) -> u32 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*seed >> 33) as u32
}

fn pshape(seed: &mut u64, depth: usize) -> PShape {
    // Compound shapes with probability 1/3 below the depth cap; the same
    // leaf mix as before (Leaf, Int, Nil).
    if depth > 0 && lcg(seed).is_multiple_of(3) {
        if lcg(seed).is_multiple_of(2) {
            PShape::List(Box::new(pshape(seed, depth - 1)))
        } else {
            let f = (lcg(seed) % 2) as u8;
            let n = 1 + lcg(seed) % 2;
            let args = (0..n).map(|_| pshape(seed, depth - 1)).collect();
            PShape::Struct(f, args)
        }
    } else {
        match lcg(seed) % 3 {
            0 => PShape::Leaf((lcg(seed) % 7) as u8),
            1 => PShape::Int(i64::from(lcg(seed) % 7) - 3),
            _ => PShape::Nil,
        }
    }
}

fn build_pattern(shape: &PShape, interner: &mut Interner) -> Pattern {
    let mut nodes = Vec::new();
    let root = build_node(shape, &mut nodes, interner);
    Pattern::new(nodes, vec![root])
}

fn build_node(shape: &PShape, nodes: &mut Vec<PNode>, interner: &mut Interner) -> usize {
    let node = match shape {
        PShape::Leaf(i) => PNode::Leaf(AbsLeaf::ALL[*i as usize % AbsLeaf::ALL.len()]),
        PShape::Int(i) => PNode::Int(*i),
        PShape::Nil => PNode::Atom(absdom::nil_symbol()),
        PShape::List(e) => {
            let e = build_node(e, nodes, interner);
            PNode::List(e)
        }
        PShape::Struct(f, args) => {
            let name = interner.intern(if *f == 0 { "f" } else { "g" });
            let args = args
                .iter()
                .map(|a| build_node(a, nodes, interner))
                .collect();
            PNode::Struct(name, args)
        }
    };
    nodes.push(node);
    nodes.len() - 1
}

// ----- random covered instances -----

/// Produce a concrete term in γ(pattern-node), using `seed` for
/// deterministic "randomness" and `var_base` to keep variable ranges of
/// the two sides disjoint.
fn instance(
    p: &Pattern,
    id: usize,
    interner: &mut Interner,
    seed: &mut u64,
    var_base: u32,
    shared: &mut HashMap<usize, Term>,
) -> Term {
    if let Some(t) = shared.get(&id) {
        return t.clone();
    }
    let mut next = || {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*seed >> 33) as u32
    };
    let term = match p.node(id) {
        PNode::Leaf(l) => instance_of_leaf(*l, interner, &mut next, var_base),
        PNode::Int(i) => Term::Int(*i),
        PNode::Atom(a) => Term::Atom(*a),
        PNode::Struct(f, args) => {
            let args = args
                .iter()
                .map(|&a| instance(p, a, interner, seed, var_base, shared))
                .collect();
            Term::Struct(*f, args)
        }
        PNode::List(e) => {
            let n = next() % 3;
            let items: Vec<Term> = (0..n)
                .map(|_| instance(p, *e, interner, seed, var_base, shared))
                .collect();
            Term::list(interner, items)
        }
    };
    shared.insert(id, term.clone());
    term
}

fn instance_of_leaf(
    l: AbsLeaf,
    interner: &mut Interner,
    next: &mut impl FnMut() -> u32,
    var_base: u32,
) -> Term {
    use AbsLeaf::*;
    match l {
        Var => Term::Var(VarId(var_base + next() % 4)),
        Integer => Term::Int(i64::from(next() % 7) - 3),
        Atom => Term::Atom(interner.intern(["a", "b", "c"][(next() % 3) as usize])),
        Const => {
            if next().is_multiple_of(2) {
                Term::Int(i64::from(next() % 5))
            } else {
                Term::Atom(interner.intern("k"))
            }
        }
        Ground => match next() % 3 {
            0 => Term::Int(i64::from(next() % 5)),
            1 => Term::Atom(interner.intern("gr")),
            _ => {
                let f = interner.intern("h");
                Term::Struct(f, vec![Term::Int(i64::from(next() % 3))])
            }
        },
        NonVar => match next() % 2 {
            0 => Term::Atom(interner.intern("nv")),
            _ => {
                let f = interner.intern("h");
                Term::Struct(f, vec![Term::Var(VarId(var_base + next() % 4))])
            }
        },
        Any => match next() % 3 {
            0 => Term::Var(VarId(var_base + next() % 4)),
            1 => Term::Int(i64::from(next() % 5)),
            _ => Term::Atom(interner.intern("x")),
        },
    }
}

// ----- a reference concrete unifier over syntax terms -----

fn resolve(t: &Term, subst: &HashMap<VarId, Term>) -> Term {
    match t {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => resolve(bound, subst),
            None => t.clone(),
        },
        _ => t.clone(),
    }
}

fn unify_terms(a: &Term, b: &Term, subst: &mut HashMap<VarId, Term>) -> bool {
    let a = resolve(a, subst);
    let b = resolve(b, subst);
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), _) => {
            subst.insert(*x, b);
            true
        }
        (_, Term::Var(y)) => {
            subst.insert(*y, a);
            true
        }
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            f == g
                && xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| unify_terms(x, y, subst))
        }
        _ => false,
    }
}

fn apply(t: &Term, subst: &HashMap<VarId, Term>) -> Term {
    match t {
        Term::Var(v) => match subst.get(v) {
            Some(bound) => apply(bound, subst),
            None => t.clone(),
        },
        Term::Int(_) | Term::Atom(_) => t.clone(),
        Term::Struct(f, args) => Term::Struct(*f, args.iter().map(|a| apply(a, subst)).collect()),
    }
}

// ----- the property -----

fn trivial_program() -> wam::CompiledProgram {
    wam::compile_program(&prolog_syntax::parse_program("p.").unwrap()).unwrap()
}

const CASES: u64 = 192;

#[test]
fn abstract_unify_is_gamma_sound() {
    for case in 0..CASES {
        let mut shape_seed = 0x5eed_0001_u64.wrapping_add(case.wrapping_mul(0x9e37_79b9));
        let a = pshape(&mut shape_seed, 2);
        let b = pshape(&mut shape_seed, 2);
        let seed = lcg(&mut shape_seed) as u64 ^ (u64::from(lcg(&mut shape_seed)) << 32);

        let compiled = trivial_program();
        let mut interner = compiled.interner.clone();
        let pa = build_pattern(&a, &mut interner);
        let pb = build_pattern(&b, &mut interner);

        // Concrete instances with disjoint variable ranges.
        let mut s1 = seed;
        let mut s2 = seed ^ 0xdead_beef;
        let t = instance(
            &pa,
            pa.root(0),
            &mut interner,
            &mut s1,
            0,
            &mut HashMap::new(),
        );
        let u = instance(
            &pb,
            pb.root(0),
            &mut interner,
            &mut s2,
            100,
            &mut HashMap::new(),
        );
        // The generator must honor γ; skip the (non-existent) cases where
        // it does not, like prop_assume did.
        if !pa.covers(std::slice::from_ref(&t)) || !pb.covers(std::slice::from_ref(&u)) {
            continue;
        }

        let mut subst = HashMap::new();
        let concrete_ok = unify_terms(&t, &u, &mut subst);

        // Abstract unification of the materialized patterns.
        let mut machine = AbstractMachine::new(&compiled, 4, EtImpl::Linear);
        let ca = awam_core::extract::materialize(machine.heap_mut(), &pa)[0];
        let cb = awam_core::extract::materialize(machine.heap_mut(), &pb)[0];
        let abstract_ok = machine.unify_cells(ca, cb);

        if concrete_ok {
            assert!(
                abstract_ok,
                "case {case}: concrete unification of {t:?} and {u:?} succeeded but \
                 abstract unification of {pa:?} and {pb:?} failed"
            );
            // And the result must cover the concretely unified term.
            let unified = apply(&t, &subst);
            let result = extract(machine.heap(), &[ca], 16);
            assert!(
                result.covers(std::slice::from_ref(&unified)),
                "case {case}: abstract result {result:?} does not cover σ(t) = {unified:?}"
            );
        }
    }
}

#[test]
fn constrain_ground_is_gamma_sound() {
    for case in 0..CASES {
        let mut shape_seed = 0x5eed_0002_u64.wrapping_add(case.wrapping_mul(0x85eb_ca6b));
        let a = pshape(&mut shape_seed, 2);
        let seed = lcg(&mut shape_seed) as u64 ^ (u64::from(lcg(&mut shape_seed)) << 32);

        let compiled = trivial_program();
        let mut interner = compiled.interner.clone();
        let pa = build_pattern(&a, &mut interner);
        let mut s = seed;
        let t = instance(
            &pa,
            pa.root(0),
            &mut interner,
            &mut s,
            0,
            &mut HashMap::new(),
        );
        if !pa.covers(std::slice::from_ref(&t)) {
            continue;
        }

        let mut machine = AbstractMachine::new(&compiled, 4, EtImpl::Linear);
        let cell = awam_core::extract::materialize(machine.heap_mut(), &pa)[0];
        let g_addr = machine.heap_mut().len();
        machine.heap_mut().push(ACell::Abs(AbsLeaf::Ground));
        let ok = machine.unify_cells(cell, ACell::Ref(g_addr));
        // If the instance is already ground, the abstract op must succeed
        // and the result must still cover it.
        if t.is_ground() {
            assert!(
                ok,
                "case {case}: grounding a ground instance of {pa:?} failed"
            );
            let result = extract(machine.heap(), &[cell], 16);
            assert!(result.covers(std::slice::from_ref(&t)));
        }
    }
}
