//! End-to-end analysis tests: compile Prolog source, run the abstract
//! WAM to fixpoint, and check the inferred modes/types/aliasing.

use absdom::{AbsLeaf, Pattern};
use awam_core::{Analyzer, ArgMode, EtImpl};
use prolog_syntax::parse_program;

fn analyze(src: &str, pred: &str, specs: &[&str]) -> (awam_core::Analysis, Analyzer) {
    let program = parse_program(src).expect("parse");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let analysis = analyzer.analyze_query(pred, specs).expect("analyze");
    (analysis, analyzer)
}

/// Leaf approximations of a predicate's success summary.
fn success_leaves(analysis: &awam_core::Analysis, name: &str, arity: usize) -> Vec<AbsLeaf> {
    let pred = analysis.predicate(name, arity).expect("predicate analyzed");
    let s = pred.success_summary().expect("has a success pattern");
    (0..arity).map(|i| s.leaf_approx(s.root(i))).collect()
}

const APPEND: &str = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

#[test]
fn append_ground_lists_give_ground_result() {
    let (analysis, analyzer) = analyze(APPEND, "app", &["glist", "glist", "var"]);
    let leaves = success_leaves(&analysis, "app", 3);
    assert!(leaves.iter().all(|l| l.is_ground()), "{leaves:?}");
    // And the third argument is in fact inferred to be a ground *list*.
    let pred = analysis.predicate("app", 3).unwrap();
    let s = pred.success_summary().unwrap();
    let rendered = s.display(analyzer.interner());
    assert!(
        rendered.contains("glist") || rendered.contains("[g"),
        "expected list type in {rendered}"
    );
}

#[test]
fn append_modes_are_in_in_out() {
    let (analysis, _) = analyze(APPEND, "app", &["glist", "glist", "var"]);
    let pred = analysis.predicate("app", 3).unwrap();
    let modes = pred.modes();
    assert_eq!(modes[2], ArgMode::OutGround, "{modes:?}");
}

#[test]
fn append_open_mode_stays_sound() {
    // Backward mode: app(X, Y, [1,2]) — first two args must come out
    // as (possibly improper prefixes…) lists; at minimum not claimed var.
    let (analysis, _) = analyze(APPEND, "app", &["var", "var", "glist"]);
    let leaves = success_leaves(&analysis, "app", 3);
    assert!(leaves[0].is_ground(), "prefix of a ground list is ground");
    assert!(leaves[1].is_ground(), "suffix of a ground list is ground");
}

#[test]
fn nrev_infers_ground_list() {
    let src = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ";
    let (analysis, analyzer) = analyze(src, "nrev", &["glist", "var"]);
    let pred = analysis.predicate("nrev", 2).unwrap();
    let s = pred.success_summary().unwrap();
    assert!(s.node_is_ground(s.root(1)));
    let report = analysis.report(&analyzer);
    assert!(report.contains("nrev/2"), "{report}");
    assert!(report.contains("app/3"), "{report}");
}

#[test]
fn arithmetic_grounds_outputs() {
    let src = "double(X, Y) :- Y is X * 2.";
    let (analysis, _) = analyze(src, "double", &["int", "var"]);
    let leaves = success_leaves(&analysis, "double", 2);
    assert_eq!(leaves[1], AbsLeaf::Integer);
}

#[test]
fn comparison_grounds_inputs() {
    let src = "check(X, Y) :- X < Y.";
    let (analysis, _) = analyze(src, "check", &["any", "any"]);
    let leaves = success_leaves(&analysis, "check", 2);
    assert!(leaves[0].is_ground());
    assert!(leaves[1].is_ground());
}

#[test]
fn factorial_fixpoint_terminates() {
    let src = "
        fact(0, 1) :- !.
        fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
    ";
    let (analysis, _) = analyze(src, "fact", &["int", "var"]);
    let leaves = success_leaves(&analysis, "fact", 2);
    assert_eq!(leaves[1], AbsLeaf::Integer);
    assert!(
        analysis.iterations <= 5,
        "iterations: {}",
        analysis.iterations
    );
}

#[test]
fn tak_terminates_and_types() {
    let src = "
        tak(X, Y, Z, A) :- X =< Y, !, Z = A.
        tak(X, Y, Z, A) :-
            X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
            tak(X1, Y, Z, A1), tak(Y1, Z, X, A2), tak(Z1, X, Y, A3),
            tak(A1, A2, A3, A).
    ";
    let (analysis, _) = analyze(src, "tak", &["int", "int", "int", "var"]);
    let leaves = success_leaves(&analysis, "tak", 4);
    // The result is either Z (int via entry) or the recursive result.
    assert!(leaves[3].is_ground(), "{leaves:?}");
}

#[test]
fn qsort_infers_ground_lists() {
    let src = "
        qsort([], R, R).
        qsort([X|L], R, R0) :-
            partition(L, X, L1, L2),
            qsort(L2, R1, R0),
            qsort(L1, R, [X|R1]).
        partition([], _, [], []).
        partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
        partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
    ";
    let (analysis, _) = analyze(src, "qsort", &["glist", "var", "nil"]);
    let pred = analysis.predicate("qsort", 3).unwrap();
    let s = pred.success_summary().unwrap();
    assert!(s.node_is_ground(s.root(1)), "sorted output is ground");
    // partition/4 must also be analyzed.
    assert!(analysis.predicate("partition", 4).is_some());
}

#[test]
fn failure_is_detected() {
    let src = "p(X) :- q(X), r(X). q(1). r(a).";
    let (analysis, _) = analyze(src, "p", &["var"]);
    let pred = analysis.predicate("p", 1).unwrap();
    // q binds X to 1 (int); r requires atom a → abstract failure.
    assert!(pred.success_summary().is_none(), "{pred:?}");
}

#[test]
fn aliasing_is_tracked_through_heads() {
    let src = "same(X, X).";
    let (analysis, _) = analyze(src, "same", &["var", "var"]);
    let pred = analysis.predicate("same", 2).unwrap();
    let aliases = awam_core::report::aliased_arg_pairs(pred);
    assert_eq!(aliases, vec![(0, 1)], "args aliased on success");
}

#[test]
fn aliasing_propagates_groundness() {
    // After same(X, Y), grounding X must ground Y.
    let src = "
        same(X, X).
        test(X, Y) :- same(X, Y), X = 5.
    ";
    let (analysis, _) = analyze(src, "test", &["var", "var"]);
    let leaves = success_leaves(&analysis, "test", 2);
    assert!(
        leaves[1].is_ground(),
        "aliased variable must be grounded: {leaves:?}"
    );
}

#[test]
fn deriv_types_flow() {
    let src = "
        d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
        d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
        d(X, X, 1) :- !.
        d(_, _, 0).
    ";
    let (analysis, _) = analyze(src, "d", &["g", "atom", "var"]);
    let leaves = success_leaves(&analysis, "d", 3);
    assert!(leaves[2].is_ground(), "derivative is ground: {leaves:?}");
}

#[test]
fn type_tests_narrow() {
    let src = "
        classify(X, atom) :- atom(X).
        classify(X, num) :- integer(X).
    ";
    let (analysis, _) = analyze(src, "classify", &["const", "var"]);
    let pred = analysis.predicate("classify", 2).unwrap();
    // Both clauses can abstractly succeed on const.
    assert_eq!(pred.entries.len(), 1);
    assert!(pred.success_summary().is_some());
    // With an int input only the integer clause survives.
    let (analysis, analyzer) = analyze(src, "classify", &["int", "var"]);
    let pred = analysis.predicate("classify", 2).unwrap();
    let s = pred.success_summary().unwrap();
    let rendered = s.display(analyzer.interner());
    assert!(rendered.contains("num"), "only the num branch: {rendered}");
    assert!(!rendered.contains("atom"), "{rendered}");
}

#[test]
fn var_type_test_fails_on_concrete() {
    let src = "isvar(X) :- var(X).";
    let (analysis, _) = analyze(src, "isvar", &["int"]);
    let pred = analysis.predicate("isvar", 1).unwrap();
    assert!(pred.success_summary().is_none());
    let (analysis, _) = analyze(src, "isvar", &["var"]);
    let pred = analysis.predicate("isvar", 1).unwrap();
    assert!(pred.success_summary().is_some());
}

#[test]
fn disjunction_branches_lub() {
    let src = "p(X) :- (X = 1 ; X = a).";
    let (analysis, _) = analyze(src, "p", &["var"]);
    let leaves = success_leaves(&analysis, "p", 1);
    assert_eq!(leaves[0], AbsLeaf::Const, "lub of int and atom: {leaves:?}");
}

#[test]
fn negation_is_sound() {
    let src = "p(X) :- \\+ q(X). q(1).";
    let (analysis, _) = analyze(src, "p", &["any"]);
    let pred = analysis.predicate("p", 1).unwrap();
    // \+ may succeed with no bindings.
    assert!(pred.success_summary().is_some());
}

#[test]
fn multiple_calling_patterns_kept_separately() {
    let src = "
        id(X, X).
        both(A, B) :- id(1, A), id(foo, B).
    ";
    let (analysis, _) = analyze(src, "both", &["var", "var"]);
    let id = analysis.predicate("id", 2).unwrap();
    assert_eq!(id.entries.len(), 2, "two distinct calling patterns: {id:?}");
    let leaves = success_leaves(&analysis, "both", 2);
    assert_eq!(leaves[0], AbsLeaf::Integer);
    assert_eq!(leaves[1], AbsLeaf::Atom);
}

#[test]
fn depth_restriction_controls_precision() {
    let src = "
        wrap(X, f(f(f(f(f(X)))))).
    ";
    let program = parse_program(src).unwrap();
    // Deep k keeps the whole structure; shallow k summarizes.
    let deep = Analyzer::builder().depth(8).compile(&program).unwrap();
    let a_deep = deep.analyze_query("wrap", &["int", "var"]).unwrap();
    let shallow = Analyzer::builder().depth(2).compile(&program).unwrap();
    let a_shallow = shallow.analyze_query("wrap", &["int", "var"]).unwrap();
    let s_deep = a_deep
        .predicate("wrap", 2)
        .unwrap()
        .success_summary()
        .unwrap();
    let s_shallow = a_shallow
        .predicate("wrap", 2)
        .unwrap()
        .success_summary()
        .unwrap();
    let d = s_deep.display(deep.interner());
    let s = s_shallow.display(shallow.interner());
    assert!(d.matches("f(").count() >= 5, "deep keeps structure: {d}");
    assert!(s.matches("f(").count() < 5, "shallow summarizes: {s}");
    // Both remain sound (ground in both cases).
    assert!(s_deep.node_is_ground(s_deep.root(1)));
    assert!(s_shallow.node_is_ground(s_shallow.root(1)));
}

#[test]
fn hashed_and_linear_tables_agree() {
    let src = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ";
    let program = parse_program(src).unwrap();
    let lin = Analyzer::builder()
        .et_impl(EtImpl::Linear)
        .compile(&program)
        .unwrap();
    let hsh = Analyzer::builder()
        .et_impl(EtImpl::Hashed)
        .compile(&program)
        .unwrap();
    let a = lin.analyze_query("nrev", &["glist", "var"]).unwrap();
    let b = hsh.analyze_query("nrev", &["glist", "var"]).unwrap();
    for (pa, pb) in a.predicates.iter().zip(&b.predicates) {
        assert_eq!(pa.name, pb.name);
        assert_eq!(pa.entries, pb.entries, "{}", pa.name);
    }
}

#[test]
fn instruction_counter_is_populated() {
    let (analysis, _) = analyze(APPEND, "app", &["glist", "glist", "var"]);
    assert!(analysis.instructions_executed > 0);
    assert!(analysis.table_stats.lookups > 0);
    assert!(analysis.table_stats.inserts > 0);
    assert_eq!(
        analysis.table_stats.hits + analysis.table_stats.misses,
        analysis.table_stats.lookups
    );
}

#[test]
fn zero_arity_predicates_analyze() {
    let src = "go :- helper. helper.";
    let (analysis, _) = analyze(src, "go", &[]);
    let pred = analysis.predicate("go", 0).unwrap();
    assert!(pred.success_summary().is_some());
    assert_eq!(pred.entries[0].0, Pattern::empty());
}

#[test]
fn unknown_entry_pattern_is_error() {
    let program = parse_program(APPEND).unwrap();
    let analyzer = Analyzer::compile(&program).unwrap();
    assert!(analyzer
        .analyze_query("app", &["frobnicate", "g", "g"])
        .is_err());
    assert!(analyzer.analyze_query("nosuch", &["g"]).is_err());
}

#[test]
fn success_pattern_application_narrows_caller() {
    // The caller's own variable must be narrowed by the callee's summary.
    let src = "
        mk(f(1, a)).
        use(X, Y) :- mk(X), X = f(Y, _).
    ";
    let (analysis, _) = analyze(src, "use", &["var", "var"]);
    let leaves = success_leaves(&analysis, "use", 2);
    assert!(leaves[0].is_ground());
    assert_eq!(leaves[1], AbsLeaf::Integer, "{leaves:?}");
}

#[test]
fn nonvar_test_on_var_fails() {
    let src = "p(X) :- nonvar(X).";
    let (analysis, _) = analyze(src, "p", &["var"]);
    assert!(analysis
        .predicate("p", 1)
        .unwrap()
        .success_summary()
        .is_none());
    let (analysis, _) = analyze(src, "p", &["g"]);
    assert!(analysis
        .predicate("p", 1)
        .unwrap()
        .success_summary()
        .is_some());
}

#[test]
fn list_instantiation_from_ground() {
    // get_list on a `ground` argument: [g|g] instance (Figure 4).
    let src = "head([H|_], H).";
    let (analysis, _) = analyze(src, "head", &["g", "var"]);
    let leaves = success_leaves(&analysis, "head", 2);
    assert!(leaves[1].is_ground(), "head of ground term is ground");
}

#[test]
fn list_instantiation_from_glist() {
    // get_list on glist: [g|glist] — the cdr stays a list.
    let src = "tail([_|T], T).";
    let (analysis, analyzer) = analyze(src, "tail", &["glist", "var"]);
    let pred = analysis.predicate("tail", 2).unwrap();
    let s = pred.success_summary().unwrap();
    let rendered = s.display(analyzer.interner());
    assert!(
        rendered.contains("glist"),
        "cdr keeps list type: {rendered}"
    );
}
