//! Weakened domains (ablation C) must stay *sound*: analyses run with
//! aliasing, list types, or structure types disabled still have to cover
//! every concrete call.

use absdom::DomainConfig;
use awam_core::Analyzer;
use wam_machine::Machine;

const CONFIGS: &[DomainConfig] = &[
    DomainConfig {
        aliasing: false,
        list_types: true,
        struct_types: true,
    },
    DomainConfig {
        aliasing: true,
        list_types: false,
        struct_types: true,
    },
    DomainConfig {
        aliasing: true,
        list_types: true,
        struct_types: false,
    },
    DomainConfig {
        aliasing: false,
        list_types: false,
        struct_types: false,
    },
];

#[test]
fn weakened_analyses_still_cover_concrete_calls() {
    for name in ["nreverse", "qsort", "times10", "queens_8"] {
        let b = bench_suite::by_name(name).unwrap();
        let program = b.parse().unwrap();
        let compiled = wam::compile_program(&program).unwrap();
        let mut tracer = awam_obs::RecordingTracer::default();
        let mut machine = Machine::new(&compiled);
        machine.set_tracer(&mut tracer);
        machine.set_max_steps(500_000);
        let _ = machine.query_str(b.entry);
        drop(machine);
        let calls = tracer.calls();

        for &config in CONFIGS {
            let analyzer = Analyzer::builder()
                .domain_config(config)
                .compile(&program)
                .unwrap();
            let analysis = analyzer
                .analyze_query(b.entry, b.entry_specs)
                .unwrap_or_else(|e| panic!("{name} under {config:?}: {e}"));
            for (pid, args) in calls.iter().take(5_000) {
                let pa = analysis
                    .predicates
                    .iter()
                    .find(|p| p.pred == *pid)
                    .unwrap_or_else(|| panic!("{name} under {config:?}: pred not analyzed"));
                assert!(
                    pa.entries.iter().any(|(cp, _)| cp.covers(args)),
                    "{name} under {config:?}: uncovered call to {}",
                    pa.name
                );
            }
        }
    }
}

#[test]
fn weakened_tables_are_coarser_or_equal() {
    // Disabling a domain feature can only reduce the number of distinct
    // calling patterns (coarser abstraction ⇒ more collisions).
    let b = bench_suite::by_name("times10").unwrap();
    let program = b.parse().unwrap();
    let full = Analyzer::compile(&program)
        .unwrap()
        .analyze_query(b.entry, b.entry_specs)
        .unwrap();
    let coarse = Analyzer::builder()
        .domain_config(DomainConfig {
            aliasing: false,
            list_types: false,
            struct_types: false,
        })
        .compile(&program)
        .unwrap()
        .analyze_query(b.entry, b.entry_specs)
        .unwrap();
    let count =
        |a: &awam_core::Analysis| -> usize { a.predicates.iter().map(|p| p.entries.len()).sum() };
    assert!(
        count(&coarse) <= count(&full),
        "coarse: {} vs full: {}",
        count(&coarse),
        count(&full)
    );
}
