//! The dependency-tracking (worklist) iteration strategy against the
//! paper's global-restart scheme.
//!
//! Exact table equality between the two is *not* a theorem: success
//! summaries accumulate every contribution ever lubbed in, so they depend
//! on exploration order (both strategies produce sound fixpoints that
//! over-approximate the least one). What must hold:
//!
//! * the same calling patterns are discovered;
//! * each entry succeeds/fails identically;
//! * the worklist's tables remain sound against concrete execution;
//! * the worklist does not blow up the work done.

use awam_core::{Analyzer, IterationStrategy};
use wam_machine::Machine;

#[test]
fn strategies_agree_on_calling_patterns_and_verdicts() {
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let restart = Analyzer::builder()
            .strategy(IterationStrategy::GlobalRestart)
            .compile(&program)
            .expect("compile");
        let dependency = Analyzer::builder()
            .strategy(IterationStrategy::Dependency)
            .compile(&program)
            .expect("compile");
        let a = restart
            .analyze_query(b.entry, b.entry_specs)
            .expect("restart analysis");
        let d = dependency
            .analyze_query(b.entry, b.entry_specs)
            .expect("dependency analysis");

        let a_names: Vec<&str> = a.predicates.iter().map(|p| p.name.as_str()).collect();
        let n_names: Vec<&str> = d.predicates.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(a_names, n_names, "{}: analyzed predicates differ", b.name);

        for (pa, pd) in a.predicates.iter().zip(&d.predicates) {
            // Same set of calling patterns…
            let mut ca: Vec<String> = pa.entries.iter().map(|(c, _)| format!("{c:?}")).collect();
            let mut cd: Vec<String> = pd.entries.iter().map(|(c, _)| format!("{c:?}")).collect();
            ca.sort();
            cd.sort();
            assert_eq!(
                ca, cd,
                "{}: calling patterns differ for {}",
                b.name, pa.name
            );
            // …with matching success/failure verdicts per pattern.
            for (call, success) in &pa.entries {
                let other = pd
                    .entries
                    .iter()
                    .find(|(c, _)| c == call)
                    .unwrap_or_else(|| panic!("{}: {} entry missing", b.name, pa.name));
                assert_eq!(
                    success.is_some(),
                    other.1.is_some(),
                    "{}: {} verdicts differ for {:?}",
                    b.name,
                    pa.name,
                    call
                );
            }
        }
        assert!(
            (d.instructions_executed as f64) <= a.instructions_executed as f64 * 1.5,
            "{}: dependency strategy did much more work ({} vs {})",
            b.name,
            d.instructions_executed,
            a.instructions_executed
        );
    }
}

#[test]
fn dependency_strategy_stays_sound_against_concrete_runs() {
    for name in ["nreverse", "qsort", "queens_8", "serialise"] {
        let b = bench_suite::by_name(name).unwrap();
        let program = b.parse().unwrap();
        let compiled = wam::compile_program(&program).unwrap();
        let mut tracer = awam_obs::RecordingTracer::default();
        let mut machine = Machine::new(&compiled);
        machine.set_tracer(&mut tracer);
        machine.set_max_steps(1_000_000);
        let _ = machine.query_str(b.entry);
        drop(machine);

        let analyzer = Analyzer::builder()
            .strategy(IterationStrategy::Dependency)
            .compile(&program)
            .unwrap();
        let analysis = analyzer.analyze_query(b.entry, b.entry_specs).unwrap();
        for (pid, args) in tracer.calls().iter().take(10_000) {
            let pa = analysis
                .predicates
                .iter()
                .find(|p| p.pred == *pid)
                .unwrap_or_else(|| panic!("{name}: predicate {pid} not analyzed"));
            assert!(
                pa.entries.iter().any(|(cp, _)| cp.covers(args)),
                "{name}: concrete call to {} not covered under the worklist strategy",
                pa.name
            );
        }
    }
}

#[test]
fn dependency_strategy_skips_redundant_exploration() {
    // On a multi-iteration benchmark the global scheme re-explores every
    // entry every iteration; the worklist only revisits what changed, so
    // its instruction count must be lower.
    let b = bench_suite::by_name("nreverse").unwrap();
    let program = b.parse().unwrap();
    let a = Analyzer::builder()
        .strategy(IterationStrategy::GlobalRestart)
        .compile(&program)
        .unwrap()
        .analyze_query(b.entry, b.entry_specs)
        .unwrap();
    let d = Analyzer::builder()
        .strategy(IterationStrategy::Dependency)
        .compile(&program)
        .unwrap()
        .analyze_query(b.entry, b.entry_specs)
        .unwrap();
    assert!(
        d.instructions_executed < a.instructions_executed,
        "dependency: {} vs restart: {}",
        d.instructions_executed,
        a.instructions_executed
    );
}
