% The five-houses ("zebra") puzzle: heavy backtracking over partially
% instantiated structures — the analyzer's worst case in Table 1.

zebra :- houses(_).

houses(Hs) :-
    Hs = [h(norwegian, _, _, _, _), _, h(_, _, _, milk, _), _, _],
    member(h(english, red, _, _, _), Hs),
    member(h(spanish, _, dog, _, _), Hs),
    member(h(_, green, _, coffee, _), Hs),
    member(h(ukrainian, _, _, tea, _), Hs),
    right_of(h(_, green, _, _, _), h(_, ivory, _, _, _), Hs),
    member(h(_, _, snails, _, oldgold), Hs),
    member(h(_, yellow, _, _, kools), Hs),
    next_to(h(_, _, _, _, chesterfields), h(_, _, fox, _, _), Hs),
    next_to(h(_, _, _, _, kools), h(_, _, horse, _, _), Hs),
    member(h(_, _, _, orange_juice, lucky_strike), Hs),
    member(h(japanese, _, _, _, parliaments), Hs),
    next_to(h(norwegian, _, _, _, _), h(_, blue, _, _, _), Hs),
    member(h(_, _, zebra, _, _), Hs),
    member(h(_, _, _, water, _), Hs).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

right_of(R, L, [L, R | _]).
right_of(R, L, [_ | T]) :- right_of(R, L, T).

next_to(X, Y, [X, Y | _]).
next_to(X, Y, [Y, X | _]).
next_to(X, Y, [_ | T]) :- next_to(X, Y, T).
