divide10 :- d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, _).
