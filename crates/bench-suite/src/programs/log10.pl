log10 :- d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, _).
