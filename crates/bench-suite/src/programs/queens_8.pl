% Eight queens by permutation generation with attack checking.

queens_8 :- queens(8, _).

queens(N, Qs) :- range(1, N, Ns), queens(Ns, [], Qs).

queens([], Qs, Qs).
queens(UnplacedQs, SafeQs, Qs) :-
    sel(UnplacedQs, UnplacedQs1, Q),
    \+ attack(Q, SafeQs),
    queens(UnplacedQs1, [Q|SafeQs], Qs).

attack(X, Xs) :- attack(X, 1, Xs).

attack(X, N, [Y|_]) :- X is Y + N.
attack(X, N, [Y|_]) :- X is Y - N.
attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).

range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).

sel([X|Xs], Xs, X).
sel([Y|Ys], [Y|Zs], X) :- sel(Ys, Zs, X).
