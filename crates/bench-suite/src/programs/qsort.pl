% Quicksort with difference lists on the standard 50-element input.

qsort :- qsort([27, 74, 17, 33, 94, 18, 46, 83, 65, 2,
                32, 53, 28, 85, 99, 47, 28, 82, 6, 11,
                55, 29, 39, 81, 90, 37, 10, 0, 66, 51,
                7, 21, 85, 27, 31, 63, 75, 4, 95, 99,
                11, 28, 61, 74, 18, 92, 40, 53, 59, 8], _, []).

qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).

partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
