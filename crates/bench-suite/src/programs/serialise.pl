% Serialise (Warren 1977): replace each character code of a string by its
% rank. Exercises variable aliasing through the pair lists.

serialise :- serialise("ABLE WAS I ERE I SAW ELBA", _).

serialise(L, R) :-
    pairlists(L, R, A),
    arrange(A, T),
    numbered(T, 1, _).

pairlists([X|L], [Y|R], [pair(X, Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).

arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).

split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).

before(pair(X1, _), pair(X2, _)) :- X1 < X2.

numbered(tree(T1, pair(_, N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1 + 1,
    numbered(T2, N2, N).
numbered(void, N, N).
