% Database query: find pairs of countries with approximately equal
% population density (Warren 1977).

query :- query(_).

query([C1, D1, C2, D2]) :-
    density(C1, D1),
    density(C2, D2),
    D1 > D2,
    20 * D1 < 21 * D2.

density(C, D) :-
    pop(C, P),
    area(C, A),
    D is P * 100 // A.

% populations in 100000s, areas in 1000s of square miles
pop(china, 8250).
pop(india, 5863).
pop(ussr, 2521).
pop(usa, 2119).
pop(indonesia, 1276).
pop(japan, 1097).
pop(brazil, 1042).
pop(bangladesh, 750).
pop(pakistan, 682).
pop(w_germany, 620).
pop(nigeria, 613).
pop(mexico, 581).
pop(uk, 559).
pop(italy, 554).
pop(france, 525).
pop(philippines, 415).
pop(thailand, 410).
pop(turkey, 383).
pop(egypt, 364).
pop(spain, 352).
pop(poland, 337).
pop(s_korea, 335).
pop(iran, 320).
pop(ethiopia, 272).
pop(argentina, 251).

area(china, 3380).
area(india, 1139).
area(ussr, 8708).
area(usa, 3609).
area(indonesia, 570).
area(japan, 148).
area(brazil, 3288).
area(bangladesh, 55).
area(pakistan, 311).
area(w_germany, 96).
area(nigeria, 373).
area(mexico, 764).
area(uk, 86).
area(italy, 116).
area(france, 213).
area(philippines, 90).
area(thailand, 200).
area(turkey, 296).
area(egypt, 386).
area(spain, 190).
area(poland, 121).
area(s_korea, 37).
area(iran, 628).
area(ethiopia, 350).
area(argentina, 1080).
