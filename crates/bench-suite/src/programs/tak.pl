% The Takeuchi function — heavy integer arithmetic and deterministic
% recursion.

tak :- tak(18, 12, 6, _).

tak(X, Y, Z, A) :- X =< Y, !, Z = A.
tak(X, Y, Z, A) :-
    X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
    tak(X1, Y, Z, A1), tak(Y1, Z, X, A2), tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
