% Symbolic differentiation — the classic `deriv` benchmark (Warren 1977).
% The four Table 1 programs log10 / ops8 / times10 / divide10 are this
% d/3 plus one driver each; the drivers live in sibling files.

d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(- U, X, - DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
