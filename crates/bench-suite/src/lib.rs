//! The Table 1 benchmark suite: the eleven classic Warren/PLM programs
//! the paper evaluates on, their analysis entry points, and the numbers
//! the paper reports (for side-by-side printing in the harness).
//!
//! The program texts are reconstructions of the classic benchmark suite
//! (Warren 1977 / Van Roy's PLM report); the `Args`/`Preds` columns of the
//! paper's Table 1 validate the reconstruction — see the crate tests.
//!
//! # Examples
//!
//! ```
//! let suite = bench_suite::all();
//! assert_eq!(suite.len(), 11);
//! let tak = bench_suite::by_name("tak").unwrap();
//! let program = tak.parse()?;
//! assert_eq!(program.num_predicates(), tak.paper.preds);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use prolog_syntax::{parse_program, ParseError, Program};

/// The numbers the paper's Table 1 reports for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Total argument places over all predicates (`Args`).
    pub args: usize,
    /// Number of predicates (`Preds`).
    pub preds: usize,
    /// Aquarius analyzer time on a Sun 3/60, seconds.
    pub aquarius_sec: f64,
    /// PLM compilation time, seconds.
    pub plm_sec: f64,
    /// Static WAM code size (instructions).
    pub size: usize,
    /// Abstract WAM instructions executed during analysis.
    pub exec: u64,
    /// The paper's analyzer time, milliseconds.
    pub ours_msec: f64,
    /// Speed-up factor over Aquarius.
    pub speedup: f64,
}

/// One benchmark: source text, analysis entry, and the paper's row.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The Table 1 name.
    pub name: &'static str,
    /// Prolog source text.
    pub source: &'static str,
    /// Entry predicate for analysis and concrete execution (arity 0
    /// drivers throughout, like the paper's top-level goals).
    pub entry: &'static str,
    /// Entry calling-pattern specs (empty for the arity-0 drivers).
    pub entry_specs: &'static [&'static str],
    /// The paper's reported numbers.
    pub paper: PaperRow,
}

impl Benchmark {
    /// Parse the source text.
    ///
    /// # Errors
    ///
    /// Never fails for the embedded sources (tested); the `Result` is for
    /// API uniformity with user-supplied programs.
    pub fn parse(&self) -> Result<Program, ParseError> {
        parse_program(self.source)
    }
}

macro_rules! benchmarks {
    ($($name:literal => {
        files: [$($file:literal),+],
        entry: $entry:literal,
        paper: [$args:literal, $preds:literal, $aq:literal, $plm:literal,
                $size:literal, $exec:literal, $ours:literal, $speedup:literal],
    })*) => {
        /// All eleven benchmarks, in Table 1 order.
        pub fn all() -> Vec<Benchmark> {
            vec![
                $(Benchmark {
                    name: $name,
                    source: concat!($(include_str!(concat!("programs/", $file)), "\n"),+),
                    entry: $entry,
                    entry_specs: &[],
                    paper: PaperRow {
                        args: $args,
                        preds: $preds,
                        aquarius_sec: $aq,
                        plm_sec: $plm,
                        size: $size,
                        exec: $exec,
                        ours_msec: $ours,
                        speedup: $speedup,
                    },
                },)*
            ]
        }
    };
}

benchmarks! {
    "log10" => {
        files: ["log10.pl", "deriv.pl"],
        entry: "log10",
        paper: [3, 2, 2.9, 4.5, 179, 749, 38.6, 75.0],
    }
    "ops8" => {
        files: ["ops8.pl", "deriv.pl"],
        entry: "ops8",
        paper: [3, 2, 3.0, 4.5, 180, 400, 23.3, 129.0],
    }
    "times10" => {
        files: ["times10.pl", "deriv.pl"],
        entry: "times10",
        paper: [3, 2, 3.0, 4.5, 186, 971, 48.4, 62.0],
    }
    "divide10" => {
        files: ["divide10.pl", "deriv.pl"],
        entry: "divide10",
        paper: [3, 2, 2.9, 4.6, 186, 1043, 50.7, 57.0],
    }
    "tak" => {
        files: ["tak.pl"],
        entry: "tak",
        paper: [4, 2, 2.3, 1.2, 53, 110, 4.0, 575.0],
    }
    "nreverse" => {
        files: ["nreverse.pl"],
        entry: "nreverse",
        paper: [5, 3, 2.2, 1.6, 99, 479, 26.7, 82.0],
    }
    "qsort" => {
        files: ["qsort.pl"],
        entry: "qsort",
        paper: [7, 3, 3.4, 2.5, 164, 763, 44.0, 77.0],
    }
    "query" => {
        files: ["query.pl"],
        entry: "query",
        paper: [7, 5, 4.2, 4.3, 264, 626, 25.8, 163.0],
    }
    "zebra" => {
        files: ["zebra.pl"],
        entry: "zebra",
        paper: [9, 5, 3.5, 7.5, 271, 1262, 257.9, 14.0],
    }
    "serialise" => {
        files: ["serialise.pl"],
        entry: "serialise",
        paper: [16, 7, 4.2, 3.6, 205, 912, 53.4, 79.0],
    }
    "queens_8" => {
        files: ["queens_8.pl"],
        entry: "queens_8",
        paper: [16, 7, 6.0, 3.1, 117, 324, 16.5, 364.0],
    }
}

/// Look up a benchmark by its Table 1 name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// The paper's Table 2 platform speed indices, relative to the Sun 3/60
/// implementation (`Ours 3/60` = 1). Used by the Table 2 regenerator.
pub const TABLE2_PLATFORMS: &[(&str, f64)] = &[
    ("Aquarius 3/60", 0.007),
    ("Ours 3/60", 1.0),
    ("Mac IIx TC 4.0", 0.50),
    ("uVax 3100", 0.58),
    ("Vax 8530", 1.2),
    ("DecS 3100", 3.7),
    ("SS1+", 5.21),
    ("DecS 5000", 6.8),
    ("SS2", 9.0),
];

/// The paper's Table 2 per-benchmark speed ratios (rows, in `all()` order;
/// columns in [`TABLE2_PLATFORMS`] order, starting from `Ours 3/60`).
pub const TABLE2_RATIOS: &[(&str, [f64; 8])] = &[
    (
        "log10",
        [75.0, 37.0, 49.0, 86.0, 284.0, 363.0, 500.0, 630.0],
    ),
    (
        "ops8",
        [129.0, 63.0, 59.0, 139.0, 469.0, 612.0, 833.0, 1034.0],
    ),
    (
        "times10",
        [62.0, 30.0, 37.0, 71.0, 231.0, 294.0, 400.0, 500.0],
    ),
    (
        "divide10",
        [57.0, 28.0, 34.0, 65.0, 215.0, 266.0, 372.0, 453.0],
    ),
    (
        "tak",
        [575.0, 288.0, 383.0, 639.0, 2091.0, 3286.0, 3833.0, 5750.0],
    ),
    (
        "nreverse",
        [82.0, 41.0, 56.0, 108.0, 297.0, 333.0, 595.0, 579.0],
    ),
    (
        "qsort",
        [77.0, 38.0, 45.0, 95.0, 281.0, 318.0, 548.0, 540.0],
    ),
    (
        "query",
        [163.0, 84.0, 60.0, 183.0, 618.0, 894.0, 1167.0, 1556.0],
    ),
    ("zebra", [14.0, 5.7, 9.4, 16.0, 55.0, 63.0, 95.0, 107.0]),
    (
        "serialise",
        [79.0, 39.0, 47.0, 94.0, 296.0, 375.0, 538.0, 656.0],
    ),
    (
        "queens_8",
        [364.0, 182.0, 200.0, 448.0, 1364.0, 1935.0, 2500.0, 3333.0],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for b in all() {
            let program = b.parse().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!program.clauses.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn args_and_preds_match_table_1() {
        // The Args/Preds columns of the paper validate that the
        // reconstructed sources have the right shape.
        for b in all() {
            let program = b.parse().unwrap();
            assert_eq!(
                program.num_predicates(),
                b.paper.preds,
                "{}: predicate count",
                b.name
            );
            assert_eq!(
                program.total_arg_places(),
                b.paper.args,
                "{}: argument places",
                b.name
            );
        }
    }

    #[test]
    fn entries_exist() {
        for b in all() {
            let program = b.parse().unwrap();
            let found = program.predicate_index().iter().any(|(k, _)| {
                program.interner.resolve(k.name) == b.entry && k.arity == b.entry_specs.len()
            });
            assert!(found, "{}: entry {} missing", b.name, b.entry);
        }
    }

    #[test]
    fn by_name_round_trips() {
        for b in all() {
            assert_eq!(by_name(b.name).unwrap().name, b.name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn table2_is_consistent_with_suite() {
        assert_eq!(TABLE2_RATIOS.len(), all().len());
        for ((name, _), b) in TABLE2_RATIOS.iter().zip(all()) {
            assert_eq!(*name, b.name);
        }
    }

    #[test]
    fn all_programs_compile_to_wam() {
        for b in all() {
            let program = b.parse().unwrap();
            let compiled =
                wam::compile_program(&program).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(compiled.code_size() > 10, "{}", b.name);
        }
    }
}
