//! The WAM instruction set.
//!
//! The set follows Warren's 1983 classification into `get`, `put`, `unify`,
//! procedural and indexing instructions, with two small, documented
//! deviations from the original design:
//!
//! * `put_variable Yn` allocates the fresh cell on the **heap** (not the
//!   environment), so no variable is ever "unsafe" and `put_unsafe_value` /
//!   `unify_local_value` are unnecessary;
//! * `[]` is an ordinary constant (`get_constant`/`unify_constant` handle
//!   it), so there are no dedicated `*_nil` instructions.

use prolog_syntax::{Interner, Symbol};
use std::fmt;

/// A register operand: temporary (`X`, shared with argument registers) or
/// permanent (`Y`, in the current environment).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Slot {
    /// Temporary/argument register `Xn` (0-based; `A1` is `X0`).
    X(u16),
    /// Permanent register `Yn` in the current environment (0-based).
    Y(u16),
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::X(n) => write!(f, "X{}", n + 1),
            Slot::Y(n) => write!(f, "Y{}", n + 1),
        }
    }
}

/// A functor: name plus arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Functor {
    /// Functor name.
    pub name: Symbol,
    /// Number of arguments (always ≥ 1 in instructions).
    pub arity: u16,
}

impl Functor {
    /// Render as `name/arity`.
    pub fn display(&self, interner: &Interner) -> String {
        format!("{}/{}", interner.resolve(self.name), self.arity)
    }
}

/// A constant operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WamConst {
    /// An atom (including `[]`).
    Atom(Symbol),
    /// An integer.
    Int(i64),
}

impl WamConst {
    /// Render using `interner` for atom names.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            WamConst::Atom(a) => interner.resolve(*a).to_owned(),
            WamConst::Int(i) => i.to_string(),
        }
    }
}

/// Index of a predicate in the [`crate::CompiledProgram`] predicate table.
pub type PredIdx = usize;

/// A resolved code address.
pub type CodeAddr = usize;

/// One WAM instruction.
///
/// Argument-register operands are raw `u16` X-register indices (0-based).
#[derive(Clone, PartialEq, Debug)]
pub enum Instr {
    // ----- get (head argument) instructions -----
    /// `get_variable Vn, Ai` — store `Ai` into fresh variable slot.
    GetVariable(Slot, u16),
    /// `get_value Vn, Ai` — unify `Vn` with `Ai`.
    GetValue(Slot, u16),
    /// `get_constant c, Ai`.
    GetConstant(WamConst, u16),
    /// `get_list Ai`.
    GetList(u16),
    /// `get_structure f/n, Ai`.
    GetStructure(Functor, u16),

    // ----- put (body argument) instructions -----
    /// `put_variable Vn, Ai` — fresh unbound cell into both.
    PutVariable(Slot, u16),
    /// `put_value Vn, Ai`.
    PutValue(Slot, u16),
    /// `put_constant c, Ai`.
    PutConstant(WamConst, u16),
    /// `put_list Ai` — begin writing a cons cell, args follow as `unify_*`.
    PutList(u16),
    /// `put_structure f/n, Ai`.
    PutStructure(Functor, u16),

    // ----- unify (subterm) instructions -----
    /// `unify_variable Vn`.
    UnifyVariable(Slot),
    /// `unify_value Vn`.
    UnifyValue(Slot),
    /// `unify_constant c`.
    UnifyConstant(WamConst),
    /// `unify_void n` — skip/write `n` anonymous subterms.
    UnifyVoid(u16),

    // ----- procedural instructions -----
    /// `allocate n` — push an environment with `n` permanent slots.
    Allocate(u16),
    /// `deallocate` — pop the current environment.
    Deallocate,
    /// `call p/n` — invoke a user predicate.
    Call(PredIdx),
    /// `execute p/n` — tail-call a user predicate.
    Execute(PredIdx),
    /// `proceed` — return from a fact/chain clause.
    Proceed,
    /// Invoke an inline builtin with arguments in `A1..An`.
    CallBuiltin(crate::builtins::Builtin),

    // ----- cut -----
    /// `neck_cut` — discard choice points created since the call.
    NeckCut,
    /// `get_level Yn` — save the cut barrier into `Yn`.
    GetLevel(u16),
    /// `cut Yn` — cut back to the barrier saved in `Yn`.
    CutLevel(u16),

    // ----- indexing instructions -----
    /// `try_me_else L` — push a choice point; on failure resume at `L`.
    TryMeElse(CodeAddr),
    /// `retry_me_else L` — update the alternative of the current choice point.
    RetryMeElse(CodeAddr),
    /// `trust_me` — pop the current choice point.
    TrustMe,
    /// `try L` — push a choice point (alternative = next instruction), jump to `L`.
    Try(CodeAddr),
    /// `retry L` — update alternative to next instruction, jump to `L`.
    Retry(CodeAddr),
    /// `trust L` — pop the choice point, jump to `L`.
    Trust(CodeAddr),
    /// `switch_on_term Lv, Lc, Ll, Ls` — dispatch on the tag of `A1`.
    SwitchOnTerm {
        /// Where to go when `A1` is unbound.
        var: CodeAddr,
        /// Where to go for constants.
        con: CodeAddr,
        /// Where to go for cons cells.
        lis: CodeAddr,
        /// Where to go for other structures.
        str_: CodeAddr,
    },
    /// `switch_on_constant` — second-level dispatch on a constant value.
    SwitchOnConstant(Vec<(WamConst, CodeAddr)>),
    /// `switch_on_structure` — second-level dispatch on a functor.
    SwitchOnStructure(Vec<(Functor, CodeAddr)>),
    /// Unconditional failure (backtrack).
    Fail,
}

/// Number of distinct opcodes in [`Instr`].
pub const NUM_OPCODES: usize = 33;

/// Opcode mnemonics, indexed by [`Instr::opcode_index`].
pub const OPCODE_NAMES: [&str; NUM_OPCODES] = [
    "get_variable",
    "get_value",
    "get_constant",
    "get_list",
    "get_structure",
    "put_variable",
    "put_value",
    "put_constant",
    "put_list",
    "put_structure",
    "unify_variable",
    "unify_value",
    "unify_constant",
    "unify_void",
    "allocate",
    "deallocate",
    "call",
    "execute",
    "proceed",
    "call_builtin",
    "neck_cut",
    "get_level",
    "cut",
    "try_me_else",
    "retry_me_else",
    "trust_me",
    "try",
    "retry",
    "trust",
    "switch_on_term",
    "switch_on_constant",
    "switch_on_structure",
    "fail",
];

impl Instr {
    /// A dense opcode index in `0..NUM_OPCODES`, ignoring operands.
    /// [`OPCODE_NAMES`] maps it back to the mnemonic.
    pub fn opcode_index(&self) -> usize {
        use Instr::*;
        match self {
            GetVariable(..) => 0,
            GetValue(..) => 1,
            GetConstant(..) => 2,
            GetList(..) => 3,
            GetStructure(..) => 4,
            PutVariable(..) => 5,
            PutValue(..) => 6,
            PutConstant(..) => 7,
            PutList(..) => 8,
            PutStructure(..) => 9,
            UnifyVariable(..) => 10,
            UnifyValue(..) => 11,
            UnifyConstant(..) => 12,
            UnifyVoid(..) => 13,
            Allocate(..) => 14,
            Deallocate => 15,
            Call(..) => 16,
            Execute(..) => 17,
            Proceed => 18,
            CallBuiltin(..) => 19,
            NeckCut => 20,
            GetLevel(..) => 21,
            CutLevel(..) => 22,
            TryMeElse(..) => 23,
            RetryMeElse(..) => 24,
            TrustMe => 25,
            Try(..) => 26,
            Retry(..) => 27,
            Trust(..) => 28,
            SwitchOnTerm { .. } => 29,
            SwitchOnConstant(..) => 30,
            SwitchOnStructure(..) => 31,
            Fail => 32,
        }
    }

    /// Display the instruction with symbolic names resolved.
    pub fn display(&self, interner: &Interner) -> String {
        use Instr::*;
        match self {
            GetVariable(v, a) => format!("get_variable {v}, A{}", a + 1),
            GetValue(v, a) => format!("get_value {v}, A{}", a + 1),
            GetConstant(c, a) => format!("get_constant {}, A{}", c.display(interner), a + 1),
            GetList(a) => format!("get_list A{}", a + 1),
            GetStructure(f, a) => {
                format!("get_structure {}, A{}", f.display(interner), a + 1)
            }
            PutVariable(v, a) => format!("put_variable {v}, A{}", a + 1),
            PutValue(v, a) => format!("put_value {v}, A{}", a + 1),
            PutConstant(c, a) => format!("put_constant {}, A{}", c.display(interner), a + 1),
            PutList(a) => format!("put_list A{}", a + 1),
            PutStructure(f, a) => {
                format!("put_structure {}, A{}", f.display(interner), a + 1)
            }
            UnifyVariable(v) => format!("unify_variable {v}"),
            UnifyValue(v) => format!("unify_value {v}"),
            UnifyConstant(c) => format!("unify_constant {}", c.display(interner)),
            UnifyVoid(n) => format!("unify_void {n}"),
            Allocate(n) => format!("allocate {n}"),
            Deallocate => "deallocate".into(),
            Call(p) => format!("call pred#{p}"),
            Execute(p) => format!("execute pred#{p}"),
            Proceed => "proceed".into(),
            CallBuiltin(b) => format!("builtin {b}"),
            NeckCut => "neck_cut".into(),
            GetLevel(y) => format!("get_level Y{}", y + 1),
            CutLevel(y) => format!("cut Y{}", y + 1),
            TryMeElse(l) => format!("try_me_else {l}"),
            RetryMeElse(l) => format!("retry_me_else {l}"),
            TrustMe => "trust_me".into(),
            Try(l) => format!("try {l}"),
            Retry(l) => format!("retry {l}"),
            Trust(l) => format!("trust {l}"),
            SwitchOnTerm {
                var,
                con,
                lis,
                str_,
            } => {
                format!("switch_on_term {var}, {con}, {lis}, {str_}")
            }
            SwitchOnConstant(table) => {
                let entries: Vec<String> = table
                    .iter()
                    .map(|(c, l)| format!("{}→{l}", c.display(interner)))
                    .collect();
                format!("switch_on_constant [{}]", entries.join(", "))
            }
            SwitchOnStructure(table) => {
                let entries: Vec<String> = table
                    .iter()
                    .map(|(f, l)| format!("{}→{l}", f.display(interner)))
                    .collect();
                format!("switch_on_structure [{}]", entries.join(", "))
            }
            Fail => "fail".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_indices_are_dense_and_named() {
        let samples = [
            (Instr::GetVariable(Slot::X(0), 0), "get_variable"),
            (Instr::Proceed, "proceed"),
            (Instr::SwitchOnConstant(Vec::new()), "switch_on_constant"),
            (Instr::Fail, "fail"),
        ];
        for (instr, name) in samples {
            let idx = instr.opcode_index();
            assert!(idx < NUM_OPCODES);
            assert_eq!(OPCODE_NAMES[idx], name);
        }
        assert_eq!(Instr::Fail.opcode_index(), NUM_OPCODES - 1);
    }

    #[test]
    fn slot_display_is_one_based() {
        assert_eq!(Slot::X(0).to_string(), "X1");
        assert_eq!(Slot::Y(2).to_string(), "Y3");
    }

    #[test]
    fn instruction_display() {
        let mut interner = Interner::new();
        let f = Functor {
            name: interner.intern("foo"),
            arity: 2,
        };
        assert_eq!(
            Instr::GetStructure(f, 0).display(&interner),
            "get_structure foo/2, A1"
        );
        assert_eq!(
            Instr::GetVariable(Slot::X(3), 1).display(&interner),
            "get_variable X4, A2"
        );
        assert_eq!(
            Instr::UnifyConstant(WamConst::Int(7)).display(&interner),
            "unify_constant 7"
        );
    }
}
