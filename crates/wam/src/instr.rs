//! The WAM instruction set.
//!
//! The set follows Warren's 1983 classification into `get`, `put`, `unify`,
//! procedural and indexing instructions, with two small, documented
//! deviations from the original design:
//!
//! * `put_variable Yn` allocates the fresh cell on the **heap** (not the
//!   environment), so no variable is ever "unsafe" and `put_unsafe_value` /
//!   `unify_local_value` are unnecessary;
//! * `[]` is an ordinary constant (`get_constant`/`unify_constant` handle
//!   it), so there are no dedicated `*_nil` instructions.

use prolog_syntax::{Interner, Symbol};
use std::fmt;

/// A register operand: temporary (`X`, shared with argument registers) or
/// permanent (`Y`, in the current environment).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Slot {
    /// Temporary/argument register `Xn` (0-based; `A1` is `X0`).
    X(u16),
    /// Permanent register `Yn` in the current environment (0-based).
    Y(u16),
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::X(n) => write!(f, "X{}", n + 1),
            Slot::Y(n) => write!(f, "Y{}", n + 1),
        }
    }
}

/// A functor: name plus arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Functor {
    /// Functor name.
    pub name: Symbol,
    /// Number of arguments (always ≥ 1 in instructions).
    pub arity: u16,
}

impl Functor {
    /// Render as `name/arity`.
    pub fn display(&self, interner: &Interner) -> String {
        format!("{}/{}", interner.resolve(self.name), self.arity)
    }
}

/// A constant operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WamConst {
    /// An atom (including `[]`).
    Atom(Symbol),
    /// An integer.
    Int(i64),
}

impl WamConst {
    /// Render using `interner` for atom names.
    pub fn display(&self, interner: &Interner) -> String {
        match self {
            WamConst::Atom(a) => interner.resolve(*a).to_owned(),
            WamConst::Int(i) => i.to_string(),
        }
    }
}

/// Index of a predicate in the [`crate::CompiledProgram`] predicate table.
pub type PredIdx = usize;

/// A resolved code address.
pub type CodeAddr = usize;

/// One constituent of a fused unify run (see [`Instr::GetStructureSeq`]).
///
/// These are the four `unify_*` instructions with their operands, minus the
/// instruction-stream framing: a fused `get_structure`/`get_list` head carries
/// its whole argument run as one operand vector, so the executor pays a single
/// fetch/decode for the entire sequence.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum UnifyOp {
    /// `unify_variable Vn`.
    Variable(Slot),
    /// `unify_value Vn`.
    Value(Slot),
    /// `unify_constant c`.
    Constant(WamConst),
    /// `unify_void n`.
    Void(u16),
}

impl UnifyOp {
    /// The plain [`Instr`] this operand stands for.
    pub fn to_instr(self) -> Instr {
        match self {
            UnifyOp::Variable(v) => Instr::UnifyVariable(v),
            UnifyOp::Value(v) => Instr::UnifyValue(v),
            UnifyOp::Constant(c) => Instr::UnifyConstant(c),
            UnifyOp::Void(n) => Instr::UnifyVoid(n),
        }
    }

    /// The opcode index of the constituent instruction — used by the
    /// executor to attribute fused executions back to the plain opcodes in
    /// dynamic histograms.
    #[inline]
    pub fn opcode_index(self) -> usize {
        match self {
            UnifyOp::Variable(_) => 10,
            UnifyOp::Value(_) => 11,
            UnifyOp::Constant(_) => 12,
            UnifyOp::Void(_) => 13,
        }
    }

    /// Try to view a plain instruction as a fusable unify operand.
    pub fn from_instr(instr: &Instr) -> Option<UnifyOp> {
        match instr {
            Instr::UnifyVariable(v) => Some(UnifyOp::Variable(*v)),
            Instr::UnifyValue(v) => Some(UnifyOp::Value(*v)),
            Instr::UnifyConstant(c) => Some(UnifyOp::Constant(*c)),
            Instr::UnifyVoid(n) => Some(UnifyOp::Void(*n)),
            _ => None,
        }
    }
}

/// One WAM instruction.
///
/// Argument-register operands are raw `u16` X-register indices (0-based).
#[derive(Clone, PartialEq, Debug)]
pub enum Instr {
    // ----- get (head argument) instructions -----
    /// `get_variable Vn, Ai` — store `Ai` into fresh variable slot.
    GetVariable(Slot, u16),
    /// `get_value Vn, Ai` — unify `Vn` with `Ai`.
    GetValue(Slot, u16),
    /// `get_constant c, Ai`.
    GetConstant(WamConst, u16),
    /// `get_list Ai`.
    GetList(u16),
    /// `get_structure f/n, Ai`.
    GetStructure(Functor, u16),

    // ----- put (body argument) instructions -----
    /// `put_variable Vn, Ai` — fresh unbound cell into both.
    PutVariable(Slot, u16),
    /// `put_value Vn, Ai`.
    PutValue(Slot, u16),
    /// `put_constant c, Ai`.
    PutConstant(WamConst, u16),
    /// `put_list Ai` — begin writing a cons cell, args follow as `unify_*`.
    PutList(u16),
    /// `put_structure f/n, Ai`.
    PutStructure(Functor, u16),

    // ----- unify (subterm) instructions -----
    /// `unify_variable Vn`.
    UnifyVariable(Slot),
    /// `unify_value Vn`.
    UnifyValue(Slot),
    /// `unify_constant c`.
    UnifyConstant(WamConst),
    /// `unify_void n` — skip/write `n` anonymous subterms.
    UnifyVoid(u16),

    // ----- procedural instructions -----
    /// `allocate n` — push an environment with `n` permanent slots.
    Allocate(u16),
    /// `deallocate` — pop the current environment.
    Deallocate,
    /// `call p/n` — invoke a user predicate.
    Call(PredIdx),
    /// `execute p/n` — tail-call a user predicate.
    Execute(PredIdx),
    /// `proceed` — return from a fact/chain clause.
    Proceed,
    /// Invoke an inline builtin with arguments in `A1..An`.
    CallBuiltin(crate::builtins::Builtin),

    // ----- cut -----
    /// `neck_cut` — discard choice points created since the call.
    NeckCut,
    /// `get_level Yn` — save the cut barrier into `Yn`.
    GetLevel(u16),
    /// `cut Yn` — cut back to the barrier saved in `Yn`.
    CutLevel(u16),

    // ----- indexing instructions -----
    /// `try_me_else L` — push a choice point; on failure resume at `L`.
    TryMeElse(CodeAddr),
    /// `retry_me_else L` — update the alternative of the current choice point.
    RetryMeElse(CodeAddr),
    /// `trust_me` — pop the current choice point.
    TrustMe,
    /// `try L` — push a choice point (alternative = next instruction), jump to `L`.
    Try(CodeAddr),
    /// `retry L` — update alternative to next instruction, jump to `L`.
    Retry(CodeAddr),
    /// `trust L` — pop the choice point, jump to `L`.
    Trust(CodeAddr),
    /// `switch_on_term Lv, Lc, Ll, Ls` — dispatch on the tag of `A1`.
    SwitchOnTerm {
        /// Where to go when `A1` is unbound.
        var: CodeAddr,
        /// Where to go for constants.
        con: CodeAddr,
        /// Where to go for cons cells.
        lis: CodeAddr,
        /// Where to go for other structures.
        str_: CodeAddr,
    },
    /// `switch_on_constant` — second-level dispatch on a constant value.
    SwitchOnConstant(Vec<(WamConst, CodeAddr)>),
    /// `switch_on_structure` — second-level dispatch on a functor.
    SwitchOnStructure(Vec<(Functor, CodeAddr)>),
    /// Unconditional failure (backtrack).
    Fail,

    // ----- fused superinstructions (emitted by `crate::fuse`) -----
    /// `get_structure f/n, Ai` fused with its trailing `unify_*` run.
    GetStructureSeq(Functor, u16, Vec<UnifyOp>),
    /// `get_list Ai` fused with its trailing `unify_*` run.
    GetListSeq(u16, Vec<UnifyOp>),
    /// A run of two or more consecutive `put_value Vn, Ai` moves.
    PutValueSeq(Vec<(Slot, u16)>),
}

/// Number of distinct opcodes in [`Instr`].
pub const NUM_OPCODES: usize = 36;

/// Opcode index of the first fused superinstruction. Indices `>=` this are
/// superinstructions whose dynamic executions are attributed back to their
/// constituents (indices `< FIRST_FUSED_OPCODE`) in opcode histograms.
pub const FIRST_FUSED_OPCODE: usize = 33;

/// Opcode mnemonics, indexed by [`Instr::opcode_index`].
pub const OPCODE_NAMES: [&str; NUM_OPCODES] = [
    "get_variable",
    "get_value",
    "get_constant",
    "get_list",
    "get_structure",
    "put_variable",
    "put_value",
    "put_constant",
    "put_list",
    "put_structure",
    "unify_variable",
    "unify_value",
    "unify_constant",
    "unify_void",
    "allocate",
    "deallocate",
    "call",
    "execute",
    "proceed",
    "call_builtin",
    "neck_cut",
    "get_level",
    "cut",
    "try_me_else",
    "retry_me_else",
    "trust_me",
    "try",
    "retry",
    "trust",
    "switch_on_term",
    "switch_on_constant",
    "switch_on_structure",
    "fail",
    "get_structure_seq",
    "get_list_seq",
    "put_value_seq",
];

impl Instr {
    /// A dense opcode index in `0..NUM_OPCODES`, ignoring operands.
    /// [`OPCODE_NAMES`] maps it back to the mnemonic.
    pub fn opcode_index(&self) -> usize {
        use Instr::*;
        match self {
            GetVariable(..) => 0,
            GetValue(..) => 1,
            GetConstant(..) => 2,
            GetList(..) => 3,
            GetStructure(..) => 4,
            PutVariable(..) => 5,
            PutValue(..) => 6,
            PutConstant(..) => 7,
            PutList(..) => 8,
            PutStructure(..) => 9,
            UnifyVariable(..) => 10,
            UnifyValue(..) => 11,
            UnifyConstant(..) => 12,
            UnifyVoid(..) => 13,
            Allocate(..) => 14,
            Deallocate => 15,
            Call(..) => 16,
            Execute(..) => 17,
            Proceed => 18,
            CallBuiltin(..) => 19,
            NeckCut => 20,
            GetLevel(..) => 21,
            CutLevel(..) => 22,
            TryMeElse(..) => 23,
            RetryMeElse(..) => 24,
            TrustMe => 25,
            Try(..) => 26,
            Retry(..) => 27,
            Trust(..) => 28,
            SwitchOnTerm { .. } => 29,
            SwitchOnConstant(..) => 30,
            SwitchOnStructure(..) => 31,
            Fail => 32,
            GetStructureSeq(..) => 33,
            GetListSeq(..) => 34,
            PutValueSeq(..) => 35,
        }
    }

    /// Whether this is a fused superinstruction.
    pub fn is_fused(&self) -> bool {
        self.opcode_index() >= FIRST_FUSED_OPCODE
    }

    /// The constituent plain instructions. A fused superinstruction expands
    /// to the sequence it replaces; every other instruction expands to
    /// itself. `unfuse`, static opcode coverage, and `disasm` all rely on
    /// this being the exact inverse of the fusion pass.
    pub fn expand(&self) -> Vec<Instr> {
        use Instr::*;
        match self {
            GetStructureSeq(f, a, ops) => {
                let mut out = Vec::with_capacity(1 + ops.len());
                out.push(GetStructure(*f, *a));
                out.extend(ops.iter().map(|op| op.to_instr()));
                out
            }
            GetListSeq(a, ops) => {
                let mut out = Vec::with_capacity(1 + ops.len());
                out.push(GetList(*a));
                out.extend(ops.iter().map(|op| op.to_instr()));
                out
            }
            PutValueSeq(moves) => moves.iter().map(|&(v, a)| PutValue(v, a)).collect(),
            other => vec![other.clone()],
        }
    }

    /// Display the instruction with symbolic names resolved.
    pub fn display(&self, interner: &Interner) -> String {
        use Instr::*;
        match self {
            GetVariable(v, a) => format!("get_variable {v}, A{}", a + 1),
            GetValue(v, a) => format!("get_value {v}, A{}", a + 1),
            GetConstant(c, a) => format!("get_constant {}, A{}", c.display(interner), a + 1),
            GetList(a) => format!("get_list A{}", a + 1),
            GetStructure(f, a) => {
                format!("get_structure {}, A{}", f.display(interner), a + 1)
            }
            PutVariable(v, a) => format!("put_variable {v}, A{}", a + 1),
            PutValue(v, a) => format!("put_value {v}, A{}", a + 1),
            PutConstant(c, a) => format!("put_constant {}, A{}", c.display(interner), a + 1),
            PutList(a) => format!("put_list A{}", a + 1),
            PutStructure(f, a) => {
                format!("put_structure {}, A{}", f.display(interner), a + 1)
            }
            UnifyVariable(v) => format!("unify_variable {v}"),
            UnifyValue(v) => format!("unify_value {v}"),
            UnifyConstant(c) => format!("unify_constant {}", c.display(interner)),
            UnifyVoid(n) => format!("unify_void {n}"),
            Allocate(n) => format!("allocate {n}"),
            Deallocate => "deallocate".into(),
            Call(p) => format!("call pred#{p}"),
            Execute(p) => format!("execute pred#{p}"),
            Proceed => "proceed".into(),
            CallBuiltin(b) => format!("builtin {b}"),
            NeckCut => "neck_cut".into(),
            GetLevel(y) => format!("get_level Y{}", y + 1),
            CutLevel(y) => format!("cut Y{}", y + 1),
            TryMeElse(l) => format!("try_me_else {l}"),
            RetryMeElse(l) => format!("retry_me_else {l}"),
            TrustMe => "trust_me".into(),
            Try(l) => format!("try {l}"),
            Retry(l) => format!("retry {l}"),
            Trust(l) => format!("trust {l}"),
            SwitchOnTerm {
                var,
                con,
                lis,
                str_,
            } => {
                format!("switch_on_term {var}, {con}, {lis}, {str_}")
            }
            SwitchOnConstant(table) => {
                let entries: Vec<String> = table
                    .iter()
                    .map(|(c, l)| format!("{}→{l}", c.display(interner)))
                    .collect();
                format!("switch_on_constant [{}]", entries.join(", "))
            }
            SwitchOnStructure(table) => {
                let entries: Vec<String> = table
                    .iter()
                    .map(|(f, l)| format!("{}→{l}", f.display(interner)))
                    .collect();
                format!("switch_on_structure [{}]", entries.join(", "))
            }
            Fail => "fail".into(),
            // Fused superinstructions render as their constituent expansion
            // joined inline, so listings stay readable and static-coverage
            // greps keep seeing the plain mnemonics.
            GetStructureSeq(..) | GetListSeq(..) | PutValueSeq(..) => {
                let parts: Vec<String> =
                    self.expand().iter().map(|i| i.display(interner)).collect();
                parts.join(" + ")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_indices_are_dense_and_named() {
        let samples = [
            (Instr::GetVariable(Slot::X(0), 0), "get_variable"),
            (Instr::Proceed, "proceed"),
            (Instr::SwitchOnConstant(Vec::new()), "switch_on_constant"),
            (Instr::Fail, "fail"),
            (Instr::GetListSeq(0, Vec::new()), "get_list_seq"),
        ];
        for (instr, name) in samples {
            let idx = instr.opcode_index();
            assert!(idx < NUM_OPCODES);
            assert_eq!(OPCODE_NAMES[idx], name);
        }
        assert_eq!(Instr::Fail.opcode_index(), FIRST_FUSED_OPCODE - 1);
        assert_eq!(
            Instr::PutValueSeq(Vec::new()).opcode_index(),
            NUM_OPCODES - 1
        );
        assert!(Instr::GetStructureSeq(
            Functor {
                name: prolog_syntax::Interner::new().intern("f"),
                arity: 1
            },
            0,
            vec![UnifyOp::Void(1)]
        )
        .is_fused());
        assert!(!Instr::Fail.is_fused());
    }

    #[test]
    fn fused_expansion_and_display() {
        let mut interner = Interner::new();
        let f = Functor {
            name: interner.intern("foo"),
            arity: 2,
        };
        let fused = Instr::GetStructureSeq(
            f,
            0,
            vec![
                UnifyOp::Variable(Slot::X(3)),
                UnifyOp::Constant(WamConst::Int(7)),
            ],
        );
        assert_eq!(
            fused.expand(),
            vec![
                Instr::GetStructure(f, 0),
                Instr::UnifyVariable(Slot::X(3)),
                Instr::UnifyConstant(WamConst::Int(7)),
            ]
        );
        assert_eq!(
            fused.display(&interner),
            "get_structure foo/2, A1 + unify_variable X4 + unify_constant 7"
        );
        // Plain instructions expand to themselves.
        assert_eq!(Instr::Proceed.expand(), vec![Instr::Proceed]);
        // Round trip through UnifyOp is lossless.
        for op in [
            UnifyOp::Variable(Slot::Y(1)),
            UnifyOp::Value(Slot::X(0)),
            UnifyOp::Constant(WamConst::Int(3)),
            UnifyOp::Void(2),
        ] {
            assert_eq!(UnifyOp::from_instr(&op.to_instr()), Some(op));
            assert_eq!(op.opcode_index(), op.to_instr().opcode_index());
        }
    }

    #[test]
    fn slot_display_is_one_based() {
        assert_eq!(Slot::X(0).to_string(), "X1");
        assert_eq!(Slot::Y(2).to_string(), "Y3");
    }

    #[test]
    fn instruction_display() {
        let mut interner = Interner::new();
        let f = Functor {
            name: interner.intern("foo"),
            arity: 2,
        };
        assert_eq!(
            Instr::GetStructure(f, 0).display(&interner),
            "get_structure foo/2, A1"
        );
        assert_eq!(
            Instr::GetVariable(Slot::X(3), 1).display(&interner),
            "get_variable X4, A2"
        );
        assert_eq!(
            Instr::UnifyConstant(WamConst::Int(7)).display(&interner),
            "unify_constant 7"
        );
    }
}
