//! Per-clause instruction selection.
//!
//! Head arguments compile to `get_*`/`unify_*` sequences in breadth-first
//! order (exactly the Figure 2 shape from the paper: nested structures are
//! deferred through fresh X registers). Body goal arguments compile
//! bottom-up with `put_*`/`unify_*` (children built into scratch registers
//! before their parent). Last-call optimization turns a final user call
//! into `execute`; clauses that need no continuation save get no
//! environment.

use crate::classify::{classify, Classified};
use crate::instr::{Functor, Instr, Slot, WamConst};
use crate::norm::{Goal, NormClause};
use prolog_syntax::{PredKey, Term, VarId};
use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::VecDeque;

/// An error produced during code generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodegenError {
    /// A goal calls a predicate with no clauses in the program.
    UndefinedPredicate {
        /// `name/arity` of the missing predicate.
        pred: String,
    },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::UndefinedPredicate { pred } => {
                write!(f, "call to undefined predicate {pred}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Compile one normalized clause to instructions (no clause chaining).
pub fn compile_clause(
    clause: &NormClause,
    resolve: &HashMap<PredKey, usize>,
    interner: &prolog_syntax::Interner,
) -> Result<Vec<Instr>, CodegenError> {
    let classified = classify(clause);
    let mut gen = ClauseGen {
        clause,
        classified,
        resolve,
        interner,
        code: Vec::new(),
        seen: HashSet::new(),
        scratch: 0,
    };
    gen.scratch = gen.classified.layout.scratch_base;
    gen.run()?;
    Ok(gen.code)
}

struct ClauseGen<'a> {
    clause: &'a NormClause,
    classified: Classified,
    resolve: &'a HashMap<PredKey, usize>,
    interner: &'a prolog_syntax::Interner,
    code: Vec<Instr>,
    /// Variables whose slot already holds a value.
    seen: HashSet<VarId>,
    /// Next scratch X register (reset before each head/goal).
    scratch: u16,
}

impl ClauseGen<'_> {
    fn layout(&self) -> &crate::classify::Layout {
        &self.classified.layout
    }

    fn run(&mut self) -> Result<(), CodegenError> {
        let needs_env = self.layout().needs_env;
        if needs_env {
            self.code.push(Instr::Allocate(self.layout().env_size));
            if let Some(y) = self.layout().cut_slot {
                self.code.push(Instr::GetLevel(y));
            }
        }
        self.compile_head();
        let goals = &self.clause.goals;
        let last_call_idx = goals.iter().rposition(Goal::is_call);
        let mut tail_emitted = false;
        for (i, goal) in goals.iter().enumerate() {
            match goal {
                Goal::Cut => match self.layout().cut_slot {
                    Some(y) if goals[..i].iter().any(Goal::is_call) => {
                        self.code.push(Instr::CutLevel(y));
                    }
                    _ => self.code.push(Instr::NeckCut),
                },
                Goal::Builtin(b, args) => {
                    self.compile_args(args);
                    self.code.push(Instr::CallBuiltin(*b));
                }
                Goal::Call(key, args) => {
                    let idx = self.resolve.get(key).copied().ok_or_else(|| {
                        CodegenError::UndefinedPredicate {
                            pred: key.display(self.interner),
                        }
                    })?;
                    self.compile_args(args);
                    let is_last_goal = i + 1 == goals.len();
                    if is_last_goal && Some(i) == last_call_idx {
                        if needs_env {
                            self.code.push(Instr::Deallocate);
                        }
                        self.code.push(Instr::Execute(idx));
                        tail_emitted = true;
                    } else {
                        self.code.push(Instr::Call(idx));
                    }
                }
            }
        }
        if !tail_emitted {
            if needs_env {
                self.code.push(Instr::Deallocate);
            }
            self.code.push(Instr::Proceed);
        }
        Ok(())
    }

    // ----- head compilation (get/unify, breadth-first) -----

    fn compile_head(&mut self) {
        self.scratch = self.layout().scratch_base;
        let mut queue: VecDeque<(u16, Term)> = VecDeque::new();
        let head_args = self.clause.head_args.clone();
        for (i, arg) in head_args.iter().enumerate() {
            let a = i as u16;
            match arg {
                Term::Var(v) => {
                    if self.classified.voids.contains(v) {
                        // Ignored argument: no instruction needed.
                    } else if self.seen.insert(*v) {
                        self.code
                            .push(Instr::GetVariable(self.layout().slot(*v), a));
                    } else {
                        self.code.push(Instr::GetValue(self.layout().slot(*v), a));
                    }
                }
                Term::Int(i) => self.code.push(Instr::GetConstant(WamConst::Int(*i), a)),
                Term::Atom(s) => self.code.push(Instr::GetConstant(WamConst::Atom(*s), a)),
                Term::Struct(f, args) if self.is_cons(*f, args.len()) => {
                    self.code.push(Instr::GetList(a));
                    self.emit_unify_args(args, &mut queue);
                }
                Term::Struct(f, args) => {
                    self.code.push(Instr::GetStructure(
                        Functor {
                            name: *f,
                            arity: args.len() as u16,
                        },
                        a,
                    ));
                    self.emit_unify_args(args, &mut queue);
                }
            }
        }
        // Breadth-first: deferred substructures.
        while let Some((reg, term)) = queue.pop_front() {
            match &term {
                Term::Struct(f, args) if self.is_cons(*f, args.len()) => {
                    self.code.push(Instr::GetList(reg));
                    self.emit_unify_args(args, &mut queue);
                }
                Term::Struct(f, args) => {
                    self.code.push(Instr::GetStructure(
                        Functor {
                            name: *f,
                            arity: args.len() as u16,
                        },
                        reg,
                    ));
                    self.emit_unify_args(args, &mut queue);
                }
                _ => unreachable!("only compound terms are queued"),
            }
        }
        self.merge_unify_voids();
    }

    fn emit_unify_args(&mut self, args: &[Term], queue: &mut VecDeque<(u16, Term)>) {
        for arg in args {
            match arg {
                Term::Var(v) => {
                    if self.classified.voids.contains(v) {
                        self.code.push(Instr::UnifyVoid(1));
                    } else if self.seen.insert(*v) {
                        self.code.push(Instr::UnifyVariable(self.layout().slot(*v)));
                    } else {
                        self.code.push(Instr::UnifyValue(self.layout().slot(*v)));
                    }
                }
                Term::Int(i) => self.code.push(Instr::UnifyConstant(WamConst::Int(*i))),
                Term::Atom(s) => self.code.push(Instr::UnifyConstant(WamConst::Atom(*s))),
                Term::Struct(..) => {
                    let reg = self.fresh_scratch();
                    self.code.push(Instr::UnifyVariable(Slot::X(reg)));
                    queue.push_back((reg, arg.clone()));
                }
            }
        }
    }

    // ----- body argument compilation (put/unify, bottom-up) -----

    fn compile_args(&mut self, args: &[Term]) {
        self.scratch = self.layout().scratch_base;
        // Build complex arguments' nested children into scratch registers
        // first, then write the argument registers left to right.
        let mut prepared: Vec<PreparedArg> = Vec::new();
        for arg in args {
            prepared.push(self.prepare_arg(arg));
        }
        for (i, prep) in prepared.into_iter().enumerate() {
            self.emit_put(prep, i as u16);
        }
    }

    /// Build everything below the top level of `arg` into scratch registers
    /// and return a description of how to write the top level.
    fn prepare_arg(&mut self, arg: &Term) -> PreparedArg {
        match arg {
            Term::Var(v) => PreparedArg::Var(*v),
            Term::Int(i) => PreparedArg::Const(WamConst::Int(*i)),
            Term::Atom(s) => PreparedArg::Const(WamConst::Atom(*s)),
            Term::Struct(f, children) => {
                let parts: Vec<WritePart> = children.iter().map(|c| self.prepare_part(c)).collect();
                PreparedArg::Compound {
                    functor: Functor {
                        name: *f,
                        arity: children.len() as u16,
                    },
                    is_cons: self.is_cons(*f, children.len()),
                    parts,
                }
            }
        }
    }

    fn prepare_part(&mut self, term: &Term) -> WritePart {
        match term {
            Term::Var(v) => WritePart::Var(*v),
            Term::Int(i) => WritePart::Const(WamConst::Int(*i)),
            Term::Atom(s) => WritePart::Const(WamConst::Atom(*s)),
            Term::Struct(f, children) => {
                // Build this child into a scratch register, bottom-up.
                let parts: Vec<WritePart> = children.iter().map(|c| self.prepare_part(c)).collect();
                let reg = self.fresh_scratch();
                if self.is_cons(*f, children.len()) {
                    self.code.push(Instr::PutList(reg));
                } else {
                    self.code.push(Instr::PutStructure(
                        Functor {
                            name: *f,
                            arity: children.len() as u16,
                        },
                        reg,
                    ));
                }
                for part in &parts {
                    self.emit_write_part(part);
                }
                WritePart::Built(reg)
            }
        }
    }

    fn emit_put(&mut self, prep: PreparedArg, a: u16) {
        match prep {
            PreparedArg::Var(v) => {
                if self.seen.insert(v) {
                    let slot = if self.classified.voids.contains(&v) {
                        Slot::X(self.fresh_scratch())
                    } else {
                        self.layout().slot(v)
                    };
                    self.code.push(Instr::PutVariable(slot, a));
                } else {
                    self.code.push(Instr::PutValue(self.layout().slot(v), a));
                }
            }
            PreparedArg::Const(c) => self.code.push(Instr::PutConstant(c, a)),
            PreparedArg::Compound {
                functor,
                is_cons,
                parts,
            } => {
                if is_cons {
                    self.code.push(Instr::PutList(a));
                } else {
                    self.code.push(Instr::PutStructure(functor, a));
                }
                for part in &parts {
                    self.emit_write_part(part);
                }
            }
        }
    }

    fn emit_write_part(&mut self, part: &WritePart) {
        match part {
            WritePart::Var(v) => {
                if self.seen.insert(*v) {
                    if self.classified.voids.contains(v) {
                        self.code.push(Instr::UnifyVoid(1));
                    } else {
                        self.code.push(Instr::UnifyVariable(self.layout().slot(*v)));
                    }
                } else {
                    self.code.push(Instr::UnifyValue(self.layout().slot(*v)));
                }
            }
            WritePart::Const(c) => self.code.push(Instr::UnifyConstant(*c)),
            WritePart::Built(reg) => self.code.push(Instr::UnifyValue(Slot::X(*reg))),
        }
    }

    // ----- helpers -----

    fn is_cons(&self, f: prolog_syntax::Symbol, arity: usize) -> bool {
        f == self.interner.dot() && arity == 2
    }

    fn fresh_scratch(&mut self) -> u16 {
        let reg = self.scratch;
        self.scratch += 1;
        reg
    }

    /// Merge consecutive `unify_void 1` instructions.
    fn merge_unify_voids(&mut self) {
        let mut merged: Vec<Instr> = Vec::with_capacity(self.code.len());
        for instr in self.code.drain(..) {
            match (merged.last_mut(), &instr) {
                (Some(Instr::UnifyVoid(n)), Instr::UnifyVoid(m)) => *n += m,
                _ => merged.push(instr),
            }
        }
        self.code = merged;
    }
}

enum PreparedArg {
    Var(VarId),
    Const(WamConst),
    Compound {
        functor: Functor,
        is_cons: bool,
        parts: Vec<WritePart>,
    },
}

enum WritePart {
    Var(VarId),
    Const(WamConst),
    Built(u16),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::normalize_program;
    use prolog_syntax::parse_program;

    fn compile_first(src: &str) -> (Vec<Instr>, prolog_syntax::Interner) {
        let p = parse_program(src).unwrap();
        let n = normalize_program(&p).unwrap();
        let mut resolve = HashMap::new();
        for (i, (key, _)) in n.predicates.iter().enumerate() {
            resolve.insert(*key, i);
        }
        let code = compile_clause(&n.predicates[0].1[0], &resolve, &n.interner).unwrap();
        (code, n.interner)
    }

    fn listing(src: &str) -> Vec<String> {
        let (code, interner) = compile_first(src);
        code.iter().map(|i| i.display(&interner)).collect()
    }

    #[test]
    fn paper_figure_2_head() {
        // p(a, [f(V)|L]) — the head example from §2/Figure 2 of the paper.
        // (V and L are kept live by a body goal, as in the paper's "…".)
        let code = listing("p(a, [f(V)|L]) :- q(V, L). q(1, 1).");
        assert_eq!(
            code,
            vec![
                "get_constant a, A1",
                "get_list A2",
                "unify_variable X5",
                "unify_variable X4",
                "get_structure f/1, A5",
                "unify_variable X3",
                "put_value X3, A1",
                "put_value X4, A2",
                "execute pred#1",
            ],
            "breadth-first head compilation must match the paper's Figure 2"
        );
    }

    #[test]
    fn fact_compiles_to_gets_and_proceed() {
        let code = listing("p(a, 42).");
        assert_eq!(
            code,
            vec!["get_constant a, A1", "get_constant 42, A2", "proceed"]
        );
    }

    #[test]
    fn chain_clause_uses_execute() {
        let code = listing("p(X) :- q(X). q(1).");
        assert_eq!(
            code,
            vec!["get_variable X2, A1", "put_value X2, A1", "execute pred#1"]
        );
    }

    #[test]
    fn two_calls_allocate_and_lco() {
        let code = listing("p(X, Y) :- q(X, Z), r(Z, Y). q(1,1). r(1,1).");
        let text = code.join("\n");
        assert!(text.starts_with("allocate 2"), "{text}");
        assert!(text.contains("call pred#1"), "{text}");
        assert!(text.ends_with("deallocate\nexecute pred#2"), "{text}");
    }

    #[test]
    fn builtin_call_sequence() {
        let code = listing("p(X, Y) :- Y is X + 1.");
        let text = code.join("\n");
        assert!(text.contains("put_structure +/2, A2"), "{text}");
        assert!(text.contains("builtin is/2"), "{text}");
        assert!(text.ends_with("proceed"), "{text}");
    }

    #[test]
    fn nested_body_structures_build_bottom_up() {
        // q([1,2]) — inner [2] must be built into a scratch register first.
        let code = listing("p :- q([1, 2]). q([1,2]).");
        let text = code.join("\n");
        let inner = text
            .find("put_list A2")
            .expect("inner list built first (scratch X2)");
        let outer = text.find("put_list A1").expect("outer list");
        assert!(inner < outer, "{text}");
        assert!(
            text.contains("unify_constant 2\nunify_constant []"),
            "{text}"
        );
    }

    #[test]
    fn neck_cut_and_deep_cut() {
        let code = listing("p(X) :- !, q(X). q(1).");
        assert!(code.contains(&"neck_cut".to_string()));
        let code = listing("p(X) :- q(X), !, r(X). q(1). r(1).");
        let text = code.join("\n");
        assert!(text.contains("get_level"), "{text}");
        assert!(text.contains("cut Y"), "{text}");
    }

    #[test]
    fn undefined_predicate_is_an_error() {
        let p = parse_program("p :- nosuch.").unwrap();
        let n = normalize_program(&p).unwrap();
        let mut resolve = HashMap::new();
        resolve.insert(n.predicates[0].0, 0);
        let err = compile_clause(&n.predicates[0].1[0], &resolve, &n.interner).unwrap_err();
        assert!(matches!(err, CodegenError::UndefinedPredicate { .. }));
    }

    #[test]
    fn repeated_variable_uses_get_value() {
        let code = listing("p(X, X).");
        assert_eq!(code[0], "get_variable X3, A1");
        assert_eq!(code[1], "get_value X3, A2");
    }

    #[test]
    fn void_head_arg_emits_nothing() {
        let code = listing("p(_, a).");
        assert_eq!(code, vec!["get_constant a, A2", "proceed"]);
    }

    #[test]
    fn consecutive_voids_merge() {
        let code = listing("p(f(_, _, X), X).");
        let text = code.join("\n");
        assert!(text.contains("unify_void 2"), "{text}");
    }
}
