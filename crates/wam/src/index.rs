//! Clause chaining and first-argument indexing.
//!
//! Every multi-clause predicate gets a `try_me_else`/`retry_me_else`/
//! `trust_me` chain. When no clause has a variable in its first argument
//! position (and the predicate has arguments), a `switch_on_term` header is
//! emitted that dispatches bound first arguments directly to the matching
//! clause subset — through `switch_on_constant`/`switch_on_structure`
//! second-level tables and `try`/`retry`/`trust` blocks where the subset
//! has several clauses. Unbound first arguments fall back to the full
//! chain.

use crate::instr::{CodeAddr, Functor, Instr, WamConst};
use crate::norm::NormClause;
use prolog_syntax::Term;

/// Classification of a clause's first head argument for indexing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FirstArg {
    /// Variable (or the predicate has no arguments): matches everything.
    Var,
    /// A constant (atom or integer).
    Const(WamConst),
    /// A cons cell `[_|_]`.
    List,
    /// Any other structure.
    Struct(Functor),
}

/// Compute the [`FirstArg`] class of a normalized clause.
pub fn first_arg_class(clause: &NormClause, interner: &prolog_syntax::Interner) -> FirstArg {
    match clause.head_args.first() {
        None | Some(Term::Var(_)) => FirstArg::Var,
        Some(Term::Int(i)) => FirstArg::Const(WamConst::Int(*i)),
        Some(Term::Atom(a)) => FirstArg::Const(WamConst::Atom(*a)),
        Some(Term::Struct(f, args)) if *f == interner.dot() && args.len() == 2 => FirstArg::List,
        Some(Term::Struct(f, args)) => FirstArg::Struct(Functor {
            name: *f,
            arity: args.len() as u16,
        }),
    }
}

/// Result of emitting one predicate's code.
#[derive(Debug, Clone)]
pub struct PredCode {
    /// The address execution enters at (`switch_on_term` or the chain).
    pub entry: CodeAddr,
    /// Entry address of each clause body, in source order. The abstract
    /// machine iterates these directly, bypassing the indexing code, as
    /// §5 of the paper prescribes.
    pub clause_entries: Vec<CodeAddr>,
}

/// Append the code for one predicate to `code`.
pub fn emit_predicate(
    code: &mut Vec<Instr>,
    blocks: Vec<Vec<Instr>>,
    first_args: &[FirstArg],
) -> PredCode {
    assert_eq!(blocks.len(), first_args.len());
    assert!(!blocks.is_empty(), "predicates have at least one clause");

    if blocks.len() == 1 {
        let entry = code.len();
        code.extend(blocks.into_iter().next().expect("one block"));
        return PredCode {
            entry,
            clause_entries: vec![entry],
        };
    }

    let indexable = first_args.iter().all(|f| *f != FirstArg::Var);
    let switch_addr = if indexable {
        let addr = code.len();
        code.push(Instr::SwitchOnTerm {
            var: 0,
            con: 0,
            lis: 0,
            str_: 0,
        });
        Some(addr)
    } else {
        None
    };

    // Main chain: try_me_else / retry_me_else / trust_me interleaved with
    // clause code.
    let chain_start = code.len();
    let n = blocks.len();
    let mut chain_link_addrs = Vec::with_capacity(n);
    let mut clause_entries = Vec::with_capacity(n);
    for (i, block) in blocks.into_iter().enumerate() {
        chain_link_addrs.push(code.len());
        if i == 0 {
            code.push(Instr::TryMeElse(0));
        } else if i + 1 < n {
            code.push(Instr::RetryMeElse(0));
        } else {
            code.push(Instr::TrustMe);
        }
        clause_entries.push(code.len());
        code.extend(block);
    }
    // Patch chain targets: each link points at the next link instruction.
    for i in 0..n - 1 {
        let next = chain_link_addrs[i + 1];
        match &mut code[chain_link_addrs[i]] {
            Instr::TryMeElse(l) | Instr::RetryMeElse(l) => *l = next,
            other => unreachable!("chain link is try/retry, got {other:?}"),
        }
    }

    let entry = if let Some(switch_addr) = switch_addr {
        let mut fail_addr: Option<CodeAddr> = None;
        let mut ensure_fail = |code: &mut Vec<Instr>| -> CodeAddr {
            *fail_addr.get_or_insert_with(|| {
                let addr = code.len();
                code.push(Instr::Fail);
                addr
            })
        };

        // Bucket for each dispatch tag.
        let con_clauses: Vec<usize> = (0..n)
            .filter(|&i| matches!(first_args[i], FirstArg::Const(_)))
            .collect();
        let lis_clauses: Vec<usize> = (0..n)
            .filter(|&i| first_args[i] == FirstArg::List)
            .collect();
        let str_clauses: Vec<usize> = (0..n)
            .filter(|&i| matches!(first_args[i], FirstArg::Struct(_)))
            .collect();

        let emit_try_block = |code: &mut Vec<Instr>, subset: &[usize], entries: &[CodeAddr]| {
            let addr = code.len();
            let k = subset.len();
            for (j, &ci) in subset.iter().enumerate() {
                if j == 0 {
                    code.push(Instr::Try(entries[ci]));
                } else if j + 1 < k {
                    code.push(Instr::Retry(entries[ci]));
                } else {
                    code.push(Instr::Trust(entries[ci]));
                }
            }
            addr
        };

        // Plain bucket: fail / direct / chain / try-block.
        let bucket = |code: &mut Vec<Instr>,
                      subset: &[usize],
                      fail: &mut dyn FnMut(&mut Vec<Instr>) -> CodeAddr|
         -> CodeAddr {
            if subset.is_empty() {
                fail(code)
            } else if subset.len() == n {
                chain_start
            } else if subset.len() == 1 {
                clause_entries[subset[0]]
            } else {
                emit_try_block(code, subset, &clause_entries)
            }
        };

        let lis_target = bucket(code, &lis_clauses, &mut ensure_fail);

        // Constants: second-level dispatch when several distinct values.
        let con_target = if con_clauses.is_empty() {
            ensure_fail(code)
        } else {
            let mut by_const: Vec<(WamConst, Vec<usize>)> = Vec::new();
            for &ci in &con_clauses {
                let FirstArg::Const(c) = first_args[ci] else {
                    unreachable!()
                };
                match by_const.iter_mut().find(|(k, _)| *k == c) {
                    Some((_, v)) => v.push(ci),
                    None => by_const.push((c, vec![ci])),
                }
            }
            if by_const.len() == 1 {
                bucket(code, &con_clauses, &mut ensure_fail)
            } else {
                let mut table: Vec<(WamConst, CodeAddr)> = Vec::new();
                for (c, subset) in &by_const {
                    let target = if subset.len() == 1 {
                        clause_entries[subset[0]]
                    } else {
                        emit_try_block(code, subset, &clause_entries)
                    };
                    table.push((*c, target));
                }
                let addr = code.len();
                code.push(Instr::SwitchOnConstant(table));
                addr
            }
        };

        // Structures: same scheme keyed by functor.
        let str_target = if str_clauses.is_empty() {
            ensure_fail(code)
        } else {
            let mut by_functor: Vec<(Functor, Vec<usize>)> = Vec::new();
            for &ci in &str_clauses {
                let FirstArg::Struct(f) = first_args[ci] else {
                    unreachable!()
                };
                match by_functor.iter_mut().find(|(k, _)| *k == f) {
                    Some((_, v)) => v.push(ci),
                    None => by_functor.push((f, vec![ci])),
                }
            }
            if by_functor.len() == 1 {
                bucket(code, &str_clauses, &mut ensure_fail)
            } else {
                let mut table: Vec<(Functor, CodeAddr)> = Vec::new();
                for (f, subset) in &by_functor {
                    let target = if subset.len() == 1 {
                        clause_entries[subset[0]]
                    } else {
                        emit_try_block(code, subset, &clause_entries)
                    };
                    table.push((*f, target));
                }
                let addr = code.len();
                code.push(Instr::SwitchOnStructure(table));
                addr
            }
        };

        code[switch_addr] = Instr::SwitchOnTerm {
            var: chain_start,
            con: con_target,
            lis: lis_target,
            str_: str_target,
        };
        switch_addr
    } else {
        chain_start
    };

    PredCode {
        entry,
        clause_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile_clause;
    use crate::norm::normalize_program;
    use prolog_syntax::parse_program;
    use std::collections::HashMap;

    fn emit(src: &str, pred: usize) -> (Vec<Instr>, PredCode, prolog_syntax::Interner) {
        let p = parse_program(src).unwrap();
        let n = normalize_program(&p).unwrap();
        let mut resolve = HashMap::new();
        for (i, (key, _)) in n.predicates.iter().enumerate() {
            resolve.insert(*key, i);
        }
        let (_, clauses) = &n.predicates[pred];
        let blocks: Vec<Vec<Instr>> = clauses
            .iter()
            .map(|c| compile_clause(c, &resolve, &n.interner).unwrap())
            .collect();
        let first_args: Vec<FirstArg> = clauses
            .iter()
            .map(|c| first_arg_class(c, &n.interner))
            .collect();
        let mut code = Vec::new();
        let pc = emit_predicate(&mut code, blocks, &first_args);
        (code, pc, n.interner)
    }

    #[test]
    fn single_clause_has_no_chain() {
        let (code, pc, _) = emit("p(a).", 0);
        assert_eq!(pc.entry, 0);
        assert!(!code
            .iter()
            .any(|i| matches!(i, Instr::TryMeElse(_) | Instr::TrustMe)));
    }

    #[test]
    fn chain_shape_for_three_clauses() {
        let (code, pc, _) = emit("p(X, a). p(X, b). p(X, c).", 0);
        // Var first arg → no switch.
        assert!(matches!(code[pc.entry], Instr::TryMeElse(_)));
        let Instr::TryMeElse(second) = code[pc.entry] else {
            panic!()
        };
        assert!(matches!(code[second], Instr::RetryMeElse(_)));
        let Instr::RetryMeElse(third) = code[second] else {
            panic!()
        };
        assert!(matches!(code[third], Instr::TrustMe));
        assert_eq!(pc.clause_entries.len(), 3);
    }

    #[test]
    fn switch_emitted_when_first_args_bound() {
        let (code, pc, _) = emit("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).", 0);
        let Instr::SwitchOnTerm {
            var,
            con,
            lis,
            str_,
        } = &code[pc.entry]
        else {
            panic!("expected switch, got {:?}", code[pc.entry]);
        };
        // var → chain; con ([] constant) → clause 1 body; lis → clause 2 body.
        assert!(matches!(code[*var], Instr::TryMeElse(_)));
        assert_eq!(*con, pc.clause_entries[0]);
        assert_eq!(*lis, pc.clause_entries[1]);
        // No structure clauses → fail.
        assert!(matches!(code[*str_], Instr::Fail));
    }

    #[test]
    fn second_level_constant_switch() {
        let (code, pc, _) = emit("c(red, 1). c(green, 2). c(blue, 3).", 0);
        let Instr::SwitchOnTerm { con, .. } = &code[pc.entry] else {
            panic!()
        };
        let Instr::SwitchOnConstant(table) = &code[*con] else {
            panic!("expected constant table, got {:?}", code[*con]);
        };
        assert_eq!(table.len(), 3);
        for (i, (_, addr)) in table.iter().enumerate() {
            assert_eq!(*addr, pc.clause_entries[i]);
        }
    }

    #[test]
    fn duplicate_constants_get_try_blocks() {
        let (code, pc, _) = emit("d(a, 1). d(a, 2). d(b, 3).", 0);
        let Instr::SwitchOnTerm { con, .. } = &code[pc.entry] else {
            panic!()
        };
        let Instr::SwitchOnConstant(table) = &code[*con] else {
            panic!()
        };
        assert_eq!(table.len(), 2);
        // The `a` bucket is a try/trust block over clauses 0 and 1.
        let a_target = table[0].1;
        assert!(matches!(code[a_target], Instr::Try(t) if t == pc.clause_entries[0]));
        assert!(matches!(code[a_target + 1], Instr::Trust(t) if t == pc.clause_entries[1]));
    }

    #[test]
    fn var_clause_disables_switch() {
        let (code, pc, _) = emit("p(a). p(X). p(b).", 0);
        assert!(matches!(code[pc.entry], Instr::TryMeElse(_)));
        assert!(!code.iter().any(|i| matches!(i, Instr::SwitchOnTerm { .. })));
    }

    #[test]
    fn structure_switch() {
        let (code, pc, _) = emit("m(f(X), X). m(g(X, Y), X) :- m(f(Y), Y).", 0);
        let Instr::SwitchOnTerm { str_, con, .. } = &code[pc.entry] else {
            panic!()
        };
        let Instr::SwitchOnStructure(table) = &code[*str_] else {
            panic!("expected structure table, got {:?}", code[*str_]);
        };
        assert_eq!(table.len(), 2);
        assert!(matches!(code[*con], Instr::Fail));
    }
}
