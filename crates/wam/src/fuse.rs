//! Peephole superinstruction fusion over compiled code.
//!
//! [`fuse_program`] rewrites a [`CompiledProgram`] in place, collapsing the
//! hot instruction sequences the committed opcode histograms identify —
//! `get_structure`/`get_list` heads followed by their `unify_*` argument
//! runs, and runs of two or more consecutive `put_value` moves — into single
//! fused superinstructions ([`Instr::GetStructureSeq`],
//! [`Instr::GetListSeq`], [`Instr::PutValueSeq`]). The shared executor in
//! `awam-exec` then pays one fetch/decode for the whole run instead of one
//! per constituent.
//!
//! Fusion is purely local and semantics-preserving: a fused run never spans
//! a *barrier* — any address referenced by the predicate table or by a jump
//! operand — so every control-transfer target remains an instruction
//! boundary (a barrier may *head* a run, it just can't land inside one).
//! [`unfuse_program`] is the exact inverse and restores the plain
//! instruction stream; both passes are idempotent, so applying either to a
//! program in any fusion state is deterministic.

use crate::compile::CompiledProgram;
use crate::instr::{CodeAddr, Instr, UnifyOp};
use std::collections::HashSet;

/// Every code address that some other part of the program can transfer
/// control to: predicate entries, clause entries, and jump operands. These
/// must remain instruction starts after fusion.
fn collect_barriers(p: &CompiledProgram) -> HashSet<CodeAddr> {
    let mut barriers: HashSet<CodeAddr> = HashSet::new();
    for pred in &p.predicates {
        barriers.insert(pred.entry);
        barriers.extend(pred.clause_entries.iter().copied());
    }
    for instr in &p.code {
        match instr {
            Instr::TryMeElse(l)
            | Instr::RetryMeElse(l)
            | Instr::Try(l)
            | Instr::Retry(l)
            | Instr::Trust(l) => {
                barriers.insert(*l);
            }
            Instr::SwitchOnTerm {
                var,
                con,
                lis,
                str_,
            } => {
                barriers.extend([*var, *con, *lis, *str_]);
            }
            Instr::SwitchOnConstant(table) => {
                barriers.extend(table.iter().map(|(_, l)| *l));
            }
            Instr::SwitchOnStructure(table) => {
                barriers.extend(table.iter().map(|(_, l)| *l));
            }
            _ => {}
        }
    }
    barriers
}

/// Rewrite every code-address operand in `code` and every entry in the
/// predicate table through `map`.
fn rewrite_addrs(p: &mut CompiledProgram, map: impl Fn(CodeAddr) -> CodeAddr) {
    for instr in &mut p.code {
        match instr {
            Instr::TryMeElse(l)
            | Instr::RetryMeElse(l)
            | Instr::Try(l)
            | Instr::Retry(l)
            | Instr::Trust(l) => *l = map(*l),
            Instr::SwitchOnTerm {
                var,
                con,
                lis,
                str_,
            } => {
                *var = map(*var);
                *con = map(*con);
                *lis = map(*lis);
                *str_ = map(*str_);
            }
            Instr::SwitchOnConstant(table) => {
                for (_, l) in table {
                    *l = map(*l);
                }
            }
            Instr::SwitchOnStructure(table) => {
                for (_, l) in table {
                    *l = map(*l);
                }
            }
            _ => {}
        }
    }
    for pred in &mut p.predicates {
        pred.entry = map(pred.entry);
        for l in &mut pred.clause_entries {
            *l = map(*l);
        }
    }
}

/// Collect the maximal fusable `unify_*` run starting at `start`, stopping
/// at the first barrier or non-unify instruction. Returns the operands and
/// the index one past the run.
fn take_unify_run(
    code: &[Instr],
    start: usize,
    barriers: &HashSet<CodeAddr>,
) -> (Vec<UnifyOp>, usize) {
    let mut ops = Vec::new();
    let mut i = start;
    while i < code.len() && !barriers.contains(&i) {
        match UnifyOp::from_instr(&code[i]) {
            Some(op) => {
                ops.push(op);
                i += 1;
            }
            None => break,
        }
    }
    (ops, i)
}

/// Fuse hot instruction runs in `p` into superinstructions, in place.
///
/// Idempotent: already-fused instructions are never re-fused, and plain
/// instructions that survive a first pass have no fusable continuation.
pub fn fuse_program(p: &mut CompiledProgram) {
    let barriers = collect_barriers(p);
    let old = std::mem::take(&mut p.code);
    let mut new_code: Vec<Instr> = Vec::with_capacity(old.len());
    // `new_addr[i]` is the new index of old instruction `i`, or `None` when
    // `i` was consumed into the interior of a fused run (guaranteed
    // unreferenced by the barrier check).
    let mut new_addr: Vec<Option<usize>> = vec![None; old.len() + 1];
    let mut i = 0;
    while i < old.len() {
        new_addr[i] = Some(new_code.len());
        match &old[i] {
            Instr::GetStructure(f, a) => {
                let (ops, end) = take_unify_run(&old, i + 1, &barriers);
                if ops.is_empty() {
                    new_code.push(old[i].clone());
                    i += 1;
                } else {
                    new_code.push(Instr::GetStructureSeq(*f, *a, ops));
                    i = end;
                }
            }
            Instr::GetList(a) => {
                let (ops, end) = take_unify_run(&old, i + 1, &barriers);
                if ops.is_empty() {
                    new_code.push(old[i].clone());
                    i += 1;
                } else {
                    new_code.push(Instr::GetListSeq(*a, ops));
                    i = end;
                }
            }
            Instr::PutValue(v, a) => {
                let mut moves = vec![(*v, *a)];
                let mut j = i + 1;
                while j < old.len() && !barriers.contains(&j) {
                    match &old[j] {
                        Instr::PutValue(v2, a2) => {
                            moves.push((*v2, *a2));
                            j += 1;
                        }
                        _ => break,
                    }
                }
                if moves.len() >= 2 {
                    new_code.push(Instr::PutValueSeq(moves));
                    i = j;
                } else {
                    new_code.push(old[i].clone());
                    i += 1;
                }
            }
            other => {
                new_code.push(other.clone());
                i += 1;
            }
        }
    }
    new_addr[old.len()] = Some(new_code.len());
    p.code = new_code;
    rewrite_addrs(p, |addr| {
        new_addr[addr].expect("fusion never consumes a referenced address")
    });
}

/// Expand every fused superinstruction in `p` back into its constituent
/// plain instructions, in place. The exact inverse of [`fuse_program`];
/// idempotent on already-plain code.
pub fn unfuse_program(p: &mut CompiledProgram) {
    let old = std::mem::take(&mut p.code);
    let mut new_code: Vec<Instr> = Vec::with_capacity(old.len());
    let mut new_addr: Vec<usize> = vec![0; old.len() + 1];
    for (i, instr) in old.iter().enumerate() {
        new_addr[i] = new_code.len();
        new_code.extend(instr.expand());
    }
    new_addr[old.len()] = new_code.len();
    p.code = new_code;
    rewrite_addrs(p, |addr| new_addr[addr]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use prolog_syntax::parse_program;

    const NREV: &str = "
        nrev([], []).
        nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
    ";

    fn compile(src: &str) -> CompiledProgram {
        compile_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn nrev_fuses_list_traversal() {
        let c = compile(NREV);
        assert!(
            c.code.iter().any(|i| matches!(i, Instr::GetListSeq(..))),
            "{}",
            c.listing()
        );
        // Fusion shrinks the code area.
        let mut plain = c.clone();
        unfuse_program(&mut plain);
        assert!(c.code.len() < plain.code.len());
    }

    #[test]
    fn fuse_unfuse_roundtrip() {
        for src in [
            NREV,
            "p(a).",
            "p(f(X, g(Y), Z)) :- q(X, Y, Z). q(A, B, C) :- p(f(A, g(B), C)).",
            "len([], 0). len([_|T], s(N)) :- len(T, N).",
        ] {
            let fused = compile(src);
            let mut unfused = fused.clone();
            unfuse_program(&mut unfused);
            let mut refused = unfused.clone();
            fuse_program(&mut refused);
            assert_eq!(refused.code, fused.code, "{src}");
            assert_eq!(
                refused
                    .predicates
                    .iter()
                    .map(|p| p.entry)
                    .collect::<Vec<_>>(),
                fused.predicates.iter().map(|p| p.entry).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn both_passes_are_idempotent() {
        let c = compile(NREV);
        let mut again = c.clone();
        fuse_program(&mut again);
        assert_eq!(again.code, c.code);

        let mut plain = c.clone();
        unfuse_program(&mut plain);
        let mut plain2 = plain.clone();
        unfuse_program(&mut plain2);
        assert_eq!(plain2.code, plain.code);
    }

    #[test]
    fn barriers_stay_instruction_starts() {
        let c = compile(NREV);
        let barriers = collect_barriers(&c);
        for addr in barriers {
            assert!(addr <= c.code.len(), "barrier {addr} out of range");
        }
        // Every jump operand still lands on a real instruction: unfusing
        // and re-running validation-by-construction — expand() of every
        // target must start where the remapped address says.
        for pred in &c.predicates {
            assert!(pred.entry < c.code.len());
            for &l in &pred.clause_entries {
                assert!(l < c.code.len());
            }
        }
    }

    #[test]
    fn interior_run_positions_are_unreferenced() {
        // A clause whose head has a deep structure produces a long unify
        // run; nothing may point into its interior after fusion.
        let c = compile("p(f(a, b, c, d, e)).");
        let has_seq = c
            .code
            .iter()
            .any(|i| matches!(i, Instr::GetStructureSeq(_, _, ops) if ops.len() >= 5));
        assert!(has_seq, "{}", c.listing());
    }
}
