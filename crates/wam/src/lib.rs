//! The WAM instruction set and a Prolog-to-WAM compiler.
//!
//! This crate is the compilation substrate of the `awam` workspace. It
//! replaces the PLM compiler the paper used to produce its input WAM code:
//! [`compile_program`] turns a parsed [`prolog_syntax::Program`] into a
//! [`CompiledProgram`] — a flat instruction vector plus a predicate table —
//! that is executed *unchanged* by both the concrete machine
//! (`wam-machine`) and the abstract analyzer (`awam-core`), mirroring the
//! paper's claim that "the WAM code compiler and the code it generates can
//! be reused without any modification".
//!
//! # Pipeline
//!
//! 1. [`norm`] — control-construct normalization: flattens conjunctions and
//!    lifts `;`, `->` and `\+` into fresh auxiliary predicates;
//! 2. [`classify`] — permanent/temporary variable classification and
//!    register assignment;
//! 3. [`codegen`] — per-clause instruction selection (breadth-first head
//!    compilation, bottom-up body construction, last-call optimization,
//!    cut via `neck_cut`/`get_level`/`cut_level`);
//! 4. [`index`] — clause chaining (`try_me_else`…) and first-argument
//!    indexing (`switch_on_term`, `switch_on_const`, `switch_on_struct`).
//!
//! # Examples
//!
//! ```
//! use prolog_syntax::parse_program;
//! use wam::compile_program;
//!
//! let program = parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).")?;
//! let compiled = compile_program(&program)?;
//! assert_eq!(compiled.predicates.len(), 1);
//! println!("{}", compiled.listing());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builtins;
pub mod classify;
pub mod codegen;
pub mod compile;
pub mod fuse;
pub mod index;
pub mod instr;
pub mod norm;
pub mod text;

pub use builtins::Builtin;
pub use compile::{compile_program, CompileError, CompiledProgram, PredEntry, PredId};
pub use fuse::{fuse_program, unfuse_program};
pub use instr::{
    CodeAddr, Functor, Instr, PredIdx, Slot, UnifyOp, WamConst, FIRST_FUSED_OPCODE, NUM_OPCODES,
    OPCODE_NAMES,
};
