//! Top-level compilation: normalize, classify, generate and link.

use crate::codegen::{compile_clause, CodegenError};
use crate::index::{emit_predicate, first_arg_class, FirstArg};
use crate::instr::{CodeAddr, Instr};
use crate::norm::{normalize_program, NormError};
use prolog_syntax::{Interner, PredKey, Program};
use std::collections::HashMap;
use std::fmt;

/// Index of a predicate in [`CompiledProgram::predicates`].
pub type PredId = usize;

/// An error produced by [`compile_program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Clause normalization failed.
    Norm(NormError),
    /// Code generation failed.
    Codegen(CodegenError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Norm(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Norm(e) => Some(e),
            CompileError::Codegen(e) => Some(e),
        }
    }
}

impl From<NormError> for CompileError {
    fn from(e: NormError) -> Self {
        CompileError::Norm(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

/// One predicate in the compiled code area.
#[derive(Debug, Clone)]
pub struct PredEntry {
    /// The predicate's name/arity.
    pub key: PredKey,
    /// Entry address used by the concrete machine (indexing included).
    pub entry: CodeAddr,
    /// Per-clause body entry addresses, in source order; the abstract
    /// machine's `call` reinterpretation iterates these directly.
    pub clause_entries: Vec<CodeAddr>,
}

impl PredEntry {
    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clause_entries.len()
    }
}

/// A compiled program: one flat code area plus the predicate table.
///
/// The same `CompiledProgram` is executed by the concrete machine
/// (`wam-machine`) and reinterpreted by the abstract analyzer
/// (`awam-core`).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The instruction area.
    pub code: Vec<Instr>,
    /// Predicate table; [`Instr::Call`]/[`Instr::Execute`] operands index
    /// into it.
    pub predicates: Vec<PredEntry>,
    /// Lookup from name/arity to predicate id.
    pub pred_map: HashMap<PredKey, PredId>,
    /// Interner covering every symbol in the code (including auxiliary
    /// predicates invented during normalization).
    pub interner: Interner,
}

impl CompiledProgram {
    /// Look up a predicate by source name and arity.
    pub fn predicate(&self, name: &str, arity: usize) -> Option<PredId> {
        let sym = self.interner.lookup(name)?;
        self.pred_map.get(&PredKey { name: sym, arity }).copied()
    }

    /// Static code size in instructions (the `Size` column of Table 1).
    pub fn code_size(&self) -> usize {
        self.code.len()
    }

    /// A human-readable assembly listing.
    pub fn listing(&self) -> String {
        let mut by_entry: Vec<(CodeAddr, &PredEntry)> =
            self.predicates.iter().map(|p| (p.entry, p)).collect();
        by_entry.sort_by_key(|(addr, _)| *addr);
        let mut starts: HashMap<CodeAddr, String> = HashMap::new();
        for pred in &self.predicates {
            let min = pred
                .clause_entries
                .iter()
                .copied()
                .chain([pred.entry])
                .min()
                .expect("non-empty");
            starts.insert(min, pred.key.display(&self.interner));
        }
        let mut out = String::new();
        for (addr, instr) in self.code.iter().enumerate() {
            if let Some(name) = starts.get(&addr) {
                out.push_str(&format!("\n{name}:\n"));
            }
            out.push_str(&format!("  {addr:4}  {}\n", instr.display(&self.interner)));
        }
        out
    }
}

/// Compile a parsed program to WAM code.
///
/// # Errors
///
/// Returns [`CompileError`] for non-callable goals or calls to undefined
/// predicates.
///
/// # Examples
///
/// ```
/// let program = prolog_syntax::parse_program("p(0). p(s(X)) :- p(X).")?;
/// let compiled = wam::compile_program(&program)?;
/// assert!(compiled.predicate("p", 1).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_program(program: &Program) -> Result<CompiledProgram, CompileError> {
    let norm = normalize_program(program)?;
    let mut pred_map: HashMap<PredKey, PredId> = HashMap::new();
    for (i, (key, _)) in norm.predicates.iter().enumerate() {
        pred_map.insert(*key, i);
    }
    let mut code = Vec::new();
    let mut predicates = Vec::new();
    for (key, clauses) in &norm.predicates {
        let blocks: Vec<Vec<Instr>> = clauses
            .iter()
            .map(|c| compile_clause(c, &pred_map, &norm.interner))
            .collect::<Result<_, _>>()?;
        let first_args: Vec<FirstArg> = clauses
            .iter()
            .map(|c| first_arg_class(c, &norm.interner))
            .collect();
        let pc = emit_predicate(&mut code, blocks, &first_args);
        predicates.push(PredEntry {
            key: *key,
            entry: pc.entry,
            clause_entries: pc.clause_entries,
        });
    }
    let mut compiled = CompiledProgram {
        code,
        predicates,
        pred_map,
        interner: norm.interner,
    };
    // Collapse hot instruction runs into superinstructions (see
    // `crate::fuse`). Analyses that want the plain stream back call
    // `fuse::unfuse_program` — the exact inverse.
    crate::fuse::fuse_program(&mut compiled);
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        compile_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn append_compiles() {
        let c = compile("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
        assert_eq!(c.predicates.len(), 1);
        let p = c.predicate("app", 3).unwrap();
        assert_eq!(c.predicates[p].num_clauses(), 2);
        assert!(c.code_size() > 5);
    }

    #[test]
    fn recursive_call_resolves_to_self() {
        let c = compile("loop(X) :- loop(X).");
        let p = c.predicate("loop", 1).unwrap();
        assert!(c
            .code
            .iter()
            .any(|i| matches!(i, Instr::Execute(t) if *t == p)));
    }

    #[test]
    fn undefined_predicate_reported() {
        let program = parse_program("p :- missing(1).").unwrap();
        let err = compile_program(&program).unwrap_err();
        assert!(matches!(err, CompileError::Codegen(_)));
        assert!(err.to_string().contains("missing/1"));
    }

    #[test]
    fn aux_predicates_compiled_too() {
        let c = compile("p(X) :- (q(X) ; r(X)). q(1). r(2).");
        assert_eq!(c.predicates.len(), 4);
        // The aux predicate must be reachable via a call from p/1.
        let p = c.predicate("p", 1).unwrap();
        let entry = c.predicates[p].entry;
        let has_call = c.code[entry..]
            .iter()
            .take(10)
            .any(|i| matches!(i, Instr::Call(_) | Instr::Execute(_)));
        assert!(has_call);
    }

    #[test]
    fn listing_renders() {
        let c = compile("nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R). app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).");
        let listing = c.listing();
        assert!(listing.contains("nrev/2:"), "{listing}");
        assert!(listing.contains("app/3:"), "{listing}");
        assert!(listing.contains("switch_on_term"), "{listing}");
    }

    #[test]
    fn code_size_counts_instructions() {
        let c = compile("p(a).");
        assert_eq!(c.code_size(), c.code.len());
    }
}
