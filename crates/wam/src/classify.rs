//! Permanent/temporary variable classification and register assignment.
//!
//! A variable is **permanent** (allocated a `Y` slot in the environment) if
//! it occurs in more than one *chunk*. Chunks are delimited by user
//! predicate calls: the head together with the goals up to and including
//! the first call form chunk 0, each subsequent run of goals ending in a
//! call forms the next chunk. Inline builtins do not end a chunk because
//! they never re-enter WAM code (and all temporaries live in X registers
//! above every argument register, where builtins cannot clobber them).
//!
//! Temporary variables are assigned X registers starting at `base`, which
//! is placed above the widest argument list in the clause so that argument
//! loading never overwrites a live temporary.

use crate::norm::{Goal, NormClause};
use prolog_syntax::{Term, VarId};
use std::collections::HashMap;

/// Classification result: layout plus the void-variable set.
#[derive(Debug, Clone)]
pub struct Classified {
    /// Register layout.
    pub layout: Layout,
    /// Variables with exactly one occurrence in the clause.
    pub voids: std::collections::HashSet<VarId>,
}

/// Register assignment for one clause (see module docs).
#[derive(Debug, Clone)]
pub struct Layout {
    /// Permanent variables and their `Y` slots.
    pub perm: HashMap<VarId, u16>,
    /// Temporary variables and their `X` slots (all `>= base`).
    pub temp: HashMap<VarId, u16>,
    /// First X register usable for temporaries.
    pub base: u16,
    /// First X register for structure-building scratch (above temporaries).
    pub scratch_base: u16,
    /// Environment size (permanents + optional cut slot).
    pub env_size: u16,
    /// `Y` slot of the saved cut barrier, if needed.
    pub cut_slot: Option<u16>,
    /// Whether the clause needs an environment.
    pub needs_env: bool,
}

impl Layout {
    /// The slot assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not classified (internal invariant).
    pub fn slot(&self, var: VarId) -> crate::Slot {
        if let Some(&y) = self.perm.get(&var) {
            crate::Slot::Y(y)
        } else if let Some(&x) = self.temp.get(&var) {
            crate::Slot::X(x)
        } else {
            panic!("unclassified variable {var:?}")
        }
    }
}

/// Classify the variables of `clause` and build its register layout.
pub fn classify(clause: &NormClause) -> Classified {
    // Occurrence counting and chunk assignment.
    let mut chunks: HashMap<VarId, Vec<usize>> = HashMap::new();
    let mut occurrences: HashMap<VarId, usize> = HashMap::new();
    let mut record = |term: &Term, chunk: usize| {
        for v in term_vars(term) {
            let entry = chunks.entry(v).or_default();
            if entry.last() != Some(&chunk) {
                entry.push(chunk);
            }
            *occurrences.entry(v).or_insert(0) += count_occurrences(term, v);
        }
    };
    for arg in &clause.head_args {
        record(arg, 0);
    }
    let mut chunk = 0usize;
    let mut calls_seen = 0usize;
    let mut first_call_before_cut = false;
    let mut cut_needs_slot = false;
    for goal in &clause.goals {
        match goal {
            Goal::Cut => {
                if first_call_before_cut {
                    cut_needs_slot = true;
                }
            }
            Goal::Builtin(_, args) => {
                for a in args {
                    record(a, chunk);
                }
            }
            Goal::Call(_, args) => {
                for a in args {
                    record(a, chunk);
                }
                chunk += 1;
                calls_seen += 1;
                first_call_before_cut = true;
            }
        }
    }
    let _ = chunk;

    // Permanent iff present in >1 chunk.
    let mut perm_vars: Vec<VarId> = chunks
        .iter()
        .filter(|(_, cs)| cs.len() > 1)
        .map(|(&v, _)| v)
        .collect();
    perm_vars.sort();

    let voids: std::collections::HashSet<VarId> = occurrences
        .iter()
        .filter(|&(_, &n)| n == 1)
        .map(|(&v, _)| v)
        .collect();

    // Y slot assignment (order is arbitrary; sorted for determinism).
    let mut perm = HashMap::new();
    for (i, &v) in perm_vars.iter().enumerate() {
        perm.insert(v, i as u16);
    }
    let cut_slot = if cut_needs_slot {
        Some(perm_vars.len() as u16)
    } else {
        None
    };
    let env_size = perm_vars.len() as u16 + u16::from(cut_slot.is_some());

    // needs_env: permanents, a saved cut barrier, a non-final call, or
    // multiple calls.
    let last_goal_is_call = clause.goals.last().is_some_and(Goal::is_call);
    let needs_env = env_size > 0 || calls_seen >= 2 || (calls_seen == 1 && !last_goal_is_call);

    // base: above the widest argument list.
    let mut base = clause.head_args.len();
    for goal in &clause.goals {
        base = base.max(goal.args().len());
    }

    // Temporaries: every non-permanent, non-void variable.
    let mut temp = HashMap::new();
    let mut next = base as u16;
    let mut temp_vars: Vec<VarId> = chunks
        .keys()
        .filter(|v| !perm.contains_key(v) && !voids.contains(v))
        .copied()
        .collect();
    temp_vars.sort();
    for v in temp_vars {
        temp.insert(v, next);
        next += 1;
    }

    Classified {
        layout: Layout {
            perm,
            temp,
            base: base as u16,
            scratch_base: next,
            env_size,
            cut_slot,
            needs_env,
        },
        voids,
    }
}

fn term_vars(term: &Term) -> Vec<VarId> {
    term.variables()
}

fn count_occurrences(term: &Term, var: VarId) -> usize {
    match term {
        Term::Var(v) => usize::from(*v == var),
        Term::Int(_) | Term::Atom(_) => 0,
        Term::Struct(_, args) => args.iter().map(|a| count_occurrences(a, var)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::normalize_program;
    use prolog_syntax::parse_program;

    fn classify_first(src: &str) -> Classified {
        let p = parse_program(src).unwrap();
        let n = normalize_program(&p).unwrap();
        classify(&n.predicates[0].1[0])
    }

    #[test]
    fn fact_has_no_env() {
        let c = classify_first("p(a, X, X).");
        assert!(!c.layout.needs_env);
        assert!(c.layout.perm.is_empty());
        assert_eq!(c.layout.temp.len(), 1);
    }

    #[test]
    fn single_chunk_vars_are_temporary() {
        // X occurs in head and first goal only → one chunk → temporary.
        let c = classify_first("p(X) :- q(X). q(1).");
        assert!(c.layout.perm.is_empty());
        assert_eq!(c.layout.temp.len(), 1);
        assert!(!c.layout.needs_env, "single final call compiles to execute");
    }

    #[test]
    fn cross_call_vars_are_permanent() {
        let c = classify_first("p(X, Y) :- q(X, Z), r(Z, Y). q(1,1). r(1,1).");
        // Z crosses the first call; Y crosses it too (head chunk → goal 2).
        assert_eq!(c.layout.perm.len(), 2);
        // X is head+goal1 only → temporary.
        assert_eq!(c.layout.temp.len(), 1);
        assert!(c.layout.needs_env);
    }

    #[test]
    fn builtins_do_not_split_chunks() {
        // X used in head, a builtin, and the final call → still one chunk.
        let c = classify_first("p(X, Y) :- Y is X + 1, q(Y). q(1).");
        assert!(c.layout.perm.is_empty());
        assert!(!c.layout.needs_env);
    }

    #[test]
    fn trailing_builtin_after_call_needs_env() {
        let c = classify_first("p(X) :- q(X), X < 3. q(1).");
        assert!(c.layout.needs_env, "continuation must be saved across call");
        assert!(c.layout.perm.contains_key(&prolog_syntax::VarId(0)));
    }

    #[test]
    fn void_variables_detected() {
        let c = classify_first("p(_, X, X).");
        assert_eq!(c.voids.len(), 1);
    }

    #[test]
    fn neck_cut_needs_no_slot_deep_cut_does() {
        let c = classify_first("p(X) :- !, q(X). q(1).");
        assert!(c.layout.cut_slot.is_none());
        let c = classify_first("p(X) :- q(X), !, r(X). q(1). r(1).");
        assert!(c.layout.cut_slot.is_some());
        assert!(c.layout.env_size >= 1);
    }

    #[test]
    fn base_clears_widest_arglist() {
        let c = classify_first("p(X) :- q(a, b, c, d, X). q(1,2,3,4,5).");
        assert!(c.layout.base >= 5);
        assert!(c.layout.temp.values().all(|&x| x >= c.layout.base));
    }
}
