//! Clause normalization: flatten conjunctions and lower control constructs.
//!
//! The WAM core compiles a very plain clause shape — a head plus a sequence
//! of [`Goal`]s. This pass turns full clause bodies into that shape:
//!
//! * conjunctions are flattened, `true` goals dropped;
//! * disjunctions `(A ; B)` are lifted into a fresh auxiliary predicate
//!   with one clause per branch;
//! * if-then-else `(C -> T ; E)` becomes an auxiliary predicate with
//!   clauses `aux :- C, !, T.` and `aux :- E.`;
//! * bare if-then `(C -> T)` becomes `aux :- C, !, T.`;
//! * negation-as-failure `\+ G` becomes `aux :- G, !, fail.` / `aux.`;
//! * `!` becomes [`Goal::Cut`]; builtins are recognized by name/arity.
//!
//! A cut written by the user inside a lifted disjunction branch cuts only
//! the auxiliary predicate, not its parent — a standard simplification
//! (it matches ISO semantics for the cut implied by `->`, which is the
//! only cut the Table 1 benchmarks place inside a disjunction).

use crate::builtins::Builtin;
use prolog_syntax::{Clause, Interner, PredKey, Program, Term, VarId};
use std::collections::HashMap;
use std::fmt;

/// One normalized body goal.
#[derive(Clone, Debug, PartialEq)]
pub enum Goal {
    /// A call to a user-defined predicate.
    Call(PredKey, Vec<Term>),
    /// An inline builtin.
    Builtin(Builtin, Vec<Term>),
    /// A cut.
    Cut,
}

impl Goal {
    /// The terms appearing as arguments of this goal.
    pub fn args(&self) -> &[Term] {
        match self {
            Goal::Call(_, args) | Goal::Builtin(_, args) => args,
            Goal::Cut => &[],
        }
    }

    /// Whether this goal transfers control to another predicate (and thus
    /// clobbers argument registers).
    pub fn is_call(&self) -> bool {
        matches!(self, Goal::Call(..))
    }
}

/// A clause in normal form.
#[derive(Clone, Debug)]
pub struct NormClause {
    /// The predicate this clause belongs to.
    pub key: PredKey,
    /// Head argument terms.
    pub head_args: Vec<Term>,
    /// Body goals in execution order.
    pub goals: Vec<Goal>,
    /// Number of distinct variables ([`VarId`]s run `0..num_vars`).
    pub num_vars: usize,
    /// Display names for variables (auxiliary clauses synthesize names).
    pub var_names: Vec<String>,
}

/// A whole program in normal form: clauses grouped by predicate, in
/// first-occurrence order, with auxiliary predicates appended.
#[derive(Debug)]
pub struct NormProgram {
    /// Interner extended with auxiliary predicate names.
    pub interner: Interner,
    /// `(predicate, its clauses)` in first-occurrence order.
    pub predicates: Vec<(PredKey, Vec<NormClause>)>,
}

/// An error produced during normalization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormError {
    /// A body goal was a variable or number — metacall is unsupported.
    NonCallableGoal {
        /// The predicate whose clause contained the goal.
        pred: String,
    },
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormError::NonCallableGoal { pred } => {
                write!(
                    f,
                    "non-callable goal in a clause of {pred} (metacall is unsupported)"
                )
            }
        }
    }
}

impl std::error::Error for NormError {}

/// Normalize every clause of `program`.
///
/// # Errors
///
/// Returns [`NormError::NonCallableGoal`] if a clause body contains a
/// variable or number in a goal position.
pub fn normalize_program(program: &Program) -> Result<NormProgram, NormError> {
    let mut norm = Normalizer {
        interner: program.interner.clone(),
        aux_counter: 0,
        out: Vec::new(),
    };
    for clause in &program.clauses {
        norm.normalize_clause(clause)?;
    }
    // Group by predicate in first-occurrence order.
    let mut order: Vec<PredKey> = Vec::new();
    let mut groups: HashMap<PredKey, Vec<NormClause>> = HashMap::new();
    for clause in norm.out {
        let entry = groups.entry(clause.key).or_default();
        if entry.is_empty() {
            order.push(clause.key);
        }
        entry.push(clause);
    }
    Ok(NormProgram {
        interner: norm.interner,
        predicates: order
            .into_iter()
            .map(|key| {
                let clauses = groups.remove(&key).unwrap_or_default();
                (key, clauses)
            })
            .collect(),
    })
}

struct Normalizer {
    interner: Interner,
    aux_counter: usize,
    out: Vec<NormClause>,
}

/// A pending clause: head key+args plus an un-normalized body term.
struct Pending {
    key: PredKey,
    head_args: Vec<Term>,
    body: Term,
    var_names: Vec<String>,
}

impl Normalizer {
    fn normalize_clause(&mut self, clause: &Clause) -> Result<(), NormError> {
        let key = clause.pred_key();
        let head_args = match &clause.head {
            Term::Struct(_, args) => args.clone(),
            Term::Atom(_) => Vec::new(),
            _ => unreachable!("heads validated by the parser"),
        };
        let pending = Pending {
            key,
            head_args,
            body: clause.body.clone(),
            var_names: clause.var_names.clone(),
        };
        self.process(pending)
    }

    fn process(&mut self, pending: Pending) -> Result<(), NormError> {
        let Pending {
            key,
            head_args,
            body,
            mut var_names,
        } = pending;
        let conjuncts = body.conjuncts(&self.interner);
        let mut goals = Vec::new();
        let mut auxes: Vec<Pending> = Vec::new();
        for goal in conjuncts {
            self.lower_goal(goal, &mut goals, &mut auxes, &mut var_names, &key)?;
        }
        // Ensure var_names covers every VarId used (aux arg invention may
        // not add vars, but defensive).
        let max_var = head_args
            .iter()
            .chain(goals.iter().flat_map(|g| g.args().iter()))
            .flat_map(|t| t.variables())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        while var_names.len() < max_var {
            var_names.push(format!("_G{}", var_names.len()));
        }
        self.out.push(NormClause {
            key,
            head_args,
            num_vars: var_names.len(),
            goals,
            var_names,
        });
        for aux in auxes {
            self.process(aux)?;
        }
        Ok(())
    }

    fn lower_goal(
        &mut self,
        goal: Term,
        goals: &mut Vec<Goal>,
        auxes: &mut Vec<Pending>,
        var_names: &mut [String],
        parent: &PredKey,
    ) -> Result<(), NormError> {
        let interner = &self.interner;
        match &goal {
            Term::Atom(a) if *a == interner.true_() => Ok(()),
            Term::Atom(a) if *a == interner.cut() => {
                goals.push(Goal::Cut);
                Ok(())
            }
            Term::Struct(f, args) if *f == interner.semicolon() && args.len() == 2 => {
                // (C -> T ; E) or plain (A ; B).
                let (left, right) = (&args[0], &args[1]);
                let arrow = interner.arrow();
                let bodies = match left {
                    Term::Struct(g, ct) if *g == arrow && ct.len() == 2 => {
                        let cond_cut_then = self.seq(vec![
                            ct[0].clone(),
                            Term::Atom(self.interner.cut()),
                            ct[1].clone(),
                        ]);
                        vec![cond_cut_then, right.clone()]
                    }
                    _ => vec![left.clone(), right.clone()],
                };
                self.lift_aux(&goal, bodies, goals, auxes, var_names, "$dsj")
            }
            Term::Struct(f, args) if *f == interner.arrow() && args.len() == 2 => {
                let body = self.seq(vec![
                    args[0].clone(),
                    Term::Atom(self.interner.cut()),
                    args[1].clone(),
                ]);
                self.lift_aux(&goal, vec![body], goals, auxes, var_names, "$ite")
            }
            Term::Struct(f, args) if *f == interner.not() && args.len() == 1 => {
                let fail = Term::Atom(self.interner.intern("fail"));
                let neg_body =
                    self.seq(vec![args[0].clone(), Term::Atom(self.interner.cut()), fail]);
                let true_body = Term::Atom(self.interner.true_());
                self.lift_aux(
                    &goal,
                    vec![neg_body, true_body],
                    goals,
                    auxes,
                    var_names,
                    "$not",
                )
            }
            Term::Atom(name) => {
                let text = self.interner.resolve(*name).to_owned();
                if let Some(b) = Builtin::lookup(&text, 0) {
                    goals.push(Goal::Builtin(b, Vec::new()));
                } else {
                    goals.push(Goal::Call(
                        PredKey {
                            name: *name,
                            arity: 0,
                        },
                        Vec::new(),
                    ));
                }
                Ok(())
            }
            Term::Struct(name, args) => {
                let text = self.interner.resolve(*name).to_owned();
                if let Some(b) = Builtin::lookup(&text, args.len()) {
                    goals.push(Goal::Builtin(b, args.clone()));
                } else {
                    goals.push(Goal::Call(
                        PredKey {
                            name: *name,
                            arity: args.len(),
                        },
                        args.clone(),
                    ));
                }
                Ok(())
            }
            Term::Var(_) | Term::Int(_) => Err(NormError::NonCallableGoal {
                pred: parent.display(&self.interner),
            }),
        }
    }

    /// Replace `construct` by a call to a fresh auxiliary predicate whose
    /// clauses have the given `bodies`. The auxiliary takes as arguments
    /// every variable occurring in the construct.
    fn lift_aux(
        &mut self,
        construct: &Term,
        bodies: Vec<Term>,
        goals: &mut Vec<Goal>,
        auxes: &mut Vec<Pending>,
        var_names: &mut [String],
        prefix: &str,
    ) -> Result<(), NormError> {
        let vars = construct.variables();
        let name = self
            .interner
            .intern(&format!("{prefix}_{}", self.aux_counter));
        self.aux_counter += 1;
        let key = PredKey {
            name,
            arity: vars.len(),
        };
        // The call site passes the variables through.
        goals.push(Goal::Call(
            key,
            vars.iter().map(|&v| Term::Var(v)).collect(),
        ));
        // Each auxiliary clause renumbers the shared variables to 0..n and
        // keeps any branch-local variables at fresh higher ids.
        for body in bodies {
            let mut map: HashMap<VarId, VarId> = HashMap::new();
            let mut aux_names: Vec<String> = Vec::new();
            for (i, &v) in vars.iter().enumerate() {
                map.insert(v, VarId(i as u32));
                aux_names.push(
                    var_names
                        .get(v.index())
                        .cloned()
                        .unwrap_or_else(|| format!("_G{}", v.0)),
                );
            }
            let body = renumber(&body, &mut map, &mut aux_names);
            auxes.push(Pending {
                key,
                head_args: (0..vars.len() as u32)
                    .map(|i| Term::Var(VarId(i)))
                    .collect(),
                body,
                var_names: aux_names,
            });
        }
        Ok(())
    }

    fn seq(&mut self, goals: Vec<Term>) -> Term {
        let comma = self.interner.comma();
        let mut iter = goals.into_iter().rev();
        let mut term = iter.next().expect("non-empty sequence");
        for goal in iter {
            term = Term::Struct(comma, vec![goal, term]);
        }
        term
    }
}

/// Renumber variables according to `map`, extending it (and `names`) with
/// fresh ids for unmapped variables.
fn renumber(term: &Term, map: &mut HashMap<VarId, VarId>, names: &mut Vec<String>) -> Term {
    match term {
        Term::Var(v) => {
            if let Some(&n) = map.get(v) {
                Term::Var(n)
            } else {
                let fresh = VarId(names.len() as u32);
                map.insert(*v, fresh);
                names.push(format!("_L{}", v.0));
                Term::Var(fresh)
            }
        }
        Term::Int(_) | Term::Atom(_) => term.clone(),
        Term::Struct(f, args) => {
            Term::Struct(*f, args.iter().map(|a| renumber(a, map, names)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn norm(src: &str) -> NormProgram {
        normalize_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn facts_and_plain_clauses() {
        let n = norm("p(a). q(X) :- p(X), p(X).");
        assert_eq!(n.predicates.len(), 2);
        let (_, p_clauses) = &n.predicates[0];
        assert!(p_clauses[0].goals.is_empty());
        let (_, q_clauses) = &n.predicates[1];
        assert_eq!(q_clauses[0].goals.len(), 2);
        assert!(q_clauses[0].goals[0].is_call());
    }

    #[test]
    fn true_is_dropped_and_cut_kept() {
        let n = norm("p :- true, !, q. q.");
        let (_, p) = &n.predicates[0];
        assert_eq!(p[0].goals.len(), 2);
        assert_eq!(p[0].goals[0], Goal::Cut);
    }

    #[test]
    fn builtins_are_recognized() {
        let n = norm("p(X, Y) :- X is Y + 1, X < 10.");
        let (_, p) = &n.predicates[0];
        assert!(matches!(p[0].goals[0], Goal::Builtin(Builtin::Is, _)));
        assert!(matches!(p[0].goals[1], Goal::Builtin(Builtin::Lt, _)));
    }

    #[test]
    fn disjunction_is_lifted() {
        let n = norm("p(X) :- (q(X) ; r(X)). q(1). r(2).");
        // p, q, r, $dsj_0
        assert_eq!(n.predicates.len(), 4);
        let (_, p) = &n.predicates[0];
        assert_eq!(p[0].goals.len(), 1);
        let aux_key = match &p[0].goals[0] {
            Goal::Call(k, args) => {
                assert_eq!(args.len(), 1, "one shared variable");
                *k
            }
            other => panic!("expected aux call, got {other:?}"),
        };
        let (key, aux) = n
            .predicates
            .iter()
            .find(|(k, _)| *k == aux_key)
            .expect("aux predicate exists");
        assert_eq!(key.arity, 1);
        assert_eq!(aux.len(), 2, "one clause per branch");
    }

    #[test]
    fn if_then_else_gets_cut() {
        let n = norm("p(X) :- (q(X) -> r(X) ; s(X)). q(1). r(1). s(1).");
        let aux = n
            .predicates
            .iter()
            .find(|(k, _)| n.interner.resolve(k.name).starts_with("$dsj"))
            .expect("aux");
        let then_clause = &aux.1[0];
        assert!(then_clause.goals.contains(&Goal::Cut));
        let else_clause = &aux.1[1];
        assert!(!else_clause.goals.contains(&Goal::Cut));
    }

    #[test]
    fn negation_becomes_cut_fail_aux() {
        let n = norm("p(X) :- \\+ q(X). q(1).");
        let aux = n
            .predicates
            .iter()
            .find(|(k, _)| n.interner.resolve(k.name).starts_with("$not"))
            .expect("aux");
        assert_eq!(aux.1.len(), 2);
        let neg = &aux.1[0];
        assert!(matches!(
            neg.goals.last(),
            Some(Goal::Builtin(Builtin::Fail, _))
        ));
        assert!(neg.goals.contains(&Goal::Cut));
        assert!(aux.1[1].goals.is_empty());
    }

    #[test]
    fn branch_local_variables_get_fresh_ids() {
        let n = norm("p(X) :- (q(X, Y), r(Y) ; s(X)). q(1,1). r(1). s(1).");
        let aux = n
            .predicates
            .iter()
            .find(|(k, _)| n.interner.resolve(k.name).starts_with("$dsj"))
            .expect("aux");
        // Aux takes both X and Y (all vars of the construct).
        assert_eq!(aux.0.arity, 2);
        let c0 = &aux.1[0];
        assert_eq!(c0.head_args.len(), 2);
        assert!(c0.goals.iter().all(|g| g.is_call()));
    }

    #[test]
    fn metacall_is_rejected() {
        let program = parse_program("p(X) :- X.").unwrap();
        assert!(normalize_program(&program).is_err());
    }

    #[test]
    fn nested_disjunctions() {
        let n = norm("p(X) :- (a(X) ; b(X) ; c(X)). a(1). b(2). c(3).");
        // Right-assoc: (a ; (b ; c)) → dsj0 with [a], [dsj1]; dsj1 with [b],[c].
        let auxes: Vec<_> = n
            .predicates
            .iter()
            .filter(|(k, _)| n.interner.resolve(k.name).starts_with("$dsj"))
            .collect();
        assert_eq!(auxes.len(), 2);
    }
}
