//! Inline builtin predicates.
//!
//! Builtins execute with their arguments in `A1..An` and either succeed
//! (possibly binding variables) or fail. Control constructs (`!`, `;`,
//! `->`, `\+`) are *not* builtins — the compiler lowers them structurally
//! (see [`crate::norm`]).

use std::fmt;

/// The inline builtins known to the compiler and both machines.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `is/2` — arithmetic evaluation.
    Is,
    /// `</2`.
    Lt,
    /// `>/2`.
    Gt,
    /// `=</2`.
    Le,
    /// `>=/2`.
    Ge,
    /// `=:=/2` — arithmetic equality.
    ArithEq,
    /// `=\=/2` — arithmetic disequality.
    ArithNe,
    /// `=/2` — unification.
    Unify,
    /// `\=/2` — non-unifiability.
    NotUnify,
    /// `==/2` — structural equality.
    StructEq,
    /// `\==/2` — structural disequality.
    StructNe,
    /// `@</2` — standard order less-than.
    TermLt,
    /// `@>/2`.
    TermGt,
    /// `@=</2`.
    TermLe,
    /// `@>=/2`.
    TermGe,
    /// `true/0`.
    True,
    /// `fail/0` (also `false/0`).
    Fail,
    /// `var/1`.
    Var,
    /// `nonvar/1`.
    Nonvar,
    /// `atom/1`.
    Atom,
    /// `integer/1`.
    Integer,
    /// `number/1`.
    Number,
    /// `atomic/1`.
    Atomic,
    /// `compound/1`.
    Compound,
    /// `functor/3` — decompose/construct (construct mode requires a bound
    /// name/arity pair).
    FunctorOf,
    /// `arg/3`.
    Arg,
    /// `write/1` — no-op in this embedding (output suppressed).
    Write,
    /// `nl/0` — no-op.
    Nl,
    /// `tab/1` — no-op.
    Tab,
    /// `halt/0` — stops the machine successfully.
    Halt,
}

impl Builtin {
    /// Look up a builtin by source name and arity.
    pub fn lookup(name: &str, arity: usize) -> Option<Builtin> {
        use Builtin::*;
        Some(match (name, arity) {
            ("is", 2) => Is,
            ("<", 2) => Lt,
            (">", 2) => Gt,
            ("=<", 2) => Le,
            (">=", 2) => Ge,
            ("=:=", 2) => ArithEq,
            ("=\\=", 2) => ArithNe,
            ("=", 2) => Unify,
            ("\\=", 2) => NotUnify,
            ("==", 2) => StructEq,
            ("\\==", 2) => StructNe,
            ("@<", 2) => TermLt,
            ("@>", 2) => TermGt,
            ("@=<", 2) => TermLe,
            ("@>=", 2) => TermGe,
            ("true", 0) => True,
            ("fail", 0) | ("false", 0) => Fail,
            ("var", 1) => Var,
            ("nonvar", 1) => Nonvar,
            ("atom", 1) => Atom,
            ("integer", 1) => Integer,
            ("number", 1) => Number,
            ("atomic", 1) => Atomic,
            ("compound", 1) => Compound,
            ("functor", 3) => FunctorOf,
            ("arg", 3) => Arg,
            ("write", 1) => Write,
            ("nl", 0) => Nl,
            ("tab", 1) => Tab,
            ("halt", 0) => Halt,
            _ => return None,
        })
    }

    /// Number of arguments the builtin expects in `A` registers.
    pub fn arity(self) -> usize {
        use Builtin::*;
        match self {
            True | Fail | Nl | Halt => 0,
            Var | Nonvar | Atom | Integer | Number | Atomic | Compound | Write | Tab => 1,
            FunctorOf | Arg => 3,
            _ => 2,
        }
    }

    /// The source-level name.
    pub fn name(self) -> &'static str {
        use Builtin::*;
        match self {
            Is => "is",
            Lt => "<",
            Gt => ">",
            Le => "=<",
            Ge => ">=",
            ArithEq => "=:=",
            ArithNe => "=\\=",
            Unify => "=",
            NotUnify => "\\=",
            StructEq => "==",
            StructNe => "\\==",
            TermLt => "@<",
            TermGt => "@>",
            TermLe => "@=<",
            TermGe => "@>=",
            True => "true",
            Fail => "fail",
            Var => "var",
            Nonvar => "nonvar",
            Atom => "atom",
            Integer => "integer",
            Number => "number",
            Atomic => "atomic",
            Compound => "compound",
            FunctorOf => "functor",
            Arg => "arg",
            Write => "write",
            Nl => "nl",
            Tab => "tab",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name(), self.arity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_name_and_arity() {
        assert_eq!(Builtin::lookup("is", 2), Some(Builtin::Is));
        assert_eq!(Builtin::lookup("is", 3), None);
        assert_eq!(Builtin::lookup("=<", 2), Some(Builtin::Le));
        assert_eq!(Builtin::lookup("frobnicate", 2), None);
    }

    #[test]
    fn arity_is_consistent_with_lookup() {
        for (name, arity) in [
            ("is", 2),
            ("true", 0),
            ("var", 1),
            ("functor", 3),
            ("@<", 2),
        ] {
            let b = Builtin::lookup(name, arity).unwrap();
            assert_eq!(b.arity(), arity, "{name}");
            assert_eq!(b.name(), name);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Builtin::Is.to_string(), "is/2");
        assert_eq!(Builtin::Nl.to_string(), "nl/0");
    }
}
