//! Plain counters: extension-table statistics, per-opcode dispatch
//! counts, and machine-level work/high-water counters.
//!
//! All counters are unconditional `u64` increments — cheap enough to
//! leave on in release builds, which is what makes compiled-vs-hosted
//! comparisons report *work done* instead of just wall time.

use crate::json::Json;

/// Statistics for the extension table (the analysis memo table).
///
/// Replaces the anonymous `(lookups, scan_steps)` tuple the analyzer
/// used to expose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of `find`/`find_by` consultations.
    pub lookups: u64,
    /// Consultations that found an existing entry.
    pub hits: u64,
    /// Consultations that found nothing (usually followed by an insert).
    pub misses: u64,
    /// Entries examined across all consultations (list-scan cost).
    pub scan_steps: u64,
    /// Fresh entries inserted.
    pub inserts: u64,
    /// Success-pattern updates applied (lub of old and new summary).
    pub summary_updates: u64,
    /// Updates whose lub strictly grew the stored summary.
    pub lub_widenings: u64,
    /// Table version bumps (each one can force dependent re-iteration).
    pub version_bumps: u64,
}

impl TableStats {
    /// Encode as a JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lookups", Json::Int(self.lookups as i64)),
            ("hits", Json::Int(self.hits as i64)),
            ("misses", Json::Int(self.misses as i64)),
            ("scan_steps", Json::Int(self.scan_steps as i64)),
            ("inserts", Json::Int(self.inserts as i64)),
            ("summary_updates", Json::Int(self.summary_updates as i64)),
            ("lub_widenings", Json::Int(self.lub_widenings as i64)),
            ("version_bumps", Json::Int(self.version_bumps as i64)),
        ])
    }

    /// Hit rate in [0, 1]; zero when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Statistics for a pattern interner (the hash-consed arena mapping
/// canonical patterns to dense integer ids) and its id-keyed memo
/// caches for the lattice operations.
///
/// One instance per session interner; a probe against the shared base
/// arena and a probe against the session-local overlay both count as a
/// single intern. `bytes_saved` estimates the heap bytes a deduplicated
/// intern avoided allocating (the node and root vectors of the pattern
/// that was dropped in favor of the arena copy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Intern probes that found the pattern already in the arena.
    pub intern_hits: u64,
    /// Intern probes that had to add a fresh arena slot.
    pub intern_misses: u64,
    /// Memoized `lub` requests.
    pub lub_calls: u64,
    /// `lub` requests answered from the memo cache (including the
    /// `a ⊔ a = a` identical-operand fast path).
    pub lub_cache_hits: u64,
    /// Memoized `leq` requests.
    pub leq_calls: u64,
    /// `leq` requests answered from the memo cache (including the
    /// reflexive fast path).
    pub leq_cache_hits: u64,
    /// Estimated heap bytes deduplication avoided allocating.
    pub bytes_saved: u64,
}

impl InternStats {
    /// Encode as a JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("intern_hits", Json::Int(self.intern_hits as i64)),
            ("intern_misses", Json::Int(self.intern_misses as i64)),
            ("lub_calls", Json::Int(self.lub_calls as i64)),
            ("lub_cache_hits", Json::Int(self.lub_cache_hits as i64)),
            ("leq_calls", Json::Int(self.leq_calls as i64)),
            ("leq_cache_hits", Json::Int(self.leq_cache_hits as i64)),
            ("bytes_saved", Json::Int(self.bytes_saved as i64)),
        ])
    }

    /// Intern hit rate in [0, 1]; zero when there were no probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.intern_hits + self.intern_misses;
        if total == 0 {
            0.0
        } else {
            self.intern_hits as f64 / total as f64
        }
    }
}

/// Per-opcode dispatch counts.
///
/// The layer is machine-agnostic: the machine supplies the opcode count
/// at construction and the opcode names at render time (`wam` exports
/// `OPCODE_NAMES`), so this crate needs no dependency on the
/// instruction set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpcodeCounts {
    counts: Vec<u64>,
}

impl OpcodeCounts {
    /// A counter vector for `num_opcodes` opcodes, all zero.
    pub fn new(num_opcodes: usize) -> Self {
        OpcodeCounts {
            counts: vec![0; num_opcodes],
        }
    }

    /// Count one dispatch of opcode `index`.
    #[inline]
    pub fn hit(&mut self, index: usize) {
        self.counts[index] += 1;
    }

    /// Count `n` dispatches of opcode `index` at once — fused
    /// superinstruction runs attribute their constituents in one step.
    #[inline]
    pub fn hit_n(&mut self, index: usize, n: u64) {
        self.counts[index] += n;
    }

    /// The count for opcode `index` (zero if out of range).
    pub fn get(&self, index: usize) -> u64 {
        self.counts.get(index).copied().unwrap_or(0)
    }

    /// Total dispatches across all opcodes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(name, count)` for every opcode with a non-zero count, sorted by
    /// count descending (ties broken by opcode order).
    ///
    /// # Panics
    ///
    /// Panics if `names` is shorter than the counter vector.
    pub fn nonzero<'n>(&self, names: &[&'n str]) -> Vec<(&'n str, u64)> {
        assert!(names.len() >= self.counts.len(), "name table too short");
        let mut rows: Vec<(&str, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (names[i], c))
            .collect();
        rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        rows
    }

    /// Encode as a JSON object keyed by opcode name (non-zero only).
    ///
    /// # Panics
    ///
    /// Panics if `names` is shorter than the counter vector.
    pub fn to_json(&self, names: &[&str]) -> Json {
        Json::Obj(
            self.nonzero(names)
                .into_iter()
                .map(|(name, count)| (name.to_owned(), Json::Int(count as i64)))
                .collect(),
        )
    }
}

/// Counters for one analysis session: how often queries were answered
/// from the persistent extension table (warm hits) versus by running the
/// fixpoint (cold runs), and how much of the table each cold run reused.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered from the persistent table without any fixpoint
    /// iteration (the entry pattern was subsumed by a memoized calling
    /// pattern).
    pub session_warm_hits: u64,
    /// Queries that had to run the fixpoint (possibly seeded with
    /// previously memoized entries).
    pub session_cold_runs: u64,
    /// Table entries already present when cold runs started (work the
    /// session saved those runs from re-deriving).
    pub entries_reused: u64,
    /// Table entries created by this session's cold runs.
    pub entries_created: u64,
}

impl SessionStats {
    /// Encode as a JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "session_warm_hits",
                Json::Int(self.session_warm_hits as i64),
            ),
            (
                "session_cold_runs",
                Json::Int(self.session_cold_runs as i64),
            ),
            ("entries_reused", Json::Int(self.entries_reused as i64)),
            ("entries_created", Json::Int(self.entries_created as i64)),
        ])
    }

    /// Warm-hit rate in [0, 1]; zero when no queries were made.
    pub fn warm_rate(&self) -> f64 {
        let total = self.session_warm_hits + self.session_cold_runs;
        if total == 0 {
            0.0
        } else {
            self.session_warm_hits as f64 / total as f64
        }
    }
}

/// Counters for one incremental re-analysis (`update_program` /
/// `update_source`): how the edit's invalidation wave partitioned the
/// extension table and how much work the seeded re-fixpoint did.
///
/// `entries_before = entries_kept + entries_reset + entries_dropped`
/// always holds — the three buckets are a partition of the pre-edit
/// table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvalidationStats {
    /// Table entries present before the edit was applied.
    pub entries_before: u64,
    /// Entries that survived untouched (their dependency cone avoided
    /// every changed predicate).
    pub entries_kept: u64,
    /// Entries reset to an unexplored state (kept calling pattern,
    /// summary cleared) because they transitively depend on a changed
    /// predicate — the re-fixpoint frontier.
    pub entries_reset: u64,
    /// Entries dropped outright (their predicate was removed, or their
    /// calling pattern mentions a symbol absent from the new program).
    pub entries_dropped: u64,
    /// Predicates whose clause list changed (added or edited).
    pub preds_changed: u64,
    /// Predicates removed by the edit.
    pub preds_removed: u64,
    /// Frontier size: reset entries seeded into the re-fixpoint worklist.
    pub frontier: u64,
    /// Entry explorations performed by the seeded re-fixpoint.
    pub refix_explorations: u64,
    /// Abstract instructions executed by the seeded re-fixpoint.
    pub refix_instructions: u64,
}

impl InvalidationStats {
    /// Encode as a JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entries_before", Json::Int(self.entries_before as i64)),
            ("entries_kept", Json::Int(self.entries_kept as i64)),
            ("entries_reset", Json::Int(self.entries_reset as i64)),
            ("entries_dropped", Json::Int(self.entries_dropped as i64)),
            ("preds_changed", Json::Int(self.preds_changed as i64)),
            ("preds_removed", Json::Int(self.preds_removed as i64)),
            ("frontier", Json::Int(self.frontier as i64)),
            (
                "refix_explorations",
                Json::Int(self.refix_explorations as i64),
            ),
            (
                "refix_instructions",
                Json::Int(self.refix_instructions as i64),
            ),
        ])
    }

    /// Fraction of pre-edit entries that survived, in [0, 1]; one when
    /// the table was empty (a no-op edit keeps everything).
    pub fn kept_rate(&self) -> f64 {
        if self.entries_before == 0 {
            1.0
        } else {
            self.entries_kept as f64 / self.entries_before as f64
        }
    }
}

/// Counters for the serving daemon: request/response totals, the two
/// shedding paths, compiled-program cache behavior, and warm-session
/// pool behavior.
///
/// The serve layer keeps these behind atomics and snapshots them into
/// this struct for `stats` responses; the struct itself is plain `u64`s
/// so it serializes and diffs like every other counter block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Analysis-plane requests received (`register`/`analyze`/`batch`,
    /// plus unparseable lines), before any shedding. Control ops
    /// (`stats`/`shutdown`) are counted in [`ServeStats::control_ops`]
    /// instead so they never dilute hit/error rates.
    pub requests: u64,
    /// Control-plane ops received (`stats`, `shutdown`); their
    /// responses are not counted in `responses_ok`/`responses_error`.
    pub control_ops: u64,
    /// Requests answered with an `ok` response.
    pub responses_ok: u64,
    /// Requests answered with an error envelope (all codes).
    pub responses_error: u64,
    /// Analyze/batch requests rejected because the in-flight limit was
    /// reached (the 429-style `overloaded` error).
    pub shed_overload: u64,
    /// Analysis runs aborted because they crossed their
    /// abstract-instruction budget (the `over_budget` error).
    pub shed_budget: u64,
    /// Analyze requests that found their compiled program in the cache.
    pub program_cache_hits: u64,
    /// Register requests that compiled a program not in the cache.
    pub program_cache_misses: u64,
    /// Compiled programs evicted to stay under the cache byte budget.
    pub program_cache_evictions: u64,
    /// Requests that reused a parked warm session from a tenant pool.
    pub session_pool_hits: u64,
    /// Requests that had to start a fresh session.
    pub session_pool_misses: u64,
    /// Queries the reused sessions answered without any fixpoint run
    /// (the session layer's warm hits, aggregated across the pool).
    pub warm_hits: u64,
    /// `update` ops that patched a registered program in place.
    pub updates: u64,
    /// Parked warm sessions migrated to the patched program by `update`
    /// ops (invalidated incrementally instead of being discarded).
    pub sessions_migrated: u64,
}

impl ServeStats {
    /// Encode as a JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::Int(self.requests as i64)),
            ("control_ops", Json::Int(self.control_ops as i64)),
            ("responses_ok", Json::Int(self.responses_ok as i64)),
            ("responses_error", Json::Int(self.responses_error as i64)),
            ("shed_overload", Json::Int(self.shed_overload as i64)),
            ("shed_budget", Json::Int(self.shed_budget as i64)),
            (
                "program_cache_hits",
                Json::Int(self.program_cache_hits as i64),
            ),
            (
                "program_cache_misses",
                Json::Int(self.program_cache_misses as i64),
            ),
            (
                "program_cache_evictions",
                Json::Int(self.program_cache_evictions as i64),
            ),
            (
                "session_pool_hits",
                Json::Int(self.session_pool_hits as i64),
            ),
            (
                "session_pool_misses",
                Json::Int(self.session_pool_misses as i64),
            ),
            ("warm_hits", Json::Int(self.warm_hits as i64)),
            ("updates", Json::Int(self.updates as i64)),
            (
                "sessions_migrated",
                Json::Int(self.sessions_migrated as i64),
            ),
        ])
    }

    /// Fold another counter block into this one (field-wise sums). The
    /// serve layer keeps one `ServeStats` per connection so the request
    /// hot path never touches a process-global lock; a `stats` snapshot
    /// merges the shards with this.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.control_ops += other.control_ops;
        self.responses_ok += other.responses_ok;
        self.responses_error += other.responses_error;
        self.shed_overload += other.shed_overload;
        self.shed_budget += other.shed_budget;
        self.program_cache_hits += other.program_cache_hits;
        self.program_cache_misses += other.program_cache_misses;
        self.program_cache_evictions += other.program_cache_evictions;
        self.session_pool_hits += other.session_pool_hits;
        self.session_pool_misses += other.session_pool_misses;
        self.warm_hits += other.warm_hits;
        self.updates += other.updates;
        self.sessions_migrated += other.sessions_migrated;
    }

    /// Program-cache hit rate in [0, 1]; zero when no lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.program_cache_hits + self.program_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.program_cache_hits as f64 / total as f64
        }
    }

    /// Warm-session pool hit rate in [0, 1]; zero when no checkouts.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.session_pool_hits + self.session_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.session_pool_hits as f64 / total as f64
        }
    }
}

/// Work and high-water counters for one machine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Instructions dispatched.
    pub instructions: u64,
    /// Predicate calls entered.
    pub calls: u64,
    /// Backtracks / forced failures taken.
    pub backtracks: u64,
    /// Choice points pushed.
    pub choice_points: u64,
    /// Maximum heap size observed (cells).
    pub heap_high_water: u64,
    /// Maximum trail size observed (entries).
    pub trail_high_water: u64,
}

impl MachineStats {
    /// Fold a heap-size sample into the high-water mark.
    #[inline]
    pub fn note_heap(&mut self, len: usize) {
        self.heap_high_water = self.heap_high_water.max(len as u64);
    }

    /// Fold a trail-size sample into the high-water mark.
    #[inline]
    pub fn note_trail(&mut self, len: usize) {
        self.trail_high_water = self.trail_high_water.max(len as u64);
    }

    /// Encode as a JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("instructions", Json::Int(self.instructions as i64)),
            ("calls", Json::Int(self.calls as i64)),
            ("backtracks", Json::Int(self.backtracks as i64)),
            ("choice_points", Json::Int(self.choice_points as i64)),
            ("heap_high_water", Json::Int(self.heap_high_water as i64)),
            ("trail_high_water", Json::Int(self.trail_high_water as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_stats_json_has_every_field() {
        let stats = TableStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            scan_steps: 21,
            inserts: 3,
            summary_updates: 5,
            lub_widenings: 2,
            version_bumps: 2,
        };
        let json = stats.to_json();
        assert_eq!(json.get("lookups").and_then(Json::as_u64), Some(10));
        assert_eq!(json.get("lub_widenings").and_then(Json::as_u64), Some(2));
        assert!((stats.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn intern_stats_json_has_every_field() {
        let stats = InternStats {
            intern_hits: 9,
            intern_misses: 3,
            lub_calls: 5,
            lub_cache_hits: 4,
            leq_calls: 6,
            leq_cache_hits: 2,
            bytes_saved: 480,
        };
        let json = stats.to_json();
        assert_eq!(json.get("intern_hits").and_then(Json::as_u64), Some(9));
        assert_eq!(json.get("intern_misses").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("lub_cache_hits").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("leq_calls").and_then(Json::as_u64), Some(6));
        assert_eq!(json.get("bytes_saved").and_then(Json::as_u64), Some(480));
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(InternStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn opcode_counts_sort_and_filter() {
        let mut counts = OpcodeCounts::new(3);
        counts.hit(0);
        counts.hit(2);
        counts.hit(2);
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.get(1), 0);
        let rows = counts.nonzero(&["a", "b", "c"]);
        assert_eq!(rows, vec![("c", 2), ("a", 1)]);
        let json = counts.to_json(&["a", "b", "c"]);
        assert_eq!(json.get("c").and_then(Json::as_u64), Some(2));
        assert!(json.get("b").is_none());
    }

    #[test]
    fn invalidation_stats_json_has_every_field() {
        let stats = InvalidationStats {
            entries_before: 12,
            entries_kept: 6,
            entries_reset: 4,
            entries_dropped: 2,
            preds_changed: 1,
            preds_removed: 1,
            frontier: 4,
            refix_explorations: 9,
            refix_instructions: 310,
        };
        let json = stats.to_json();
        assert_eq!(json.get("entries_before").and_then(Json::as_u64), Some(12));
        assert_eq!(json.get("entries_kept").and_then(Json::as_u64), Some(6));
        assert_eq!(json.get("entries_reset").and_then(Json::as_u64), Some(4));
        assert_eq!(json.get("entries_dropped").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("preds_changed").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("preds_removed").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("frontier").and_then(Json::as_u64), Some(4));
        assert_eq!(
            json.get("refix_explorations").and_then(Json::as_u64),
            Some(9)
        );
        assert_eq!(
            json.get("refix_instructions").and_then(Json::as_u64),
            Some(310)
        );
        assert!((stats.kept_rate() - 0.5).abs() < 1e-12);
        assert_eq!(InvalidationStats::default().kept_rate(), 1.0);
    }

    #[test]
    fn serve_stats_merge_covers_update_counters() {
        let mut a = ServeStats {
            updates: 1,
            sessions_migrated: 2,
            ..ServeStats::default()
        };
        let b = ServeStats {
            updates: 3,
            sessions_migrated: 5,
            ..ServeStats::default()
        };
        a.merge(&b);
        assert_eq!(a.updates, 4);
        assert_eq!(a.sessions_migrated, 7);
        let json = a.to_json();
        assert_eq!(json.get("updates").and_then(Json::as_u64), Some(4));
        assert_eq!(
            json.get("sessions_migrated").and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn high_water_marks_keep_the_max() {
        let mut stats = MachineStats::default();
        stats.note_heap(10);
        stats.note_heap(4);
        stats.note_trail(2);
        stats.note_trail(9);
        assert_eq!(stats.heap_high_water, 10);
        assert_eq!(stats.trail_high_water, 9);
    }
}
