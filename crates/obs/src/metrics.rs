//! A metrics registry: named counters and log₂-bucket histograms with a
//! stable JSON export.
//!
//! This is the surface a future `awam serve` scrapes: the analyzer fills
//! a [`MetricsRegistry`] per run (consult latency, iteration deltas,
//! per-predicate instruction heat) and the registry serializes to one
//! JSON document with deterministic key order (`BTreeMap` under the
//! hood) so diffs and schema checks are byte-stable modulo the measured
//! values themselves.
//!
//! [`Histogram`] uses 64 power-of-two buckets: value `v` lands in bucket
//! `⌊log₂ v⌋ + 1` (zero in bucket 0), so a single fixed-size array
//! covers the full `u64` range with ~2× relative resolution — the usual
//! trade for latency distributions. Quantiles are reported as the upper
//! bound of the bucket containing the target rank: an overestimate of at
//! most 2×, never an underestimate beyond the true bucket.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket is open-ended.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-size log₂ histogram over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample seen (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (inclusive for reporting purposes).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another histogram into this one. Because the buckets are
    /// fixed log₂ ranges, merging shard-local histograms is exact: the
    /// merged buckets (and therefore every quantile estimate) are
    /// identical to recording the union of samples into one histogram.
    /// This is what lets the serve layer keep per-connection histograms
    /// on the hot path and only combine them on a `stats` snapshot.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `⌈q·count⌉` (clamped to the
    /// observed max). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Encode as `{"count", "sum", "min", "max", "p50", "p90", "p99",
    /// "p999"}`. `min` is reported as 0 when empty.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            (
                "min",
                Json::Int(if self.count == 0 { 0 } else { self.min as i64 }),
            ),
            ("max", Json::Int(self.max as i64)),
            ("p50", Json::Int(self.quantile(0.50) as i64)),
            ("p90", Json::Int(self.quantile(0.90) as i64)),
            ("p99", Json::Int(self.quantile(0.99) as i64)),
            ("p999", Json::Int(self.quantile(0.999) as i64)),
        ])
    }
}

/// Named counters and histograms with stable (sorted) JSON export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Record one sample into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Install a pre-filled histogram under `name` (merging is not
    /// needed: producers own their histograms and hand them over whole).
    pub fn insert_histogram(&mut self, name: &str, hist: Histogram) {
        self.histograms.insert(name.to_owned(), hist);
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Encode as `{"counters": {…}, "histograms": {…}}` with keys in
    /// sorted order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::new();
        for v in [3u64, 5, 9, 0, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 117);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        // p99 lands in the bucket of the max sample; it is clamped to
        // the observed max.
        assert_eq!(h.quantile(0.99), 100);
        // The median of {0,3,5,9,100} is 5 → bucket [4,8) upper bound 7.
        assert_eq!(h.quantile(0.5), 7);
    }

    #[test]
    fn merge_of_shards_equals_single_stream() {
        // Deterministic xorshift samples split across 4 "shards" the way
        // per-connection histograms split serve traffic: merging the
        // shard histograms must reproduce the single-stream histogram
        // bucket-for-bucket, so every quantile estimate matches too.
        let mut x = 0x9e3779b97f4a7c15u64;
        let samples: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            })
            .collect();
        let mut single = Histogram::new();
        let mut shards = [
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
        ];
        for (i, &s) in samples.iter().enumerate() {
            single.record(s);
            shards[i % 4].record(s);
        }
        let mut merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged, single, "merge is exact, not approximate");
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), single.quantile(q));
        }
        assert_eq!(merged.to_json().emit(), single.to_json().emit());
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut filled = Histogram::new();
        for v in [1u64, 10, 100] {
            filled.record(v);
        }
        let mut from_empty = Histogram::new();
        from_empty.merge(&filled);
        assert_eq!(from_empty, filled);
        let mut with_empty = filled.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, filled, "empty merge is the identity");
    }

    #[test]
    fn empty_histogram_serializes_zeros() {
        let json = Histogram::new().to_json();
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(0));
        assert_eq!(json.get("min").and_then(Json::as_u64), Some(0));
        assert_eq!(json.get("p99").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn registry_json_is_sorted_and_stable() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("z.last", 1);
        reg.counter_add("a.first", 2);
        reg.counter_add("a.first", 3);
        reg.observe("lat", 10);
        assert_eq!(reg.counter("a.first"), Some(5));
        let json = reg.to_json();
        let Some(Json::Obj(counters)) = json.get("counters") else {
            panic!("counters object");
        };
        let keys: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a.first", "z.last"], "sorted key order");
        assert!(json.get("histograms").and_then(|h| h.get("lat")).is_some());
        // Emission is deterministic.
        assert_eq!(json.emit(), reg.to_json().emit());
    }
}
