//! A minimal JSON value type with an emitter and a recursive-descent
//! parser.
//!
//! The workspace builds offline with no third-party crates, so the
//! observability layer carries its own (small, strict) JSON support:
//! enough for stats documents and JSONL trace events to round-trip
//! losslessly. Integers are kept as `i64` (counters never approach
//! 2⁶³); floats use `f64`.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric (floats and integers
    /// both qualify — JSON doesn't distinguish, only our parser does).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    /// Serialize compactly into a caller-owned buffer (reset-not-free:
    /// hot loops clear and reuse one `String` instead of allocating per
    /// document).
    pub fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => emit_i64(*i, out),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a decimal marker so the parser reads it back as
                    // a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize with two-space indentation (for human consumption).
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    emit_string(k, out);
                    out.push_str(": ");
                    v.pretty_into(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.emit_into(out),
        }
    }

    /// Parse a JSON document. The whole input must be consumed (modulo
    /// trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed byte.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    // Bulk-copy maximal runs of clean bytes instead of pushing char by
    // char: serialization is on the serve hot path, and reports are
    // hundreds of bytes of which almost none need escaping. Splitting
    // at an ASCII byte is always a UTF-8 boundary, so the slices stay
    // valid `str`.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            0x00..=0x1f => "",
            _ => continue,
        };
        out.push_str(&s[start..i]);
        if escape.is_empty() {
            out.push_str(&format!("\\u{:04x}", b));
        } else {
            out.push_str(escape);
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Format an integer into `out` without the intermediate heap `String`
/// that `i64::to_string` allocates — responses carry a handful of
/// numeric fields each.
fn emit_i64(mut value: i64, out: &mut String) {
    if value == 0 {
        out.push('0');
        return;
    }
    let mut buf = [0u8; 20];
    let mut at = buf.len();
    let negative = value < 0;
    while value != 0 {
        at -= 1;
        // `unsigned_abs`-style digit extraction keeps i64::MIN correct.
        buf[at] = b'0' + (value % 10).unsigned_abs() as u8;
        value /= 10;
    }
    if negative {
        out.push('-');
    }
    out.push_str(std::str::from_utf8(&buf[at..]).expect("digits are ASCII"));
}

/// A JSON parse error: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // Linear dup scan: real documents have a handful of keys,
            // and this avoids a side map (and its per-key allocations)
            // on the serve hot path.
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        // Bulk-copy maximal runs of unescaped bytes. The input arrived
        // as `&str`, and run boundaries (`"` and `\`) are ASCII, so
        // every run is valid UTF-8 on its own — one `push_str` per run
        // instead of one push per character.
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run(run_start)?);
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we never escape above U+001F), but
                            // accept lone BMP scalars.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u scalar"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The unescaped run from `start` up to the current position, as
    /// UTF-8.
    fn run(&self, start: usize) -> Result<&str, JsonError> {
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            message: "invalid UTF-8 in string".to_owned(),
            offset: start,
        })
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad float literal"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("nreverse".into())),
            ("count", Json::Int(42)),
            ("ratio", Json::Float(1.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(-1), Json::Str("a\"b\\c\n".into())]),
            ),
        ]);
        let text = doc.emit();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let pretty = doc.emit_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
    }

    #[test]
    fn unicode_survives() {
        let doc = Json::Str("héllo → wörld".into());
        assert_eq!(Json::parse(&doc.emit()).unwrap(), doc);
    }
}
