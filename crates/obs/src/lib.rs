//! Observability for the abstract-WAM workspace: counters, event
//! tracing, and phase timers.
//!
//! The paper this workspace reproduces (Tan & Lin, PLDI 1992) makes a
//! performance claim; this crate makes that claim *inspectable*. It has
//! three layers, all usable independently:
//!
//! * [`counters`] — [`TableStats`] (extension-table work),
//!   [`OpcodeCounts`] (per-opcode dispatch), [`MachineStats`]
//!   (calls/backtracks/high-water marks), [`SessionStats`] (warm/cold
//!   query split of the session layer), [`InternStats`] (pattern-interner
//!   dedup and lub/leq memo-cache behavior). Counters are plain `u64`
//!   increments and stay on in release builds.
//! * [`trace`] — a [`Tracer`] trait with no-op, recording, and
//!   JSONL-streaming implementations. Machines hold an
//!   `Option<&mut dyn Tracer>`, so the untraced path is one branch per
//!   hook.
//! * [`timer`] — [`PhaseTimers`] over parse/compile/analyze/report.
//!   Clock reads are gated behind the `timing` cargo feature (default
//!   on); building with `--no-default-features` removes every `Instant`
//!   read.
//! * [`span`] — a hierarchical [`SpanProfiler`] (compile / iteration /
//!   predicate / ET-consult) with per-span call counts, total and self
//!   time; clock reads ride the same `timing` feature.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters and
//!   log₂-bucket [`Histogram`]s with a stable JSON export (the surface
//!   `awam serve` will scrape).
//!
//! * [`mod@envelope`] — the versioned `{"schema": "awam/v1", …}` wrapper
//!   every machine-readable surface (CLI `--stats-json` documents, the
//!   serve daemon's responses) shares, plus the structured error
//!   envelope.
//!
//! Everything serializes through the built-in [`json`] module (the
//! workspace builds offline, so no serde): stats become one JSON
//! document, traces become JSONL with one event per line, and both
//! parse back losslessly.

#![warn(missing_docs)]

pub mod counters;
pub mod envelope;
pub mod json;
pub mod metrics;
pub mod span;
pub mod timer;
pub mod trace;

pub use counters::{
    InternStats, InvalidationStats, MachineStats, OpcodeCounts, ServeStats, SessionStats,
    TableStats,
};
pub use envelope::{envelope, envelope_obj, error_envelope, SCHEMA};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, MetricsRegistry};
pub use span::{SpanNode, SpanProfiler};
pub use timer::{Phase, PhaseTimers, Stopwatch};
pub use trace::{
    parse_jsonl, term_from_json, term_to_json, JsonlTracer, NopTracer, RecordingTracer, TraceEvent,
    Tracer,
};
