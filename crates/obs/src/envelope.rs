//! The versioned JSON envelope every machine-readable awam surface
//! shares.
//!
//! Before this module existed the workspace grew three divergent ad-hoc
//! JSON documents (`--stats-json`, `profile --metrics-json`,
//! `fuzz --json`) — each with its own implicit schema, none carrying a
//! version. The serving daemon made that untenable: network clients
//! must be able to dispatch on *one* self-describing shape. So every
//! machine-readable document — CLI output and daemon response alike —
//! is now wrapped here:
//!
//! ```json
//! {"schema": "awam/v1", "kind": "stats", ...payload fields...}
//! ```
//!
//! * `schema` is the wire-format version. Additive changes (new fields)
//!   do not bump it; removing or renaming a field does.
//! * `kind` names the payload so a stream consumer can dispatch without
//!   out-of-band context (`stats`, `profile`, `fuzz`, `batch`,
//!   `register`, `analyze`, `error`, …).
//! * Payload fields stay at the top level (not nested under a `body`
//!   key) so pre-envelope consumers keep working unchanged.
//!
//! Errors use the same envelope with `kind: "error"`, an `ok: false`
//! marker, and a structured `error` object — see [`error_envelope`].

use crate::json::Json;

/// The current wire-format version tag carried in every envelope.
pub const SCHEMA: &str = "awam/v1";

/// Wrap payload `pairs` in the versioned envelope: prepends the
/// `schema` and `kind` fields, keeping the payload at the top level.
pub fn envelope(kind: &str, pairs: Vec<(&str, Json)>) -> Json {
    let mut all: Vec<(String, Json)> = Vec::with_capacity(pairs.len() + 2);
    all.push(("schema".to_owned(), Json::Str(SCHEMA.to_owned())));
    all.push(("kind".to_owned(), Json::Str(kind.to_owned())));
    all.extend(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(all)
}

/// Wrap an existing JSON object in the versioned envelope (prepending
/// `schema` and `kind`). Non-object payloads are nested under a `value`
/// key, since the envelope itself must be an object.
pub fn envelope_obj(kind: &str, payload: Json) -> Json {
    match payload {
        Json::Obj(pairs) => {
            let mut all: Vec<(String, Json)> = Vec::with_capacity(pairs.len() + 2);
            all.push(("schema".to_owned(), Json::Str(SCHEMA.to_owned())));
            all.push(("kind".to_owned(), Json::Str(kind.to_owned())));
            all.extend(pairs);
            Json::Obj(all)
        }
        other => envelope(kind, vec![("value", other)]),
    }
}

/// The error envelope: `{"schema": …, "kind": "error", "ok": false,
/// "error": {"code": CODE, "message": MESSAGE}}`.
///
/// `code` is a stable machine-readable slug (`overloaded`,
/// `over_budget`, `bad_request`, `unknown_program`, `parse_error`,
/// `compile_error`, `analysis_error`, `internal`); `message` is
/// human-readable and not part of the schema contract.
pub fn error_envelope(code: &str, message: &str) -> Json {
    envelope(
        "error",
        vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::Str(code.to_owned())),
                    ("message", Json::Str(message.to_owned())),
                ]),
            ),
        ],
    )
}

/// True when `doc` is an envelope of the current schema version (any
/// kind); clients use this as their first gate.
pub fn is_current(doc: &Json) -> bool {
    doc.get("schema").and_then(Json::as_str) == Some(SCHEMA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_prepends_schema_and_kind() {
        let doc = envelope("stats", vec![("iterations", Json::Int(3))]);
        assert!(is_current(&doc));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("stats"));
        assert_eq!(doc.get("iterations").and_then(Json::as_i64), Some(3));
        // Payload stays at the top level and field order is stable.
        let Json::Obj(pairs) = &doc else {
            unreachable!()
        };
        assert_eq!(pairs[0].0, "schema");
        assert_eq!(pairs[1].0, "kind");
    }

    #[test]
    fn envelope_obj_wraps_objects_flat_and_scalars_nested() {
        let obj = envelope_obj("stats", Json::obj(vec![("x", Json::Int(1))]));
        assert_eq!(obj.get("x").and_then(Json::as_i64), Some(1));
        let scalar = envelope_obj("stats", Json::Int(7));
        assert_eq!(scalar.get("value").and_then(Json::as_i64), Some(7));
    }

    #[test]
    fn error_envelope_shape() {
        let doc = error_envelope("over_budget", "deadline exceeded");
        assert!(is_current(&doc));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("error"));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let err = doc.get("error").expect("error object");
        assert_eq!(err.get("code").and_then(Json::as_str), Some("over_budget"));
    }
}
