//! Hierarchical span profiler: a tree of named spans with call counts,
//! total time, and self time (total minus time spent in child spans).
//!
//! The profiler is push/pop based: [`SpanProfiler::enter`] finds or
//! creates a child of the current span by name and starts its clock,
//! [`SpanProfiler::exit`] stops it and charges the elapsed time to the
//! span (and to the parent's child-time accumulator, which is what makes
//! self time cheap to derive). Aggregation is by name *per parent*: two
//! `enter("p/2")` calls under the same parent accumulate into one node,
//! so the tree stays small even over millions of calls.
//!
//! Clock reads go through [`Stopwatch`], so the whole profiler reads
//! zeros when `awam-obs` is built without the `timing` feature. The
//! owner decides *whether* to hold a profiler at all — machines keep an
//! `Option<SpanProfiler>` that is `None` unless profiling was requested,
//! which keeps the off path to a single branch.
//!
//! Serialization ([`SpanProfiler::to_json`]) is stable: children appear
//! in creation order, which is deterministic for a deterministic
//! execution (only the nanosecond values vary between runs).

use crate::json::Json;
use crate::timer::Stopwatch;

/// One node of the span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name (e.g. `"iteration 2"`, `"nrev/2"`, `"et-consult"`).
    pub name: String,
    /// Times this span was entered (or, for recorded leaves, the call
    /// count supplied by the recorder).
    pub calls: u64,
    /// Total nanoseconds spent inside this span, children included.
    pub total_ns: u64,
    /// Nanoseconds spent in child spans (so self = total − child).
    pub child_ns: u64,
    children: Vec<usize>,
}

impl SpanNode {
    /// Nanoseconds spent in this span excluding its children.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// A tree of timed spans (see the module docs).
#[derive(Clone, Debug)]
pub struct SpanProfiler {
    nodes: Vec<SpanNode>,
    /// Open spans: `(node index, start watch)`. The root (node 0) is
    /// always open.
    stack: Vec<(usize, Stopwatch)>,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    /// A fresh profiler with an open root span named `"total"`.
    pub fn new() -> SpanProfiler {
        SpanProfiler {
            nodes: vec![SpanNode {
                name: "total".to_owned(),
                calls: 1,
                total_ns: 0,
                child_ns: 0,
                children: Vec::new(),
            }],
            stack: vec![(0, Stopwatch::start())],
        }
    }

    /// Index of the currently open span.
    fn top(&self) -> usize {
        self.stack.last().expect("root span is always open").0
    }

    /// Find or create the child of `parent` named `name`. Children are
    /// scanned linearly — span trees are small by construction (names
    /// aggregate per parent).
    fn child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode {
            name: name.to_owned(),
            calls: 0,
            total_ns: 0,
            child_ns: 0,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Open a span named `name` under the current span.
    pub fn enter(&mut self, name: &str) {
        let parent = self.top();
        let idx = self.child(parent, name);
        self.nodes[idx].calls += 1;
        self.stack.push((idx, Stopwatch::start()));
    }

    /// Close the innermost open span, charging its elapsed time. The
    /// root cannot be popped.
    pub fn exit(&mut self) {
        if self.stack.len() <= 1 {
            return;
        }
        let (idx, watch) = self.stack.pop().expect("checked non-root");
        let ns = watch.elapsed_ns();
        self.nodes[idx].total_ns += ns;
        let parent = self.top();
        self.nodes[parent].child_ns += ns;
    }

    /// Record an aggregated leaf under the current span: `calls`
    /// invocations totalling `ns`, measured externally. Used for spans
    /// too hot to push/pop individually (e.g. per-call ET consults,
    /// whose latency the machine already accumulates); the time counts
    /// as child time of the current span.
    pub fn record(&mut self, name: &str, calls: u64, ns: u64) {
        let parent = self.top();
        let idx = self.child(parent, name);
        self.nodes[idx].calls += calls;
        self.nodes[idx].total_ns += ns;
        self.nodes[parent].child_ns += ns;
    }

    /// Splice an externally-measured phase in as a child of the *root*,
    /// extending the root's total accordingly. Used for work that
    /// happened outside the profiled run (e.g. compilation, timed before
    /// the machine existed); safe to call after [`Self::finish`].
    pub fn record_phase(&mut self, name: &str, ns: u64) {
        let idx = self.child(0, name);
        self.nodes[idx].calls += 1;
        self.nodes[idx].total_ns += ns;
        self.nodes[0].child_ns += ns;
        self.nodes[0].total_ns += ns;
    }

    /// Close every open span (root included: its total becomes the time
    /// since construction). Call once, when profiling ends.
    pub fn finish(&mut self) {
        while self.stack.len() > 1 {
            self.exit();
        }
        let (root, watch) = self.stack[0];
        self.nodes[root].total_ns += watch.elapsed_ns();
        self.stack[0].1 = Stopwatch::start();
    }

    /// The root node.
    pub fn root(&self) -> &SpanNode {
        &self.nodes[0]
    }

    /// Every `(depth, node)` in depth-first creation order — the shape
    /// renderers and tests consume.
    pub fn walk(&self) -> Vec<(usize, &SpanNode)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.walk_into(0, 0, &mut out);
        out
    }

    fn walk_into<'a>(&'a self, idx: usize, depth: usize, out: &mut Vec<(usize, &'a SpanNode)>) {
        out.push((depth, &self.nodes[idx]));
        for &c in &self.nodes[idx].children {
            self.walk_into(c, depth + 1, out);
        }
    }

    /// The flattened spans sorted by self time descending (ties broken
    /// by creation order), for "top N spans" listings.
    pub fn hottest(&self) -> Vec<&SpanNode> {
        let mut all: Vec<&SpanNode> = self.nodes.iter().collect();
        all.sort_by_key(|n| std::cmp::Reverse(n.self_ns()));
        all
    }

    /// Encode the tree as nested JSON objects:
    /// `{"name", "calls", "total_ns", "self_ns", "children": […]}`.
    pub fn to_json(&self) -> Json {
        self.node_json(0)
    }

    fn node_json(&self, idx: usize) -> Json {
        let n = &self.nodes[idx];
        Json::obj(vec![
            ("name", Json::Str(n.name.clone())),
            ("calls", Json::Int(n.calls as i64)),
            ("total_ns", Json::Int(n.total_ns as i64)),
            ("self_ns", Json::Int(n.self_ns() as i64)),
            (
                "children",
                Json::Arr(n.children.iter().map(|&c| self.node_json(c)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let mut p = SpanProfiler::new();
        p.enter("iteration 1");
        p.enter("nrev/2");
        p.exit();
        p.enter("nrev/2");
        p.enter("app/3");
        p.exit();
        p.exit();
        p.exit();
        p.finish();
        let walk = p.walk();
        let names: Vec<(usize, &str)> = walk.iter().map(|(d, n)| (*d, n.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (0, "total"),
                (1, "iteration 1"),
                (2, "nrev/2"),
                (3, "app/3")
            ]
        );
        // Two enters of nrev/2 under the same parent share one node.
        assert_eq!(walk[2].1.calls, 2);
    }

    #[test]
    fn recorded_leaves_count_as_child_time() {
        let mut p = SpanProfiler::new();
        p.enter("pred");
        p.record("et-consult", 7, 400);
        p.record("et-consult", 3, 100);
        p.exit();
        p.finish();
        let walk = p.walk();
        let consult = walk
            .iter()
            .find(|(_, n)| n.name == "et-consult")
            .map(|(_, n)| *n)
            .unwrap();
        assert_eq!(consult.calls, 10);
        assert_eq!(consult.total_ns, 500);
        let pred = walk
            .iter()
            .find(|(_, n)| n.name == "pred")
            .map(|(_, n)| *n)
            .unwrap();
        assert!(pred.child_ns >= 500, "recorded time charged to the parent");
    }

    #[test]
    fn json_shape_is_stable() {
        let mut p = SpanProfiler::new();
        p.enter("a");
        p.exit();
        p.enter("b");
        p.exit();
        p.finish();
        let json = p.to_json();
        assert_eq!(
            json.get("name").and_then(Json::as_str),
            Some("total"),
            "root name"
        );
        let Some(Json::Arr(children)) = json.get("children") else {
            panic!("children array");
        };
        let names: Vec<&str> = children
            .iter()
            .filter_map(|c| c.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, vec!["a", "b"], "creation order preserved");
        for c in children {
            assert!(c.get("calls").is_some());
            assert!(c.get("total_ns").is_some());
            assert!(c.get("self_ns").is_some());
        }
    }

    #[test]
    fn exit_never_pops_the_root() {
        let mut p = SpanProfiler::new();
        p.exit();
        p.exit();
        p.enter("x");
        p.finish();
        assert_eq!(p.root().name, "total");
        assert_eq!(p.walk().len(), 2);
    }
}
