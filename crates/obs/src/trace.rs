//! Event tracing shared by the abstract and concrete machines.
//!
//! A [`Tracer`] receives [`TraceEvent`]s from whichever machine it is
//! attached to. The default is no tracer at all (machines hold an
//! `Option<&mut dyn Tracer>`), so the disabled path costs a single
//! branch per hook site. Three implementations ship here:
//!
//! * [`NopTracer`] — discards everything (useful when a tracer must be
//!   passed but nothing should be kept);
//! * [`RecordingTracer`] — buffers events in memory for tests and
//!   programmatic inspection;
//! * [`JsonlTracer`] — streams one JSON object per line to any
//!   [`std::io::Write`], producing a replayable/diffable trace file.

use crate::json::Json;
use prolog_syntax::{Symbol, Term, VarId};
use std::io::Write;

/// One event in the life of an analysis or execution run.
///
/// `pred` fields carry the machine's predicate index; `name` carries the
/// human-readable `name/arity` so trace files are legible without the
/// compiled program at hand. Pattern/summary fields are pre-rendered
/// strings (the abstract domain's display form).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A fixpoint round is starting (1-based).
    RoundStart {
        /// Round number, starting at 1.
        round: u64,
    },
    /// A fixpoint round finished.
    RoundEnd {
        /// Round number, starting at 1.
        round: u64,
        /// Whether any table entry changed during the round (a `true`
        /// forces another round under the global-restart strategy).
        changed: bool,
    },
    /// A calling pattern was computed for a predicate invocation.
    CallPattern {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Rendered calling pattern.
        pattern: String,
    },
    /// The extension table was consulted for a calling pattern.
    EtConsult {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Rendered calling pattern.
        pattern: String,
        /// Whether an existing entry was found.
        hit: bool,
    },
    /// A fresh entry was inserted into the extension table.
    EtInsert {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Rendered calling pattern.
        pattern: String,
    },
    /// A table entry's success pattern was updated (lubbed).
    EtUpdate {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Whether the lub strictly grew the stored summary.
        grew: bool,
        /// Rendered success pattern after the update.
        summary: String,
    },
    /// A clause of a predicate is being explored.
    ClauseEnter {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Clause ordinal within the predicate (0-based).
        clause: usize,
    },
    /// A clause exploration was abandoned (abstract failure / undo).
    ForcedFail {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Clause ordinal within the predicate (0-based).
        clause: usize,
    },
    /// A concrete machine entered a predicate with reified arguments.
    Call {
        /// Predicate index.
        pred: usize,
        /// Predicate `name/arity`.
        name: String,
        /// Reified argument terms at entry.
        args: Vec<Term>,
    },
}

impl TraceEvent {
    /// The event's kind tag as used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::CallPattern { .. } => "call_pattern",
            TraceEvent::EtConsult { .. } => "et_consult",
            TraceEvent::EtInsert { .. } => "et_insert",
            TraceEvent::EtUpdate { .. } => "et_update",
            TraceEvent::ClauseEnter { .. } => "clause_enter",
            TraceEvent::ForcedFail { .. } => "forced_fail",
            TraceEvent::Call { .. } => "call",
        }
    }

    /// Encode as a JSON object (one JSONL line, minus the newline).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("event", Json::Str(self.kind().into()))];
        match self {
            TraceEvent::RoundStart { round } => {
                pairs.push(("round", Json::Int(*round as i64)));
            }
            TraceEvent::RoundEnd { round, changed } => {
                pairs.push(("round", Json::Int(*round as i64)));
                pairs.push(("changed", Json::Bool(*changed)));
            }
            TraceEvent::CallPattern {
                pred,
                name,
                pattern,
            } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("pattern", Json::Str(pattern.clone())));
            }
            TraceEvent::EtConsult {
                pred,
                name,
                pattern,
                hit,
            } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("pattern", Json::Str(pattern.clone())));
                pairs.push(("hit", Json::Bool(*hit)));
            }
            TraceEvent::EtInsert {
                pred,
                name,
                pattern,
            } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("pattern", Json::Str(pattern.clone())));
            }
            TraceEvent::EtUpdate {
                pred,
                name,
                grew,
                summary,
            } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("grew", Json::Bool(*grew)));
                pairs.push(("summary", Json::Str(summary.clone())));
            }
            TraceEvent::ClauseEnter { pred, name, clause } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("clause", Json::Int(*clause as i64)));
            }
            TraceEvent::ForcedFail { pred, name, clause } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("clause", Json::Int(*clause as i64)));
            }
            TraceEvent::Call { pred, name, args } => {
                pairs.push(("pred", Json::Int(*pred as i64)));
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("args", Json::Arr(args.iter().map(term_to_json).collect())));
            }
        }
        Json::obj(pairs)
    }

    /// Decode from the JSON encoding produced by [`TraceEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<TraceEvent, String> {
        let kind = json
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing \"event\" tag")?;
        let round = || {
            json.get("round")
                .and_then(Json::as_u64)
                .ok_or("missing \"round\"")
        };
        let pred = || {
            json.get("pred")
                .and_then(Json::as_u64)
                .map(|p| p as usize)
                .ok_or("missing \"pred\"")
        };
        let name = || {
            json.get("name")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or("missing \"name\"")
        };
        let text = |key: &'static str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("missing \"{key}\""))
        };
        let flag = |key: &'static str| {
            json.get(key)
                .and_then(Json::as_bool)
                .ok_or(format!("missing \"{key}\""))
        };
        let clause = || {
            json.get("clause")
                .and_then(Json::as_u64)
                .map(|c| c as usize)
                .ok_or("missing \"clause\"")
        };
        Ok(match kind {
            "round_start" => TraceEvent::RoundStart { round: round()? },
            "round_end" => TraceEvent::RoundEnd {
                round: round()?,
                changed: flag("changed")?,
            },
            "call_pattern" => TraceEvent::CallPattern {
                pred: pred()?,
                name: name()?,
                pattern: text("pattern")?,
            },
            "et_consult" => TraceEvent::EtConsult {
                pred: pred()?,
                name: name()?,
                pattern: text("pattern")?,
                hit: flag("hit")?,
            },
            "et_insert" => TraceEvent::EtInsert {
                pred: pred()?,
                name: name()?,
                pattern: text("pattern")?,
            },
            "et_update" => TraceEvent::EtUpdate {
                pred: pred()?,
                name: name()?,
                grew: flag("grew")?,
                summary: text("summary")?,
            },
            "clause_enter" => TraceEvent::ClauseEnter {
                pred: pred()?,
                name: name()?,
                clause: clause()?,
            },
            "forced_fail" => TraceEvent::ForcedFail {
                pred: pred()?,
                name: name()?,
                clause: clause()?,
            },
            "call" => TraceEvent::Call {
                pred: pred()?,
                name: name()?,
                args: json
                    .get("args")
                    .and_then(Json::as_arr)
                    .ok_or("missing \"args\"")?
                    .iter()
                    .map(term_from_json)
                    .collect::<Result<Vec<Term>, String>>()?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

/// Encode a term as a tagged JSON array: `["var", id]`, `["int", n]`,
/// `["atom", sym]`, `["struct", sym, [args…]]`. Symbols are encoded by
/// their raw interner index; decoding is only meaningful against the
/// same interner (which is fine for replay/diff of a single run).
pub fn term_to_json(term: &Term) -> Json {
    match term {
        Term::Var(v) => Json::Arr(vec![Json::Str("var".into()), Json::Int(v.index() as i64)]),
        Term::Int(n) => Json::Arr(vec![Json::Str("int".into()), Json::Int(*n)]),
        Term::Atom(s) => Json::Arr(vec![Json::Str("atom".into()), Json::Int(s.index() as i64)]),
        Term::Struct(f, args) => Json::Arr(vec![
            Json::Str("struct".into()),
            Json::Int(f.index() as i64),
            Json::Arr(args.iter().map(term_to_json).collect()),
        ]),
    }
}

/// Decode a term from the encoding of [`term_to_json`].
///
/// # Errors
///
/// Returns a description of the malformed node.
pub fn term_from_json(json: &Json) -> Result<Term, String> {
    let items = json.as_arr().ok_or("term must be a JSON array")?;
    let tag = items
        .first()
        .and_then(Json::as_str)
        .ok_or("term array must start with a tag")?;
    let int_at = |i: usize| {
        items
            .get(i)
            .and_then(Json::as_i64)
            .ok_or(format!("term {tag:?} missing integer at slot {i}"))
    };
    match tag {
        "var" => Ok(Term::Var(VarId(int_at(1)? as u32))),
        "int" => Ok(Term::Int(int_at(1)?)),
        "atom" => Ok(Term::Atom(Symbol::from_index(int_at(1)? as usize))),
        "struct" => {
            let functor = Symbol::from_index(int_at(1)? as usize);
            let args = items
                .get(2)
                .and_then(Json::as_arr)
                .ok_or("struct term missing argument array")?
                .iter()
                .map(term_from_json)
                .collect::<Result<Vec<Term>, String>>()?;
            Ok(Term::Struct(functor, args))
        }
        other => Err(format!("unknown term tag {other:?}")),
    }
}

/// A sink for [`TraceEvent`]s.
///
/// Machines hold an `Option<&mut dyn Tracer>`; `None` (the default)
/// keeps the hooks down to one branch each.
pub trait Tracer {
    /// Receive one event.
    fn event(&mut self, event: &TraceEvent);
}

/// A tracer that discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopTracer;

impl Tracer for NopTracer {
    fn event(&mut self, _event: &TraceEvent) {}
}

/// A tracer that buffers events in memory.
///
/// # Examples
///
/// ```
/// use awam_obs::{RecordingTracer, TraceEvent, Tracer};
/// let mut t = RecordingTracer::default();
/// t.event(&TraceEvent::RoundStart { round: 1 });
/// assert_eq!(t.events.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RecordingTracer {
    /// The recorded events, in arrival order.
    pub events: Vec<TraceEvent>,
}

impl RecordingTracer {
    /// The recorded concrete calls as `(predicate index, argument terms)`
    /// pairs — the shape the old `Machine::call_trace` field exposed.
    pub fn calls(&self) -> Vec<(usize, Vec<Term>)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Call { pred, args, .. } => Some((*pred, args.clone())),
                _ => None,
            })
            .collect()
    }

    /// Number of recorded fixpoint rounds (counting `RoundStart`s).
    pub fn rounds(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
            .count() as u64
    }
}

impl Tracer for RecordingTracer {
    fn event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A tracer that writes one JSON object per line (JSONL).
///
/// Events that fail to write are counted in [`JsonlTracer::io_errors`]
/// rather than panicking mid-analysis.
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    writer: W,
    /// Number of events dropped due to I/O errors.
    pub io_errors: u64,
}

impl<W: Write> JsonlTracer<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlTracer {
            writer,
            io_errors: 0,
        }
    }

    /// Flush and recover the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure, returning the writer regardless.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Tracer for JsonlTracer<W> {
    fn event(&mut self, event: &TraceEvent) {
        let line = event.to_json().emit();
        if writeln!(self.writer, "{line}").is_err() {
            self.io_errors += 1;
        }
    }
}

/// Parse a JSONL trace back into events.
///
/// # Errors
///
/// Reports the first malformed line with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            let json = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            TraceEvent::from_json(&json).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundStart { round: 1 },
            TraceEvent::CallPattern {
                pred: 0,
                name: "nrev/2".into(),
                pattern: "(g, f)".into(),
            },
            TraceEvent::EtConsult {
                pred: 0,
                name: "nrev/2".into(),
                pattern: "(g, f)".into(),
                hit: false,
            },
            TraceEvent::EtInsert {
                pred: 0,
                name: "nrev/2".into(),
                pattern: "(g, f)".into(),
            },
            TraceEvent::ClauseEnter {
                pred: 0,
                name: "nrev/2".into(),
                clause: 1,
            },
            TraceEvent::ForcedFail {
                pred: 0,
                name: "nrev/2".into(),
                clause: 1,
            },
            TraceEvent::EtUpdate {
                pred: 0,
                name: "nrev/2".into(),
                grew: true,
                summary: "(g, g)".into(),
            },
            TraceEvent::RoundEnd {
                round: 1,
                changed: true,
            },
            TraceEvent::Call {
                pred: 3,
                name: "app/3".into(),
                args: vec![
                    Term::Var(VarId(0)),
                    Term::Int(-7),
                    Term::Struct(
                        Symbol::from_index(1),
                        vec![Term::Atom(Symbol::from_index(0)), Term::Var(VarId(2))],
                    ),
                ],
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for event in sample_events() {
            let json = event.to_json();
            let back = TraceEvent::from_json(&json).expect("decode");
            assert_eq!(back, event);
        }
    }

    #[test]
    fn jsonl_writer_round_trips() {
        let events = sample_events();
        let mut tracer = JsonlTracer::new(Vec::new());
        for event in &events {
            tracer.event(event);
        }
        assert_eq!(tracer.io_errors, 0);
        let bytes = tracer.into_inner().expect("flush");
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), events.len());
        let back = parse_jsonl(&text).expect("parse");
        assert_eq!(back, events);
    }

    #[test]
    fn recording_tracer_extracts_calls_and_rounds() {
        let mut tracer = RecordingTracer::default();
        for event in sample_events() {
            tracer.event(&event);
        }
        assert_eq!(tracer.rounds(), 1);
        let calls = tracer.calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].0, 3);
        assert_eq!(calls[0].1.len(), 3);
    }

    #[test]
    fn bad_lines_are_reported_with_position() {
        let err = parse_jsonl("{\"event\":\"round_start\",\"round\":1}\nnot json\n")
            .expect_err("should fail");
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
