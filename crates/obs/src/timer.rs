//! Wall-clock phase timers.
//!
//! All clock reads live behind the crate's `timing` feature (on by
//! default). With `--no-default-features` every stopwatch reads zero and
//! no `Instant` is ever taken, making the timing layer truly zero-cost
//! where even a `clock_gettime` call is too much.

use crate::json::Json;
#[cfg(feature = "timing")]
use std::time::Instant;

/// The pipeline phases we time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Reading Prolog source into a [`prolog_syntax::Program`].
    Parse,
    /// WAM compilation (concrete and/or abstract code generation).
    Compile,
    /// Running the abstract machine to fixpoint.
    Analyze,
    /// Running a concrete query on the substrate machine.
    Execute,
    /// Rendering results.
    Report,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Parse,
        Phase::Compile,
        Phase::Analyze,
        Phase::Execute,
        Phase::Report,
    ];

    /// Lower-case phase name as used in JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Compile => "compile",
            Phase::Analyze => "analyze",
            Phase::Execute => "execute",
            Phase::Report => "report",
        }
    }
}

/// A one-shot stopwatch.
///
/// With the `timing` feature disabled this is a zero-sized type and
/// [`Stopwatch::elapsed_ns`] always returns 0.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(feature = "timing")]
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "timing")]
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`] (0 without the `timing`
    /// feature).
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "timing")]
        {
            self.start.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "timing"))]
        {
            0
        }
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Accumulated wall time per [`Phase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimers {
    nanos: [u64; Phase::ALL.len()],
}

impl PhaseTimers {
    /// Fresh timers, all zero.
    pub fn new() -> Self {
        PhaseTimers::default()
    }

    /// Add `ns` to `phase`.
    pub fn record(&mut self, phase: Phase, ns: u64) {
        self.nanos[phase as usize] += ns;
    }

    /// Time a closure and charge it to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let watch = Stopwatch::start();
        let result = f();
        self.record(phase, watch.elapsed_ns());
        result
    }

    /// Accumulated nanoseconds for `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Total across all phases.
    pub fn total_ns(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Encode as a JSON object `{"parse_ns": …, "compile_ns": …, …}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            Phase::ALL
                .iter()
                .map(|&p| (format!("{}_ns", p.name()), Json::Int(self.nanos(p) as i64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_accumulate_per_phase() {
        let mut timers = PhaseTimers::new();
        timers.record(Phase::Parse, 5);
        timers.record(Phase::Parse, 7);
        timers.record(Phase::Analyze, 100);
        assert_eq!(timers.nanos(Phase::Parse), 12);
        assert_eq!(timers.nanos(Phase::Compile), 0);
        assert_eq!(timers.total_ns(), 112);
        let json = timers.to_json();
        assert_eq!(json.get("parse_ns").and_then(Json::as_u64), Some(12));
        assert_eq!(json.get("analyze_ns").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn time_charges_the_closure() {
        let mut timers = PhaseTimers::new();
        let value = timers.time(Phase::Report, || 41 + 1);
        assert_eq!(value, 42);
        // With the timing feature on, some nonzero time elapsed; without
        // it, exactly zero. Either way the call returns the closure value
        // and doesn't panic.
    }

    #[cfg(feature = "timing")]
    #[test]
    fn stopwatch_moves_forward() {
        let watch = Stopwatch::start();
        let mut spin = 0u64;
        for i in 0..10_000u64 {
            spin = spin.wrapping_add(i);
        }
        assert!(spin > 0);
        let _ = watch.elapsed_ns();
    }
}
