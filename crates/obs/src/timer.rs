//! Wall-clock phase timers.
//!
//! All clock reads live behind the crate's `timing` feature (on by
//! default). With `--no-default-features` every stopwatch reads zero and
//! no clock is ever read, making the timing layer truly zero-cost where
//! even a `clock_gettime` call is too much.
//!
//! On x86_64 the stopwatch reads the timestamp counter directly
//! (`rdtsc`, a few nanoseconds) instead of `Instant::now` (a
//! `clock_gettime` call, ~25 ns), and converts ticks to nanoseconds with
//! a scale calibrated once per process against the monotonic clock. The
//! profiling hot paths take clock readings per abstract call, so the
//! cheaper read is what keeps `--stats` overhead low. Other
//! architectures fall back to `Instant`.

use crate::json::Json;
#[cfg(all(feature = "timing", not(target_arch = "x86_64")))]
use std::time::Instant;

/// TSC-backed clock: raw tick reads plus a once-per-process calibration
/// of the tick→nanosecond scale.
#[cfg(all(feature = "timing", target_arch = "x86_64"))]
mod tsc {
    use std::sync::OnceLock;

    /// Nanoseconds per 2²⁰ ticks (fixed-point, calibrated once).
    static NS_PER_MIB_TICKS: OnceLock<u64> = OnceLock::new();

    /// Read the timestamp counter.
    #[inline(always)]
    pub fn ticks() -> u64 {
        // SAFETY: `rdtsc` is unprivileged and universally available on
        // x86_64. It is not serializing, which is fine for profiling.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// Make sure the scale is calibrated (idempotent). Called from
    /// [`super::Stopwatch::start`] so the one-time ~200 µs spin lands
    /// *before* a measured region, not inside one.
    #[inline]
    pub fn ensure_calibrated() {
        NS_PER_MIB_TICKS.get_or_init(calibrate);
    }

    /// Convert a tick delta to nanoseconds.
    #[inline]
    pub fn ticks_to_ns(dt: u64) -> u64 {
        let scale = *NS_PER_MIB_TICKS.get_or_init(calibrate);
        ((u128::from(dt) * u128::from(scale)) >> 20) as u64
    }

    /// Measure the TSC frequency against the monotonic clock over a
    /// short spin. A 200 µs window bounds the relative error around the
    /// monotonic clock's resolution — far below what profiling needs.
    fn calibrate() -> u64 {
        let t0 = std::time::Instant::now();
        let c0 = ticks();
        while t0.elapsed().as_micros() < 200 {
            std::hint::spin_loop();
        }
        let dt = ticks().wrapping_sub(c0).max(1);
        let ns = t0.elapsed().as_nanos() as u64;
        ((u128::from(ns) << 20) / u128::from(dt)).max(1) as u64
    }
}

/// The pipeline phases we time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Reading Prolog source into a [`prolog_syntax::Program`].
    Parse,
    /// WAM compilation (concrete and/or abstract code generation).
    Compile,
    /// Running the abstract machine to fixpoint.
    Analyze,
    /// Running a concrete query on the substrate machine.
    Execute,
    /// Rendering results.
    Report,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Parse,
        Phase::Compile,
        Phase::Analyze,
        Phase::Execute,
        Phase::Report,
    ];

    /// Lower-case phase name as used in JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Compile => "compile",
            Phase::Analyze => "analyze",
            Phase::Execute => "execute",
            Phase::Report => "report",
        }
    }
}

/// A one-shot stopwatch.
///
/// With the `timing` feature disabled this is a zero-sized type and
/// [`Stopwatch::elapsed_ns`] always returns 0. On x86_64 it reads the
/// timestamp counter (see the module docs); elsewhere it wraps
/// [`std::time::Instant`].
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(all(feature = "timing", target_arch = "x86_64"))]
    start: u64,
    #[cfg(all(feature = "timing", not(target_arch = "x86_64")))]
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        #[cfg(all(feature = "timing", target_arch = "x86_64"))]
        {
            tsc::ensure_calibrated();
            Stopwatch {
                start: tsc::ticks(),
            }
        }
        #[cfg(all(feature = "timing", not(target_arch = "x86_64")))]
        {
            Stopwatch {
                start: Instant::now(),
            }
        }
        #[cfg(not(feature = "timing"))]
        {
            Stopwatch {}
        }
    }

    /// Nanoseconds since [`Stopwatch::start`] (0 without the `timing`
    /// feature).
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(all(feature = "timing", target_arch = "x86_64"))]
        {
            tsc::ticks_to_ns(tsc::ticks().wrapping_sub(self.start))
        }
        #[cfg(all(feature = "timing", not(target_arch = "x86_64")))]
        {
            self.start.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "timing"))]
        {
            0
        }
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Accumulated wall time per [`Phase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimers {
    nanos: [u64; Phase::ALL.len()],
}

impl PhaseTimers {
    /// Fresh timers, all zero.
    pub fn new() -> Self {
        PhaseTimers::default()
    }

    /// Add `ns` to `phase`.
    pub fn record(&mut self, phase: Phase, ns: u64) {
        self.nanos[phase as usize] += ns;
    }

    /// Time a closure and charge it to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let watch = Stopwatch::start();
        let result = f();
        self.record(phase, watch.elapsed_ns());
        result
    }

    /// Accumulated nanoseconds for `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Total across all phases.
    pub fn total_ns(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Encode as a JSON object `{"parse_ns": …, "compile_ns": …, …}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            Phase::ALL
                .iter()
                .map(|&p| (format!("{}_ns", p.name()), Json::Int(self.nanos(p) as i64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_accumulate_per_phase() {
        let mut timers = PhaseTimers::new();
        timers.record(Phase::Parse, 5);
        timers.record(Phase::Parse, 7);
        timers.record(Phase::Analyze, 100);
        assert_eq!(timers.nanos(Phase::Parse), 12);
        assert_eq!(timers.nanos(Phase::Compile), 0);
        assert_eq!(timers.total_ns(), 112);
        let json = timers.to_json();
        assert_eq!(json.get("parse_ns").and_then(Json::as_u64), Some(12));
        assert_eq!(json.get("analyze_ns").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn time_charges_the_closure() {
        let mut timers = PhaseTimers::new();
        let value = timers.time(Phase::Report, || 41 + 1);
        assert_eq!(value, 42);
        // With the timing feature on, some nonzero time elapsed; without
        // it, exactly zero. Either way the call returns the closure value
        // and doesn't panic.
    }

    #[cfg(feature = "timing")]
    #[test]
    fn stopwatch_moves_forward() {
        let watch = Stopwatch::start();
        let mut spin = 0u64;
        for i in 0..10_000u64 {
            spin = spin.wrapping_add(i);
        }
        assert!(spin > 0);
        let _ = watch.elapsed_ns();
    }
}
