//! The daemon itself: a TCP accept loop, one thread per connection,
//! and the request dispatcher that ties the protocol to the caches.
//!
//! Life of an `analyze` request:
//!
//! 1. **Load-shed gate** — if `max_inflight` analyses are already
//!    running, the request is rejected immediately with an
//!    `overloaded` error envelope (the 429 of this protocol). Cheap
//!    ops (`register`, `stats`) are never shed.
//! 2. **Program resolution** — a 16-hex fingerprint hits the
//!    [`ProgramCache`]; inline source is fingerprinted and compiled at
//!    most once, then shared via `Arc` with every thread.
//! 3. **Session checkout** — with `reuse: true` (the default) a warm
//!    [`awam_core::Session`] is rehydrated from the tenant's pool, so
//!    repeat goals are answered straight from the memo table. With
//!    `reuse: false` (and for every `batch` goal) the run uses a fresh
//!    session and is byte-identical to a standalone
//!    [`Analyzer::analyze`].
//! 4. **Deadline** — the effective abstract-instruction budget
//!    (request override, else server default, capped by the server
//!    maximum) is armed on the session; a run that crosses it comes
//!    back as an `over_budget` error envelope and counts toward
//!    `shed_budget`.

use crate::cache::{ProgramCache, SessionPool};
use crate::protocol::{self, parse_request, Envelope, GoalSpec, ProgramRef, Request};
use awam_core::{par_map, Analysis, AnalysisError, Analyzer, Session};
use awam_obs::{envelope, Histogram, Json, ServeStats};
use prolog_syntax::parse_program;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of the daemon; `ServeConfig::default()` is sized for a
/// laptop-local daemon and every field can be overridden from the CLI.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Approximate byte budget of the compiled-program cache.
    pub cache_bytes: usize,
    /// Analyze/batch requests allowed to run concurrently before the
    /// daemon sheds load with `overloaded` responses.
    pub max_inflight: usize,
    /// Abstract-instruction budget applied when a request names none
    /// (`None` = unbounded).
    pub default_budget: Option<u64>,
    /// Hard cap on any request's budget; also applies when neither the
    /// request nor `default_budget` set one (`None` = no cap).
    pub max_budget: Option<u64>,
    /// Warm sessions parked per `(tenant, program)` key.
    pub pool_per_key: usize,
    /// Worker threads a single `batch` request fans its goals across.
    pub batch_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_bytes: 64 << 20,
            max_inflight: 64,
            default_budget: None,
            max_budget: None,
            pool_per_key: 4,
            batch_workers: 4,
        }
    }
}

/// Shared daemon state: the caches, the counters, and the flags the
/// accept loop watches.
struct ServerState {
    config: ServeConfig,
    cache: ProgramCache,
    pools: SessionPool,
    stats: Mutex<ServeStats>,
    /// Client-visible latency of analyze/batch requests, microseconds.
    latency_us: Mutex<Histogram>,
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    started: Instant,
}

/// A bound (but not yet running) daemon. Binding and running are split
/// so callers can learn the ephemeral port before the first request.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A running daemon spawned onto a background thread; dropping the
/// handle does *not* stop the daemon — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: JoinHandle<io::Result<()>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            cache: ProgramCache::new(config.cache_bytes),
            pools: SessionPool::new(config.pool_per_key),
            stats: Mutex::new(ServeStats::default()),
            latency_us: Mutex::new(Histogram::new()),
            inflight: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Run the accept loop on the calling thread until a `shutdown`
    /// request arrives. Each connection gets its own handler thread;
    /// handlers outlive the accept loop only until their client hangs
    /// up.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors only
    /// end that connection).
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }

    /// Run the accept loop on a background thread, returning a handle
    /// that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let accept_thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            state,
            accept_thread,
        }
    }
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and wait for it to exit. Idempotent; safe
    /// to call after a client already sent `shutdown`.
    pub fn shutdown(self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag when `accept` returns,
        // so poke it with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        drop(self.accept_thread.join());
    }
}

/// Decrements the in-flight gauge when an analysis scope ends, however
/// it ends.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    // One-line responses must not sit in Nagle's buffer waiting for an
    // ACK of the request they answer.
    drop(stream.set_nodelay(true));
    let peer_writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(peer_writer);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        state.stats.lock().expect("stats lock").requests += 1;
        let (response, stop) = match parse_request(&line) {
            Ok(env) => dispatch(state, env),
            Err(bad) => (protocol::error_response("bad_request", &bad.0, None), false),
        };
        note_response(state, &response);
        let mut text = response.emit();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            // Unblock the accept loop so it observes the flag.
            drop(TcpStream::connect(state.addr));
            return;
        }
    }
}

fn note_response(state: &ServerState, response: &Json) {
    let mut stats = state.stats.lock().expect("stats lock");
    if response.get("kind").and_then(Json::as_str) == Some("error") {
        stats.responses_error += 1;
        if let Some(code) = response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
        {
            match code {
                "overloaded" => stats.shed_overload += 1,
                "over_budget" => stats.shed_budget += 1,
                _ => {}
            }
        }
    } else {
        stats.responses_ok += 1;
    }
}

/// Handle one parsed request; the bool asks the connection loop to stop
/// after writing the response (shutdown).
fn dispatch(state: &ServerState, env: Envelope) -> (Json, bool) {
    let id = env.id;
    match env.request {
        Request::Register { source, .. } => (do_register(state, &source, id), false),
        Request::Analyze {
            tenant,
            program,
            goal,
            budget,
            reuse,
        } => (
            timed_analysis(state, id, |s| {
                do_analyze(s, &tenant, &program, &goal, budget, reuse, id)
            }),
            false,
        ),
        Request::Batch {
            tenant,
            program,
            goals,
            budget,
        } => (
            timed_analysis(state, id, |s| {
                do_batch(s, &tenant, &program, &goals, budget, id)
            }),
            false,
        ),
        Request::Stats => (do_stats(state, id), false),
        Request::Shutdown => {
            state.shutting_down.store(true, Ordering::SeqCst);
            (
                protocol::attach_id(envelope("shutdown", vec![("ok", Json::Bool(true))]), id),
                true,
            )
        }
    }
}

/// Wrap an analyze/batch handler in the load-shed gate and the latency
/// histogram.
fn timed_analysis(
    state: &ServerState,
    id: Option<i64>,
    f: impl FnOnce(&ServerState) -> Json,
) -> Json {
    if state.inflight.fetch_add(1, Ordering::SeqCst) >= state.config.max_inflight {
        state.inflight.fetch_sub(1, Ordering::SeqCst);
        return protocol::error_response(
            "overloaded",
            &format!(
                "in-flight analysis limit ({}) reached; retry later",
                state.config.max_inflight
            ),
            id,
        );
    }
    let _guard = InflightGuard(&state.inflight);
    let start = Instant::now();
    let response = f(state);
    let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    state
        .latency_us
        .lock()
        .expect("latency lock")
        .record(elapsed_us);
    response
}

fn do_register(state: &ServerState, source: &str, id: Option<i64>) -> Json {
    let hash = awam_core::program_fingerprint(source);
    let cached = state.cache.get(hash).is_some();
    if !cached {
        match compile_and_insert(state, hash, source) {
            Ok(()) => {}
            Err(response) => return protocol::attach_id(response, id),
        }
    }
    protocol::attach_id(
        envelope(
            "register",
            vec![
                ("ok", Json::Bool(true)),
                ("program", Json::Str(protocol::hash_hex(hash))),
                ("cached", Json::Bool(cached)),
            ],
        ),
        id,
    )
}

/// Compile `source` and insert it into the program cache, purging the
/// session pools of anything evicted to make room.
fn compile_and_insert(state: &ServerState, hash: u64, source: &str) -> Result<(), Json> {
    let program = parse_program(source)
        .map_err(|e| awam_obs::error_envelope("parse_error", &e.to_string()))?;
    let analyzer = Analyzer::compile(&program)
        .map_err(|e| awam_obs::error_envelope("compile_error", &e.to_string()))?;
    for evicted in state.cache.insert(hash, Arc::new(analyzer), source.len()) {
        state.pools.purge_program(evicted);
    }
    Ok(())
}

/// Resolve a program reference to its compiled analyzer, compiling
/// inline source on first sight.
fn resolve_program(
    state: &ServerState,
    program: &ProgramRef,
) -> Result<(u64, Arc<Analyzer>), Json> {
    match program {
        ProgramRef::Hash(hash) => state.cache.get(*hash).map(|a| (*hash, a)).ok_or_else(|| {
            awam_obs::error_envelope(
                "unknown_program",
                &format!(
                    "program {} is not registered (or was evicted); re-register it",
                    protocol::hash_hex(*hash)
                ),
            )
        }),
        ProgramRef::Source(source) => {
            let hash = awam_core::program_fingerprint(source);
            if let Some(analyzer) = state.cache.get(hash) {
                return Ok((hash, analyzer));
            }
            compile_and_insert(state, hash, source)?;
            let analyzer = state
                .cache
                .peek(hash)
                .ok_or_else(|| awam_obs::error_envelope("internal", "program vanished"))?;
            Ok((hash, analyzer))
        }
    }
}

fn effective_budget(requested: Option<u64>, config: &ServeConfig) -> Option<u64> {
    let base = requested.or(config.default_budget);
    match (base, config.max_budget) {
        (Some(b), Some(cap)) => Some(b.min(cap)),
        (None, cap) => cap,
        (b, None) => b,
    }
}

fn analysis_error_response(err: &AnalysisError, id: Option<i64>) -> Json {
    let code = match err {
        AnalysisError::BudgetExceeded { .. } => "over_budget",
        _ => "analysis_error",
    };
    protocol::error_response(code, &err.to_string(), id)
}

/// One goal's slice of an analyze/batch response payload.
fn goal_payload(
    goal: &GoalSpec,
    analysis: &Analysis,
    analyzer: &Analyzer,
) -> Vec<(&'static str, Json)> {
    vec![
        ("goal", Json::Str(goal.goal.clone())),
        (
            "entry",
            Json::Arr(goal.entry.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("iterations", Json::Int(analysis.iterations as i64)),
        (
            "instructions_executed",
            Json::Int(analysis.instructions_executed as i64),
        ),
        ("report", Json::Str(analysis.report(analyzer))),
    ]
}

fn do_analyze(
    state: &ServerState,
    tenant: &str,
    program: &ProgramRef,
    goal: &GoalSpec,
    budget: Option<u64>,
    reuse: bool,
    id: Option<i64>,
) -> Json {
    let (hash, analyzer) = match resolve_program(state, program) {
        Ok(found) => found,
        Err(response) => return protocol::attach_id(response, id),
    };
    let parked = if reuse {
        state.pools.checkout(tenant, hash)
    } else {
        None
    };
    let warmed = parked.is_some();
    let mut session = match parked {
        Some(parts) => Session::resume(&analyzer, parts),
        None => Session::new(&analyzer),
    };
    session.set_step_budget(effective_budget(budget, &state.config));
    let specs: Vec<&str> = goal.entry.iter().map(String::as_str).collect();
    match session.analyze_query(&goal.goal, &specs) {
        Ok(analysis) => {
            let warm_hit = warmed && analysis.iterations == 0;
            if warm_hit {
                state.stats.lock().expect("stats lock").warm_hits += 1;
            }
            if reuse {
                state.pools.checkin(tenant, hash, session.into_parts());
            }
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("program", Json::Str(protocol::hash_hex(hash))),
                ("reused", Json::Bool(warmed)),
                ("warm", Json::Bool(warm_hit)),
            ];
            pairs.extend(goal_payload(goal, &analysis, &analyzer));
            protocol::attach_id(envelope("analyze", pairs), id)
        }
        // The session is dropped, not checked back in: after a
        // resource-bound error its table is no longer trustworthy.
        Err(err) => analysis_error_response(&err, id),
    }
}

fn do_batch(
    state: &ServerState,
    _tenant: &str,
    program: &ProgramRef,
    goals: &[GoalSpec],
    budget: Option<u64>,
    id: Option<i64>,
) -> Json {
    let (hash, analyzer) = match resolve_program(state, program) {
        Ok(found) => found,
        Err(response) => return protocol::attach_id(response, id),
    };
    let effective = effective_budget(budget, &state.config);
    // Every batch goal runs in its own fresh session (single-shot
    // identical results), fanned across the configured workers.
    let results = par_map(goals, state.config.batch_workers, |_, goal| {
        let mut session = Session::new(&analyzer);
        session.set_step_budget(effective);
        let specs: Vec<&str> = goal.entry.iter().map(String::as_str).collect();
        session.analyze_query(&goal.goal, &specs)
    });
    let mut over_budget = false;
    let rendered: Vec<Json> = goals
        .iter()
        .zip(&results)
        .map(|(goal, result)| match result {
            Ok(analysis) => {
                let mut pairs = vec![("ok", Json::Bool(true))];
                pairs.extend(goal_payload(goal, analysis, &analyzer));
                Json::obj(pairs)
            }
            Err(err) => {
                if matches!(err, AnalysisError::BudgetExceeded { .. }) {
                    over_budget = true;
                }
                let code = match err {
                    AnalysisError::BudgetExceeded { .. } => "over_budget",
                    _ => "analysis_error",
                };
                Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("goal", Json::Str(goal.goal.clone())),
                    (
                        "error",
                        Json::obj(vec![
                            ("code", Json::Str(code.to_owned())),
                            ("message", Json::Str(err.to_string())),
                        ]),
                    ),
                ])
            }
        })
        .collect();
    if over_budget {
        state.stats.lock().expect("stats lock").shed_budget += 1;
    }
    let ok = rendered
        .iter()
        .all(|r| r.get("ok").and_then(Json::as_bool) == Some(true));
    protocol::attach_id(
        envelope(
            "batch",
            vec![
                ("ok", Json::Bool(ok)),
                ("program", Json::Str(protocol::hash_hex(hash))),
                ("results", Json::Arr(rendered)),
            ],
        ),
        id,
    )
}

fn do_stats(state: &ServerState, id: Option<i64>) -> Json {
    let (programs, cache_bytes, cache_budget, cache) = state.cache.snapshot();
    let (parked, pool) = state.pools.snapshot();
    let mut stats = *state.stats.lock().expect("stats lock");
    stats.program_cache_hits = cache.hits;
    stats.program_cache_misses = cache.misses;
    stats.program_cache_evictions = cache.evictions;
    stats.session_pool_hits = pool.hits;
    stats.session_pool_misses = pool.misses;
    let latency = state.latency_us.lock().expect("latency lock");
    let latency_json = Json::obj(vec![
        ("count", Json::Int(latency.count as i64)),
        ("p50_us", Json::Int(latency.quantile(0.50) as i64)),
        ("p90_us", Json::Int(latency.quantile(0.90) as i64)),
        ("p99_us", Json::Int(latency.quantile(0.99) as i64)),
        (
            "max_us",
            Json::Int(if latency.count == 0 {
                0
            } else {
                latency.max as i64
            }),
        ),
    ]);
    drop(latency);
    let Json::Obj(mut counters) = stats.to_json() else {
        unreachable!("ServeStats::to_json returns an object");
    };
    counters.push((
        "cache_hit_rate".to_owned(),
        Json::Float(stats.cache_hit_rate()),
    ));
    counters.push((
        "pool_hit_rate".to_owned(),
        Json::Float(stats.pool_hit_rate()),
    ));
    protocol::attach_id(
        envelope(
            "stats",
            vec![
                ("ok", Json::Bool(true)),
                (
                    "uptime_ms",
                    Json::Int(
                        i64::try_from(state.started.elapsed().as_millis()).unwrap_or(i64::MAX),
                    ),
                ),
                ("counters", Json::Obj(counters)),
                (
                    "program_cache",
                    Json::obj(vec![
                        ("programs", Json::Int(programs as i64)),
                        ("bytes", Json::Int(cache_bytes as i64)),
                        ("byte_budget", Json::Int(cache_budget as i64)),
                    ]),
                ),
                (
                    "session_pools",
                    Json::obj(vec![("parked", Json::Int(parked as i64))]),
                ),
                ("latency", latency_json),
                (
                    "inflight",
                    Json::Int(state.inflight.load(Ordering::SeqCst) as i64),
                ),
            ],
        ),
        id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const APP: &str = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

    fn spawn_default() -> ServerHandle {
        Server::bind("127.0.0.1:0", ServeConfig::default())
            .expect("bind ephemeral port")
            .spawn()
    }

    #[test]
    fn register_analyze_stats_roundtrip() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        let reg = client.register("t1", APP).expect("register");
        assert_eq!(reg.get("kind").and_then(Json::as_str), Some("register"));
        assert_eq!(reg.get("schema").and_then(Json::as_str), Some("awam/v1"));
        let hash = reg
            .get("program")
            .and_then(Json::as_str)
            .expect("hash")
            .to_owned();

        let line = format!(
            r#"{{"op":"analyze","tenant":"t1","program":"{hash}","goal":"app","entry":["glist","glist","var"],"id":3}}"#
        );
        let first = client.call_line(&line).expect("analyze");
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(first.get("id").and_then(Json::as_i64), Some(3));
        assert_eq!(first.get("warm").and_then(Json::as_bool), Some(false));
        let second = client.call_line(&line).expect("analyze again");
        assert_eq!(second.get("warm").and_then(Json::as_bool), Some(true));
        // The report header carries per-run work counters (0 iterations
        // on the warm hit); the analysis results after it must match.
        let results_of = |doc: &Json| {
            let report = doc.get("report").and_then(Json::as_str).expect("report");
            let split = report.find("\n\n").expect("report has a result section");
            report[split..].to_owned()
        };
        assert_eq!(
            results_of(&second),
            results_of(&first),
            "repeat goal answers match"
        );

        let stats = client.stats().expect("stats");
        let counters = stats.get("counters").expect("counters");
        assert_eq!(
            counters.get("program_cache_misses").and_then(Json::as_i64),
            Some(1),
            "compiled exactly once"
        );
        assert_eq!(
            counters.get("session_pool_hits").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(counters.get("warm_hits").and_then(Json::as_i64), Some(1));
        handle.shutdown();
    }

    #[test]
    fn zero_inflight_limit_sheds_every_analysis() {
        let config = ServeConfig {
            max_inflight: 0,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(&format!(
                r#"{{"op":"analyze","source":{},"goal":"app","entry":["glist","glist","var"]}}"#,
                Json::Str(APP.to_owned()).emit()
            ))
            .expect("shed response");
        assert_eq!(response.get("kind").and_then(Json::as_str), Some("error"));
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get("shed_overload"))
                .and_then(Json::as_i64),
            Some(1)
        );
        handle.shutdown();
    }

    #[test]
    fn tiny_budget_returns_over_budget_envelope() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(&format!(
                r#"{{"op":"analyze","source":{},"goal":"app","entry":["glist","glist","var"],"budget":0}}"#,
                Json::Str(APP.to_owned()).emit()
            ))
            .expect("over-budget response");
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("over_budget")
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_hash_is_a_clean_error() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(r#"{"op":"analyze","program":"00000000deadbeef","goal":"p","entry":[]}"#)
            .expect("error response");
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("unknown_program")
        );
        handle.shutdown();
    }

    #[test]
    fn batch_runs_all_goals_fresh() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(&format!(
                r#"{{"op":"batch","source":{},"goals":[{{"goal":"app","entry":["glist","glist","var"]}},{{"goal":"app","entry":["var","var","glist"]}}]}}"#,
                Json::Str(APP.to_owned()).emit()
            ))
            .expect("batch response");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let results = response
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array");
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            assert!(r.get("iterations").and_then(Json::as_i64).unwrap_or(0) > 0);
        }
        handle.shutdown();
    }
}
